"""Exception hierarchy for the VIA reproduction library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations

from typing import Any, Optional


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class FormatError(ReproError):
    """A sparse-matrix format invariant was violated.

    Raised when constructing or converting a compressed representation with
    inconsistent arrays (e.g. a CSR ``row_ptr`` that is not monotonically
    non-decreasing, or column indices out of range).
    """


class ShapeError(FormatError):
    """Operands of a kernel have incompatible shapes."""


class ConfigError(ReproError):
    """A machine or VIA hardware configuration is invalid."""


class SSPMError(ReproError):
    """An SSPM operation violated the scratchpad's operating rules.

    Examples: direct-mapped index out of range, CAM index-table overflow,
    or using a CAM-only operation while in direct-mapped mode.
    """


class SSPMCapacityError(SSPMError):
    """The CAM index table ran out of free entries during insertion.

    Software is expected to size its working set (e.g. a CSB block or a
    sparse row) to fit the SSPM; overflowing is a programming error in the
    kernel, exactly as it would be on the real hardware.
    """


class ISAError(ReproError):
    """Malformed VIA instruction: bad opcode, operand count or operand kind."""


class SweepError(ReproError):
    """The sweep-execution layer failed.

    Covers runner misconfiguration (bad worker/timeout/retry values), an
    unwritable run journal, an unreadable resume journal, and — in strict
    ``capture_errors=False`` mode — the first work-unit failure.
    """


class SweepInterrupted(SweepError):
    """A sweep was stopped by SIGINT/SIGTERM before finishing.

    The runner flushes every completed unit to the journal *before* raising
    this, so a subsequent ``resume=`` run skips the finished work.  The
    partial :class:`~repro.eval.runner.SweepResult` is attached as
    ``result`` (``None`` only if interruption hit before any bookkeeping
    existed) together with the delivering ``signum``.
    """

    def __init__(
        self, message: str, *, result: Any = None, signum: Optional[int] = None
    ) -> None:
        super().__init__(message)
        self.result = result
        self.signum = signum


class ServeError(ReproError):
    """The serving layer (:mod:`repro.serve`) rejected or failed a request.

    Every serve-layer failure carries a stable machine-readable ``code``
    (e.g. ``bad_request``, ``queue_full``, ``draining``, ``timeout``,
    ``cancelled``) and, when the condition is transient, a
    ``retry_after_s`` hint — the wire protocol serializes both, so a
    client always receives a structured error payload instead of a
    dropped connection.
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = "internal",
        retry_after_s: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after_s = retry_after_s


class AdmissionError(ServeError):
    """A request was shed at admission: the queue is full or the service
    is draining.  Always transient from the client's perspective — the
    attached ``retry_after_s`` (``None`` while draining: the server is
    going away) says when to try again.
    """


class JobCancelled(ServeError):
    """A queued job was cancelled — by an explicit ``cancel`` request or
    because the service drained before the job was dispatched."""

    def __init__(self, message: str, *, code: str = "cancelled") -> None:
        super().__init__(message, code=code)


class SimulationError(ReproError):
    """The machine model was driven into an inconsistent state."""


class InvariantError(SimulationError):
    """A runtime invariant of the cycle model was violated.

    Raised by :class:`~repro.sim.backends.InvariantBackend` when pricing an
    op breaks one of the model's conservation laws (cache hit/miss totals,
    monotone non-negative counters, SSPM occupancy bounds, finite cycle
    components).  The op that exposed the corruption is attached as
    ``op`` (``None`` for finalize-time violations).
    """

    def __init__(self, message: str, *, op: Any = None) -> None:
        super().__init__(message)
        self.op = op


class RecordingError(SimulationError):
    """A recorded op-stream artifact is unreadable, corrupt, or was written
    by an incompatible IR schema version.

    Cache layers treat this as a miss: the artifact is discarded and the
    kernel is re-recorded.
    """


class ReplayMismatchError(SimulationError):
    """A replay target configuration is stream-shape incompatible with the
    recording — it would have produced a *different* op stream (different
    vector length, L1 latency, or SSPM capacity), so re-pricing the
    recorded one would be silently wrong.
    """


class ModelError(ReproError):
    """The learned cost model could not be trained, stored, or loaded.

    Raised for empty or degenerate training datasets, malformed model
    artifacts (bad schema version, checksum or key mismatch — corrupt
    artifacts are *rejected*, never silently served), and prediction
    requests whose feature set does not match the trained model.
    """
