"""Text renderers for the regenerated tables and figures.

Every benchmark prints its artifact through these helpers so the terminal
output lines up with the paper's presentation (rows = categories or
configurations, columns = formats or kernels).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.eval.categories import CategorizedResult
from repro.eval.dse import DseResult


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[str]],
) -> str:
    """Fixed-width text table with a title rule."""
    rows = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in headers]
    for r in rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))
    lines = [title, "-" * len(fmt(headers)), fmt(headers)]
    lines += [fmt(r) for r in rows]
    return "\n".join(lines)


def render_categories(
    title: str,
    result: CategorizedResult,
    *,
    metric_label: str,
    keys: Optional[List[str]] = None,
) -> str:
    """Render a Fig. 10 / Fig. 11 style category table."""
    if not result.rows:
        return f"{title}\n(no data)"
    keys = keys or sorted(result.overall)
    headers = [metric_label, "matrices"] + [f"{k} speedup" for k in keys]
    rows = []
    for row in result.rows:
        rows.append(
            [f"{row.median_metric:.1f}", row.count]
            + [f"{row.speedup.get(k, float('nan')):.2f}x" for k in keys]
        )
    rows.append(
        ["average", sum(r.count for r in result.rows)]
        + [f"{result.overall[k]:.2f}x" for k in keys]
    )
    return render_table(title, headers, rows)


def render_dse(result: DseResult) -> str:
    """Render Figure 9: per-kernel speedup normalized to 4_2p."""
    kernels = sorted(result.cycles)
    configs = sorted(
        {name for per in result.cycles.values() for name in per},
        key=lambda n: (int(n.split("_")[0]), n),
    )
    headers = ["config"] + [k.upper() for k in kernels]
    rows = []
    for cfg in configs:
        row = [cfg]
        for k in kernels:
            speedups = result.normalized_speedup(k)
            row.append(f"{speedups.get(cfg, float('nan')):.3f}x")
        rows.append(row)
    return render_table(
        "Figure 9 — DSE speedup normalized to 4_2p", headers, rows
    )


def render_ratio_line(label: str, value: float, paper: float) -> str:
    """One paper-vs-measured comparison line for EXPERIMENTS.md."""
    return f"{label}: measured {value:.2f}x (paper {paper:.2f}x)"


def render_dict(title: str, data: Dict[str, float], unit: str = "") -> str:
    rows = [[k, f"{v:.3f}{unit}"] for k, v in data.items()]
    return render_table(title, ["key", "value"], rows)
