"""Watchdog-supervised work-unit execution for the sweep runner.

The bare ``multiprocessing.Pool`` map the runner used through PR 1 had no
defenses: a hung kernel stalled the sweep forever, an OOM-killed worker
poisoned the pool, and there was no way to retry a unit that died for
transient reasons.  This module replaces it with a supervised dispatch
loop sized for the paper's 1,024-matrix campaigns:

* **one unit in flight per worker** — each worker process owns a private
  duplex pipe and receives exactly one unit at a time, so every failure
  (timeout, crash, OOM kill) is attributable to the unit that caused it;
* **wall-clock watchdog** — a unit that runs past ``timeout_s`` gets its
  worker SIGKILLed and is scored a timeout;
* **death detection + replenishment** — a worker that exits or is killed
  mid-unit is detected through pipe EOF (no polling races), its unit is
  rescored, and a fresh worker takes its slot;
* **bounded retries** — transient failures (worker death, timeout) are
  re-queued with exponential backoff up to ``retries`` extra attempts;
  a unit that raises a Python exception is deterministic and is *not*
  retried;
* **cooperative cancellation** — ``should_stop`` is polled every tick, so
  the caller's SIGINT/SIGTERM handler can stop dispatch and still flush
  everything already completed.

Outcomes are delivered to ``on_outcome`` in completion order (the caller
reorders; the runner keeps records deterministic by unit index).  The
supervisor itself never raises for unit-level problems — only for
programming errors or if the caller's callback raises (in which case all
workers are torn down before the exception propagates).
"""

from __future__ import annotations

import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.eval.units import WorkUnit, compute_unit
from repro.sim.stats import SweepCounters

#: supervisor scheduling quantum (seconds): the longest the loop will wait
#: before re-checking deadlines, retries, and the stop flag
_TICK = 0.05

#: exponential backoff is capped so a long retry chain cannot stall a sweep
_BACKOFF_CAP = 30.0


def execute_unit(task: Tuple[int, "WorkUnit"]):
    """Run one unit in the current process; never raises.

    Returns ``(index, status, payload, wall_s, worker_pid)`` where status
    is ``ok`` (payload = SweepRecord or None for self-filtered units) or
    ``failed`` (payload = (error, traceback) strings).  Shared by the
    runner's inline path and the supervised workers.
    """
    index, unit = task
    start = time.perf_counter()
    try:
        record = compute_unit(unit)
        return index, "ok", record, time.perf_counter() - start, os.getpid()
    except Exception as exc:  # per-unit fault isolation
        tb = traceback.format_exc()
        return index, "failed", (repr(exc), tb), time.perf_counter() - start, os.getpid()


@dataclass
class UnitOutcome:
    """Final fate of one work unit under supervision."""

    index: int
    status: str  # "ok" | "failed"
    payload: object  # SweepRecord/None, or (error, traceback) strings
    wall_s: float
    worker: int
    attempts: int = 1
    history: List[str] = field(default_factory=list)
    transient: bool = False
    timed_out: bool = False


@dataclass
class _Task:
    """One unit's dispatch state, carried across retries."""

    index: int
    unit: "WorkUnit"
    attempt: int = 1
    history: List[str] = field(default_factory=list)
    ready_at: float = 0.0
    started_at: float = 0.0


def _worker_main(conn) -> None:
    """Worker process: serve one unit per message until told to stop.

    SIGINT is ignored so a terminal Ctrl-C (delivered to the whole process
    group) cannot kill workers behind the supervisor's back — shutdown is
    always the supervisor's decision (sentinel, EOF, or SIGKILL).
    """
    try:
        import signal

        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ImportError, ValueError, OSError):  # pragma: no cover
        pass
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            conn.close()
            return
        try:
            conn.send(execute_unit(task))
        except (BrokenPipeError, OSError):  # supervisor went away
            return


class _WorkerHandle:
    """Supervisor-side view of one worker process."""

    __slots__ = ("proc", "conn", "task", "deadline")

    def __init__(self, ctx):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        try:
            self.proc = ctx.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            self.proc.start()
        except BaseException:
            # a failed spawn must not strand the pipe fds — under fd
            # exhaustion the leak would make every later spawn fail too
            parent_conn.close()
            child_conn.close()
            raise
        # close our copy of the child end or EOF detection never fires
        child_conn.close()
        self.conn = parent_conn
        self.task: Optional[_Task] = None
        self.deadline: Optional[float] = None

    def kill(self) -> None:
        try:
            self.proc.kill()
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
        self.proc.join(timeout=2.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass

    def stop_gently(self) -> None:
        """Ask an idle worker to exit; escalate if it lingers."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():  # pragma: no cover - stuck worker
            self.kill()
            return
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class Supervisor:
    """Watchdog-supervised dispatch of work units over a worker pool.

    See the module docstring for the policy.  Drive with :meth:`run`.
    """

    def __init__(
        self,
        ctx,
        *,
        workers: int,
        timeout_s: Optional[float],
        retries: int,
        backoff_s: float,
        on_outcome: Callable[[UnitOutcome], None],
        should_stop: Optional[Callable[[], bool]] = None,
        counters: Optional[SweepCounters] = None,
    ):
        self.ctx = ctx
        self.workers = workers
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.on_outcome = on_outcome
        self.should_stop = should_stop or (lambda: False)
        self.counters = counters if counters is not None else SweepCounters()
        self.queue: Deque[_Task] = deque()
        self.waiting: List[_Task] = []
        self.handles: List[_WorkerHandle] = []
        self.done = 0
        self.total = 0

    # ------------------------------------------------------------------
    def run(self, pending: Sequence[Tuple[int, "WorkUnit"]]) -> bool:
        """Execute every pending unit; ``False`` if stopped early."""
        self.total = len(pending)
        if self.total == 0:
            return True
        self.queue.extend(_Task(index, unit) for index, unit in pending)
        pool_size = min(self.workers, self.total)
        try:
            # build incrementally: if the Nth spawn raises, the N-1 live
            # workers are already in self.handles for _shutdown() to reap
            self.handles = []
            for _ in range(pool_size):
                self.handles.append(_WorkerHandle(self.ctx))
            while self.done < self.total:
                if self.should_stop():
                    return False
                now = time.monotonic()
                self._promote_retries(now)
                self._assign(now)
                self._collect(now)
                self._enforce_deadlines(time.monotonic())
            return True
        finally:
            self._shutdown()

    # ------------------------------------------------------------------
    def _promote_retries(self, now: float) -> None:
        ready = [t for t in self.waiting if t.ready_at <= now]
        if ready:
            self.waiting = [t for t in self.waiting if t.ready_at > now]
            self.queue.extend(ready)

    def _assign(self, now: float) -> None:
        for handle in self.handles:
            if handle.task is not None or not self.queue:
                continue
            task = self.queue.popleft()
            task.started_at = now
            try:
                handle.conn.send((task.index, task.unit))
            except (BrokenPipeError, OSError):
                # the idle worker died between units; replace it and requeue
                self.queue.appendleft(task)
                self._replace(handle, record_death=True)
                continue
            handle.task = task
            handle.deadline = (
                now + self.timeout_s if self.timeout_s is not None else None
            )

    def _collect(self, now: float) -> None:
        busy: Dict[object, _WorkerHandle] = {
            h.conn: h for h in self.handles if h.task is not None
        }
        if not busy:
            # nothing in flight: wait for the nearest retry to become ready
            if self.waiting:
                wake = min(t.ready_at for t in self.waiting)
                time.sleep(min(max(wake - now, 0.0), _TICK))
            return
        timeout = _TICK
        deadlines = [h.deadline for h in busy.values() if h.deadline is not None]
        if deadlines:
            timeout = min(timeout, max(min(deadlines) - now, 0.0))
        for conn in mp_connection.wait(list(busy), timeout=timeout):
            handle = busy[conn]
            try:
                result = conn.recv()
            except (EOFError, OSError):
                self._on_death(handle)
                continue
            self._on_result(handle, result)

    def _enforce_deadlines(self, now: float) -> None:
        for handle in self.handles:
            if (
                handle.task is None
                or handle.deadline is None
                or now < handle.deadline
            ):
                continue
            if handle.conn.poll():  # result raced the deadline: accept it
                continue
            task = handle.task
            pid = handle.proc.pid
            self.counters.worker_deaths += 1
            handle.kill()
            self._replace(handle, record_death=False)
            self._score_transient(
                task,
                reason=(
                    f"attempt {task.attempt}: timed out after "
                    f"{self.timeout_s:.4g}s wall-clock (worker {pid} killed)"
                ),
                timed_out=True,
                worker=pid or 0,
                wall_s=now - task.started_at,
            )

    # ------------------------------------------------------------------
    def _on_result(self, handle: _WorkerHandle, result) -> None:
        index, status, payload, wall_s, pid = result
        task = handle.task
        handle.task = None
        handle.deadline = None
        if task is None or index != task.index:  # pragma: no cover
            raise RuntimeError(
                f"supervisor bookkeeping error: worker {pid} returned unit "
                f"{index} but was assigned {task.index if task else None}"
            )
        self.done += 1
        self.on_outcome(
            UnitOutcome(
                index=index,
                status=status,
                payload=payload,
                wall_s=wall_s,
                worker=pid,
                attempts=task.attempt,
                history=list(task.history),
                transient=False,
                timed_out=False,
            )
        )

    def _on_death(self, handle: _WorkerHandle) -> None:
        """A worker's pipe hit EOF while a unit was in flight."""
        task = handle.task
        pid = handle.proc.pid
        self.counters.worker_deaths += 1
        handle.kill()  # reap + close; already dead, kill is a no-op
        exitcode = handle.proc.exitcode  # read after the reaping join
        self._replace(handle, record_death=False)
        if task is None:  # pragma: no cover - EOF from an idle worker
            return
        self._score_transient(
            task,
            reason=(
                f"attempt {task.attempt}: worker {pid} died mid-unit "
                f"(exitcode {exitcode})"
            ),
            timed_out=False,
            worker=pid or 0,
            wall_s=time.monotonic() - task.started_at,
        )

    def _score_transient(
        self,
        task: _Task,
        *,
        reason: str,
        timed_out: bool,
        worker: int,
        wall_s: float,
    ) -> None:
        """Retry a transiently-failed unit, or score its final failure."""
        task.history.append(reason)
        if task.attempt <= self.retries:
            backoff = min(
                self.backoff_s * (2 ** (task.attempt - 1)), _BACKOFF_CAP
            )
            task.attempt += 1
            task.ready_at = time.monotonic() + backoff
            self.waiting.append(task)
            return
        self.done += 1
        kind = "timed out" if timed_out else "lost its worker"
        error = (
            f"SweepError('unit {task.index} {kind} on all "
            f"{task.attempt} attempt(s)')"
        )
        self.on_outcome(
            UnitOutcome(
                index=task.index,
                status="failed",
                payload=(error, ""),
                wall_s=wall_s,
                worker=worker,
                attempts=task.attempt,
                history=list(task.history),
                transient=True,
                timed_out=timed_out,
            )
        )

    def _replace(self, handle: _WorkerHandle, *, record_death: bool) -> None:
        if record_death:
            self.counters.worker_deaths += 1
        handle.task = None
        handle.deadline = None
        index = self.handles.index(handle)
        self.handles[index] = _WorkerHandle(self.ctx)

    def _shutdown(self) -> None:
        for handle in self.handles:
            if handle.task is not None or handle.proc.is_alive() is False:
                handle.kill()
            else:
                handle.stop_gently()
        self.handles = []


def run_supervised(
    pending: Sequence[Tuple[int, "WorkUnit"]],
    ctx,
    *,
    workers: int,
    timeout_s: Optional[float],
    retries: int,
    backoff_s: float,
    on_outcome: Callable[[UnitOutcome], None],
    should_stop: Optional[Callable[[], bool]] = None,
    counters: Optional[SweepCounters] = None,
) -> bool:
    """Run ``pending`` under a :class:`Supervisor`; see the module docs.

    Returns ``True`` when every unit reached a final outcome, ``False``
    when ``should_stop`` ended dispatch early (outcomes already delivered
    stay delivered — the caller flushes them).
    """
    supervisor = Supervisor(
        ctx,
        workers=workers,
        timeout_s=timeout_s,
        retries=retries,
        backoff_s=backoff_s,
        on_outcome=on_outcome,
        should_stop=should_stop,
        counters=counters,
    )
    return supervisor.run(pending)
