"""``python -m repro.eval`` — the sweep-runner CLI (see runner.main)."""

from repro.eval.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
