"""``python -m repro.eval`` — the supervised sweep-runner CLI (see
runner.main): demo sweeps with caching, journals, per-unit timeouts,
retry, ``--resume`` and ``--validate``."""

from repro.eval.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
