"""Picklable sweep work units — the quantum of evaluation execution.

A :class:`WorkUnit` names one (matrix spec, kernel, parameters) cell of the
paper's evaluation grid.  Units are frozen, picklable, and self-contained:
:func:`compute_unit` materializes the matrix from the spec and runs the
baseline/VIA kernel pair without touching any shared state, so units can be
shipped to ``multiprocessing`` workers or hashed into a content-addressed
result cache (:mod:`repro.eval.runner`).

Unit kinds are dispatched through the :data:`UNIT_KINDS` registry so tests
(and future kernels) can plug in new unit types without editing the runner.
Beyond the direct kinds (``spmv``/``spma``/``spmm``) there are two
op-stream kinds riding the IR seam (:mod:`repro.sim.ops`):

* ``record`` — run the unit's kernel pair once per format with a
  :class:`~repro.sim.backends.RecorderBackend`, persist the op streams and
  functional outputs to a :class:`~repro.eval.recordings.RecordingStore`
  artifact, and return the (direct-identical) :class:`SweepRecord`;
* ``replay`` — load the artifact and re-price the recorded streams under
  the unit's own machine/VIA configuration without executing any numpy.
  A missing or corrupt artifact self-heals: the unit records under its own
  configuration instead (bit-identical by construction).

Every unit's execution is a pure function of the unit, so record-once /
replay-per-config sweeps (the Fig. 9 DSE) return bit-identical records to
direct per-config runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError, SweepError
from repro.eval.harness import SweepRecord
from repro.formats.coo import COOMatrix
from repro.formats.csb import CSBMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.sellcs import SellCSigmaMatrix
from repro.formats.spc5 import SPC5Matrix
from repro.kernels import spma as spma_mod
from repro.kernels import spmm as spmm_mod
from repro.kernels import spmv as spmv_mod
from repro.matrices.collection import MatrixCollection, MatrixSpec
from repro.matrices.stats import nnz_per_row_metric, structure_stats
from repro.sim.backends import (
    Backend,
    InvariantBackend,
    RecorderBackend,
    replay_recording,
)
from repro.sim.config import DEFAULT_MACHINE, MachineConfig
from repro.sim.ops import OPS_SCHEMA_VERSION
from repro.sim.stats import KernelResult
from repro.via.config import DEFAULT_VIA, ViaConfig

#: master seed for the dense operand vectors; combined with each spec's own
#: seed so a unit's input is a pure function of the unit (not of sweep order)
X_VECTOR_SEED = 12345


@dataclass(frozen=True)
class WorkUnit:
    """One cell of the evaluation grid: matrix spec x kernel x parameters.

    ``kernel`` names the underlying kernel family for the ``record`` and
    ``replay`` kinds (whose ``kind`` no longer encodes it); direct kinds
    leave it empty.  ``record_dir`` points record/replay units at their
    artifact store; it never enters the result-cache key because a unit's
    record is invariant to where its artifact lives.  ``validate`` routes
    every op through the :class:`~repro.sim.backends.InvariantBackend`
    runtime checker; like ``record_dir`` it stays out of the cache key
    because validation only *checks* results, it never changes them.
    ``engine`` picks the replay pricing engine (``scalar``/``columnar``,
    ``None`` = :data:`~repro.sim.backends.DEFAULT_REPLAY_ENGINE`); the
    engines are bit-identical by contract, so it too stays out of the key.
    """

    kind: str
    spec: MatrixSpec
    machine: MachineConfig = DEFAULT_MACHINE
    via_config: ViaConfig = DEFAULT_VIA
    formats: Tuple[str, ...] = ()
    max_n: Optional[int] = None
    kernel: str = ""
    record_dir: Optional[str] = None
    validate: bool = False
    engine: Optional[str] = None


def _x_vector(spec: MatrixSpec, cols: int) -> np.ndarray:
    """Deterministic dense operand, independent of sweep order."""
    rng = np.random.default_rng([X_VECTOR_SEED, spec.seed, cols])
    return rng.standard_normal(cols)


def _sibling(spec: MatrixSpec, coo_a: COOMatrix, seed_shift: int) -> COOMatrix:
    """Structurally-similar second operand (paper: same-shape additions)."""
    sibling = MatrixSpec(
        name=spec.name + "_b",
        domain=spec.domain,
        n=spec.n,
        seed=spec.seed + seed_shift,
        params=spec.params,
    )
    coo_b = sibling.build()
    if coo_b.shape != coo_a.shape:  # grid/kron generators round dims
        coo_b = COOMatrix(
            coo_a.shape,
            coo_b.row % coo_a.shape[0],
            coo_b.col % coo_a.shape[1],
            coo_b.data,
        )
    return coo_b


def build_spmv_format(
    coo: COOMatrix, fmt: str, machine: MachineConfig, via: ViaConfig
):
    if fmt == "csr":
        return CSRMatrix.from_coo(coo)
    if fmt == "csb":
        return CSBMatrix.from_coo(coo, block_size=via.csb_block_size)
    if fmt == "spc5":
        return SPC5Matrix.from_coo(coo, vl=machine.vl)
    if fmt == "sellcs":
        return SellCSigmaMatrix.from_coo(coo, c=machine.vl, sigma=16 * machine.vl)
    raise SweepError(f"unknown SpMV format {fmt!r}")


def _unit_features(
    coo: COOMatrix,
    *,
    csb: Optional[CSBMatrix] = None,
    block_size: Optional[int] = None,
) -> Dict[str, float]:
    """The record's ``features`` dict: StructureStats as plain floats.

    The CSB block size follows the unit's VIA configuration (half the
    SSPM) so the features describe the matrix exactly as the simulated
    hardware sees it — the same convention the cost-model consumers use
    when featurizing unseen specs (:mod:`repro.model.dataset`).
    """
    stats = structure_stats(
        coo,
        csb_block_size=block_size if block_size is not None else 256,
        csb=csb,
    )
    return {k: float(v) for k, v in stats.as_dict().items()}


#: one kernel-pair execution: ``fn(backend) -> KernelResult``
_Runner = Callable[[Optional[Backend]], KernelResult]


@dataclass
class UnitPlan:
    """A unit's execution, decomposed so every backend shares one source.

    ``skeleton`` is the :class:`SweepRecord` with the structural fields
    filled; ``runs`` maps each format to a ``(baseline, via)`` pair of
    callables taking an op-stream backend.  Direct execution passes
    ``None``, recording passes a :class:`RecorderBackend` per run — so
    direct, record, and (transitively) replay all price the exact same
    narration.
    """

    skeleton: SweepRecord
    runs: Dict[str, Tuple[_Runner, _Runner]]


def _fill_record(
    rec: SweepRecord, fmt: str, base: KernelResult, via: KernelResult
) -> None:
    """Derive one format's ratio columns from a baseline/VIA result pair."""
    rec.speedup[fmt] = base.cycles / via.cycles
    rec.energy_ratio[fmt] = base.energy_pj / via.energy_pj
    rec.bandwidth_ratio[fmt] = (
        via.memory_bandwidth_gbs / base.memory_bandwidth_gbs
        if base.memory_bandwidth_gbs
        else float("nan")
    )
    rec.baseline_cycles[fmt] = base.cycles
    rec.via_cycles[fmt] = via.cycles


def _plan_spmv(unit: WorkUnit) -> UnitPlan:
    spec, machine, via_config = unit.spec, unit.machine, unit.via_config
    coo = spec.build()
    x = _x_vector(spec, coo.cols)
    csb = CSBMatrix.from_coo(coo, block_size=via_config.csb_block_size)
    per_block = csb.nnz_per_block()
    skeleton = SweepRecord(
        name=spec.name,
        domain=spec.domain,
        n=coo.rows,
        nnz=coo.nnz,
        metric=float(np.median(per_block)) if per_block.size else 0.0,
        features=_unit_features(coo, csb=csb),
    )
    runs: Dict[str, Tuple[_Runner, _Runner]] = {}
    for fmt in unit.formats:
        mat = csb if fmt == "csb" else build_spmv_format(coo, fmt, machine, via_config)
        base_fn, via_fn = spmv_mod.SPMV_VARIANTS[fmt]
        runs[fmt] = (
            lambda backend=None, mat=mat, base_fn=base_fn: base_fn(
                mat, x, machine, backend=backend
            ),
            lambda backend=None, mat=mat, via_fn=via_fn: via_fn(
                mat, x, machine, via_config, backend=backend
            ),
        )
    return UnitPlan(skeleton, runs)


def _plan_spma(unit: WorkUnit) -> UnitPlan:
    spec, machine, via_config = unit.spec, unit.machine, unit.via_config
    coo_a = spec.build()
    coo_b = _sibling(spec, coo_a, seed_shift=1)
    a = CSRMatrix.from_coo(coo_a)
    b = CSRMatrix.from_coo(coo_b)
    skeleton = SweepRecord(
        name=spec.name,
        domain=spec.domain,
        n=coo_a.rows,
        nnz=coo_a.nnz,
        metric=nnz_per_row_metric(coo_a),
        features=_unit_features(coo_a, block_size=via_config.csb_block_size),
    )
    runs = {
        "csr": (
            lambda backend=None: spma_mod.spma_csr_baseline(
                a, b, machine, backend=backend
            ),
            lambda backend=None: spma_mod.spma_via(
                a, b, machine, via_config, backend=backend
            ),
        )
    }
    return UnitPlan(skeleton, runs)


def _plan_spmm(unit: WorkUnit) -> Optional[UnitPlan]:
    spec, machine, via_config = unit.spec, unit.machine, unit.via_config
    max_n = unit.max_n if unit.max_n is not None else 1024
    if spec.n > max_n:
        return None
    coo_a = spec.build()
    if coo_a.rows > max_n:
        return None
    coo_b = _sibling(spec, coo_a, seed_shift=2)
    a = CSRMatrix.from_coo(coo_a)
    b = CSCMatrix.from_coo(coo_b)
    skeleton = SweepRecord(
        name=spec.name,
        domain=spec.domain,
        n=coo_a.rows,
        nnz=coo_a.nnz,
        metric=nnz_per_row_metric(coo_a),
        features=_unit_features(coo_a, block_size=via_config.csb_block_size),
    )
    runs = {
        "csr": (
            lambda backend=None: spmm_mod.spmm_csr_baseline(
                a, b, machine, backend=backend
            ),
            lambda backend=None: spmm_mod.spmm_via(
                a, b, machine, via_config, backend=backend
            ),
        )
    }
    return UnitPlan(skeleton, runs)


#: kernel family -> plan builder (used by direct, record, and self-heal paths)
PLAN_KINDS: Dict[str, Callable[[WorkUnit], Optional[UnitPlan]]] = {
    "spmv": _plan_spmv,
    "spma": _plan_spma,
    "spmm": _plan_spmm,
}


def _execute_plan(
    plan: Optional[UnitPlan], *, validate: bool = False
) -> Optional[SweepRecord]:
    """Direct execution: price every run immediately, fill the record.

    With ``validate`` on, every op routes through a fresh
    :class:`InvariantBackend` so a mis-priced op raises
    :class:`~repro.errors.InvariantError` at the op that broke the model
    (results are unchanged — the checker wraps the direct pricing path).
    """
    if plan is None:
        return None
    rec = plan.skeleton
    for fmt, (base_run, via_run) in plan.runs.items():
        base = base_run(InvariantBackend() if validate else None)
        via = via_run(InvariantBackend() if validate else None)
        _fill_record(rec, fmt, base, via)
    return rec


def _compute_direct(unit: WorkUnit) -> Optional[SweepRecord]:
    return _execute_plan(PLAN_KINDS[unit.kind](unit), validate=unit.validate)


def _try_replay(unit: WorkUnit, store, code: str) -> Optional[SweepRecord]:
    """Build a unit's record purely from stored artifacts, or ``None``."""
    from repro.eval.recordings import recording_key

    via_found = store.get(recording_key(unit, code, part="via"))
    base_found = store.get(recording_key(unit, code, part="base"))
    if via_found is None or base_found is None:
        return None
    via_recs, extra = via_found
    base_recs, _ = base_found
    rec = SweepRecord(**extra["skeleton"])
    try:
        for fmt in extra["formats"]:
            base = replay_recording(
                base_recs[f"{fmt}/base"],
                machine=unit.machine,
                engine=unit.engine,
                validate=unit.validate,
            )
            via = replay_recording(
                via_recs[f"{fmt}/via"],
                machine=unit.machine,
                via_config=unit.via_config,
                engine=unit.engine,
                validate=unit.validate,
            )
            _fill_record(rec, fmt, base, via)
    except KeyError:
        return None
    return rec


def _compute_record(unit: WorkUnit) -> Optional[SweepRecord]:
    """Ensure the unit's op streams are recorded; return its record.

    The returned record is identical to direct execution (the recorder
    prices ops through the same path it captures them on); the artifacts
    additionally let any shape-compatible configuration replay them.  Each
    unit writes two: the VIA streams (plus skeleton metadata) under the
    ``via`` key and the baseline streams under the ``base`` key — for
    :data:`~repro.eval.recordings.SHARED_BASELINE_KERNELS` the base key is
    capacity-invariant, so a record run that finds another shape group's
    baseline artifact replays it instead of re-running the kernel.
    Recording is idempotent: a warm store satisfies the unit by replay
    without re-running anything.
    """
    from repro.eval.recordings import RecordingStore, recording_key

    store = code = None
    if unit.record_dir is not None:
        store = RecordingStore(unit.record_dir)
        code = _code_version()
        cached = _try_replay(unit, store, code)
        if cached is not None:
            return cached
    plan = PLAN_KINDS[unit.kernel](unit)
    if plan is None:
        return None
    rec = plan.skeleton
    base_results: Dict[str, KernelResult] = {}
    if store is not None:
        base_found = store.get(recording_key(unit, code, part="base"))
        if base_found is not None:
            try:
                for fmt in plan.runs:
                    base_results[fmt] = replay_recording(
                        base_found[0][f"{fmt}/base"],
                        machine=unit.machine,
                        engine=unit.engine,
                        validate=unit.validate,
                    )
            except KeyError:
                base_results = {}
    if not base_results:
        base_recordings = {}
        for fmt, (base_run, _via_run) in plan.runs.items():
            recorder = RecorderBackend()
            backend = InvariantBackend(recorder) if unit.validate else recorder
            base_results[fmt] = base_run(backend)
            base_recordings[f"{fmt}/base"] = recorder.recording
        if store is not None:
            store.put(recording_key(unit, code, part="base"), base_recordings)
    via_recordings = {}
    for fmt, (_base_run, via_run) in plan.runs.items():
        recorder = RecorderBackend()
        backend = InvariantBackend(recorder) if unit.validate else recorder
        via = via_run(backend)
        via_recordings[f"{fmt}/via"] = recorder.recording
        _fill_record(rec, fmt, base_results[fmt], via)
    if store is not None:
        store.put(
            recording_key(unit, code, part="via"),
            via_recordings,
            extra_meta={
                "skeleton": {
                    "name": rec.name,
                    "domain": rec.domain,
                    "n": int(rec.n),
                    "nnz": int(rec.nnz),
                    "metric": float(rec.metric),
                    "features": {
                        k: float(v) for k, v in rec.features.items()
                    },
                },
                "formats": sorted(plan.runs),
            },
        )
    return rec


def _compute_replay(unit: WorkUnit) -> Optional[SweepRecord]:
    """Re-price a recorded unit under this unit's machine/VIA configuration.

    No matrix is built and no functional numpy runs: the artifacts' op
    streams are replayed — pure arithmetic over their stored pricing state
    when the machine matches, a memory-pass re-simulation otherwise.  On a
    store miss (or a corrupt artifact the store already discarded) the unit
    self-heals by recording under its own configuration — bit-identical
    output either way.
    """
    from repro.eval.recordings import RecordingStore

    if unit.record_dir is None:
        raise ReproError("replay unit needs a record_dir")
    store = RecordingStore(unit.record_dir)
    rec = _try_replay(unit, store, _code_version())
    if rec is None:
        return _compute_record(unit)
    return rec


def _code_version() -> str:
    # lazy: runner imports units at module load; this avoids the cycle
    from repro.eval.runner import code_version

    return code_version()


#: unit-kind dispatch table; extensible (tests register fault-injection kinds)
UNIT_KINDS: Dict[str, Callable[[WorkUnit], Optional[SweepRecord]]] = {
    "spmv": _compute_direct,
    "spma": _compute_direct,
    "spmm": _compute_direct,
    "record": _compute_record,
    "replay": _compute_replay,
}


def compute_unit(unit: WorkUnit) -> Optional[SweepRecord]:
    """Execute one work unit; ``None`` means the unit filtered itself out."""
    try:
        fn = UNIT_KINDS[unit.kind]
    except KeyError:
        raise ReproError(f"unknown work-unit kind {unit.kind!r}") from None
    return fn(unit)


# ----------------------------------------------------------------------
# unit-list builders used by the harness sweeps and by tests


def _iter_specs(
    collection: MatrixCollection, limit: Optional[int]
) -> List[MatrixSpec]:
    specs = collection.specs
    return specs[:limit] if limit is not None else specs


def spmv_units(
    collection: MatrixCollection,
    *,
    formats: Iterable[str],
    machine: MachineConfig = DEFAULT_MACHINE,
    via_config: ViaConfig = DEFAULT_VIA,
    limit: Optional[int] = None,
    validate: bool = False,
) -> List[WorkUnit]:
    fmts = tuple(formats)
    return [
        WorkUnit("spmv", spec, machine, via_config, formats=fmts,
                 validate=validate)
        for spec in _iter_specs(collection, limit)
    ]


def spma_units(
    collection: MatrixCollection,
    *,
    machine: MachineConfig = DEFAULT_MACHINE,
    via_config: ViaConfig = DEFAULT_VIA,
    limit: Optional[int] = None,
    validate: bool = False,
) -> List[WorkUnit]:
    return [
        WorkUnit("spma", spec, machine, via_config, validate=validate)
        for spec in _iter_specs(collection, limit)
    ]


def spmm_units(
    collection: MatrixCollection,
    *,
    machine: MachineConfig = DEFAULT_MACHINE,
    via_config: ViaConfig = DEFAULT_VIA,
    limit: Optional[int] = None,
    max_n: int = 1024,
    validate: bool = False,
) -> List[WorkUnit]:
    return [
        WorkUnit("spmm", spec, machine, via_config, max_n=max_n,
                 validate=validate)
        for spec in _iter_specs(collection, limit)
    ]


def record_units(units: Iterable[WorkUnit], *, record_dir: str) -> List[WorkUnit]:
    """Turn direct units into ``record`` units targeting an artifact store."""
    return [
        dataclasses.replace(
            u,
            kind="record",
            kernel=u.kernel or u.kind,
            record_dir=record_dir,
        )
        for u in units
    ]


def replay_units(
    units: Iterable[WorkUnit],
    *,
    record_dir: str,
    machine: Optional[MachineConfig] = None,
    via_config: Optional[ViaConfig] = None,
    engine: Optional[str] = None,
) -> List[WorkUnit]:
    """Turn direct units into ``replay`` units re-priced under a target.

    ``machine``/``via_config`` default to each unit's own configuration;
    pass a different (stream-shape compatible) pair to sweep pricing knobs
    against one set of recordings.  ``engine`` selects the replay pricing
    engine for every unit (``None`` keeps each unit's own setting).
    """
    return [
        dataclasses.replace(
            u,
            kind="replay",
            kernel=u.kernel or u.kind,
            record_dir=record_dir,
            machine=machine if machine is not None else u.machine,
            via_config=via_config if via_config is not None else u.via_config,
            engine=engine if engine is not None else u.engine,
        )
        for u in units
    ]


# ----------------------------------------------------------------------
# content-addressed cache keys

#: fields deliberately outside :func:`unit_cache_key`, checked by the
#: VIA101 cache-key hygiene rule (``python -m repro.analysis``)
KEY_EXEMPT = {
    "WorkUnit": {
        "record_dir": "a unit's record is invariant to where (or whether) "
        "its op-stream artifact is stored",
        "validate": "invariant checking only verifies results; it never "
        "changes them",
        "engine": "the scalar and columnar replay engines are bit-identical "
        "by contract (pinned by the differential suite), so the record is "
        "engine-invariant",
    },
}


def unit_cache_key(unit: WorkUnit, code_version: str) -> str:
    """Stable content hash of everything that determines a unit's record.

    Two units hash equal iff they would produce the same
    :class:`SweepRecord` under the same code: the matrix spec, the kernel
    kind and its parameters, both hardware configurations, the code
    fingerprint, and the op-stream IR schema version all feed the key.
    ``record_dir`` and ``validate`` deliberately do not: a unit's record is
    invariant to where (or whether) its op-stream artifact is stored, and
    invariant checking only verifies results — it never changes them.
    ``engine`` stays out for the same reason: both replay engines are
    bit-identical by contract.
    """
    payload = {
        "kind": unit.kind,
        "kernel": unit.kernel,
        "spec": {
            "name": unit.spec.name,
            "domain": unit.spec.domain,
            "n": unit.spec.n,
            "seed": unit.spec.seed,
            "params": unit.spec.params,
        },
        "formats": list(unit.formats),
        "max_n": unit.max_n,
        "machine": dataclasses.asdict(unit.machine),
        "via": dataclasses.asdict(unit.via_config),
        "code": code_version,
        "ops_schema": OPS_SCHEMA_VERSION,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
