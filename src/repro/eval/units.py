"""Picklable sweep work units — the quantum of evaluation execution.

A :class:`WorkUnit` names one (matrix spec, kernel, parameters) cell of the
paper's evaluation grid.  Units are frozen, picklable, and self-contained:
:func:`compute_unit` materializes the matrix from the spec and runs the
baseline/VIA kernel pair without touching any shared state, so units can be
shipped to ``multiprocessing`` workers or hashed into a content-addressed
result cache (:mod:`repro.eval.runner`).

Unit kinds are dispatched through the :data:`UNIT_KINDS` registry so tests
(and future kernels) can plug in new unit types without editing the runner.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.eval.harness import SweepRecord
from repro.formats.coo import COOMatrix
from repro.formats.csb import CSBMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.sellcs import SellCSigmaMatrix
from repro.formats.spc5 import SPC5Matrix
from repro.kernels import spma as spma_mod
from repro.kernels import spmm as spmm_mod
from repro.kernels import spmv as spmv_mod
from repro.matrices.collection import MatrixCollection, MatrixSpec
from repro.matrices.stats import nnz_per_row_metric
from repro.sim.config import DEFAULT_MACHINE, MachineConfig
from repro.via.config import DEFAULT_VIA, ViaConfig

#: master seed for the dense operand vectors; combined with each spec's own
#: seed so a unit's input is a pure function of the unit (not of sweep order)
X_VECTOR_SEED = 12345


@dataclass(frozen=True)
class WorkUnit:
    """One cell of the evaluation grid: matrix spec x kernel x parameters."""

    kind: str
    spec: MatrixSpec
    machine: MachineConfig = DEFAULT_MACHINE
    via_config: ViaConfig = DEFAULT_VIA
    formats: Tuple[str, ...] = ()
    max_n: Optional[int] = None


def _x_vector(spec: MatrixSpec, cols: int) -> np.ndarray:
    """Deterministic dense operand, independent of sweep order."""
    rng = np.random.default_rng([X_VECTOR_SEED, spec.seed, cols])
    return rng.standard_normal(cols)


def _sibling(spec: MatrixSpec, coo_a: COOMatrix, seed_shift: int) -> COOMatrix:
    """Structurally-similar second operand (paper: same-shape additions)."""
    sibling = MatrixSpec(
        name=spec.name + "_b",
        domain=spec.domain,
        n=spec.n,
        seed=spec.seed + seed_shift,
        params=spec.params,
    )
    coo_b = sibling.build()
    if coo_b.shape != coo_a.shape:  # grid/kron generators round dims
        coo_b = COOMatrix(
            coo_a.shape,
            coo_b.row % coo_a.shape[0],
            coo_b.col % coo_a.shape[1],
            coo_b.data,
        )
    return coo_b


def build_spmv_format(
    coo: COOMatrix, fmt: str, machine: MachineConfig, via: ViaConfig
):
    if fmt == "csr":
        return CSRMatrix.from_coo(coo)
    if fmt == "csb":
        return CSBMatrix.from_coo(coo, block_size=via.csb_block_size)
    if fmt == "spc5":
        return SPC5Matrix.from_coo(coo, vl=machine.vl)
    if fmt == "sellcs":
        return SellCSigmaMatrix.from_coo(coo, c=machine.vl, sigma=16 * machine.vl)
    raise ValueError(f"unknown SpMV format {fmt!r}")


def _compute_spmv(unit: WorkUnit) -> SweepRecord:
    spec, machine, via_config = unit.spec, unit.machine, unit.via_config
    coo = spec.build()
    x = _x_vector(spec, coo.cols)
    csb = CSBMatrix.from_coo(coo, block_size=via_config.csb_block_size)
    per_block = csb.nnz_per_block()
    rec = SweepRecord(
        name=spec.name,
        domain=spec.domain,
        n=coo.rows,
        nnz=coo.nnz,
        metric=float(np.median(per_block)) if per_block.size else 0.0,
    )
    for fmt in unit.formats:
        mat = csb if fmt == "csb" else build_spmv_format(coo, fmt, machine, via_config)
        base_fn, via_fn = spmv_mod.SPMV_VARIANTS[fmt]
        base = base_fn(mat, x, machine)
        via = via_fn(mat, x, machine, via_config)
        rec.speedup[fmt] = base.cycles / via.cycles
        rec.energy_ratio[fmt] = base.energy_pj / via.energy_pj
        rec.bandwidth_ratio[fmt] = (
            via.memory_bandwidth_gbs / base.memory_bandwidth_gbs
            if base.memory_bandwidth_gbs
            else float("nan")
        )
        rec.baseline_cycles[fmt] = base.cycles
        rec.via_cycles[fmt] = via.cycles
    return rec


def _compute_spma(unit: WorkUnit) -> SweepRecord:
    spec, machine, via_config = unit.spec, unit.machine, unit.via_config
    coo_a = spec.build()
    coo_b = _sibling(spec, coo_a, seed_shift=1)
    a = CSRMatrix.from_coo(coo_a)
    b = CSRMatrix.from_coo(coo_b)
    base = spma_mod.spma_csr_baseline(a, b, machine)
    via = spma_mod.spma_via(a, b, machine, via_config)
    return SweepRecord(
        name=spec.name,
        domain=spec.domain,
        n=coo_a.rows,
        nnz=coo_a.nnz,
        metric=nnz_per_row_metric(coo_a),
        speedup={"csr": base.cycles / via.cycles},
        energy_ratio={"csr": base.energy_pj / via.energy_pj},
        baseline_cycles={"csr": base.cycles},
        via_cycles={"csr": via.cycles},
    )


def _compute_spmm(unit: WorkUnit) -> Optional[SweepRecord]:
    spec, machine, via_config = unit.spec, unit.machine, unit.via_config
    max_n = unit.max_n if unit.max_n is not None else 1024
    if spec.n > max_n:
        return None
    coo_a = spec.build()
    if coo_a.rows > max_n:
        return None
    coo_b = _sibling(spec, coo_a, seed_shift=2)
    a = CSRMatrix.from_coo(coo_a)
    b = CSCMatrix.from_coo(coo_b)
    base = spmm_mod.spmm_csr_baseline(a, b, machine)
    via = spmm_mod.spmm_via(a, b, machine, via_config)
    return SweepRecord(
        name=spec.name,
        domain=spec.domain,
        n=coo_a.rows,
        nnz=coo_a.nnz,
        metric=nnz_per_row_metric(coo_a),
        speedup={"csr": base.cycles / via.cycles},
        energy_ratio={"csr": base.energy_pj / via.energy_pj},
        baseline_cycles={"csr": base.cycles},
        via_cycles={"csr": via.cycles},
    )


#: unit-kind dispatch table; extensible (tests register fault-injection kinds)
UNIT_KINDS: Dict[str, Callable[[WorkUnit], Optional[SweepRecord]]] = {
    "spmv": _compute_spmv,
    "spma": _compute_spma,
    "spmm": _compute_spmm,
}


def compute_unit(unit: WorkUnit) -> Optional[SweepRecord]:
    """Execute one work unit; ``None`` means the unit filtered itself out."""
    try:
        fn = UNIT_KINDS[unit.kind]
    except KeyError:
        raise ReproError(f"unknown work-unit kind {unit.kind!r}") from None
    return fn(unit)


# ----------------------------------------------------------------------
# unit-list builders used by the harness sweeps and by tests


def _iter_specs(
    collection: MatrixCollection, limit: Optional[int]
) -> List[MatrixSpec]:
    specs = collection.specs
    return specs[:limit] if limit is not None else specs


def spmv_units(
    collection: MatrixCollection,
    *,
    formats: Iterable[str],
    machine: MachineConfig = DEFAULT_MACHINE,
    via_config: ViaConfig = DEFAULT_VIA,
    limit: Optional[int] = None,
) -> List[WorkUnit]:
    fmts = tuple(formats)
    return [
        WorkUnit("spmv", spec, machine, via_config, formats=fmts)
        for spec in _iter_specs(collection, limit)
    ]


def spma_units(
    collection: MatrixCollection,
    *,
    machine: MachineConfig = DEFAULT_MACHINE,
    via_config: ViaConfig = DEFAULT_VIA,
    limit: Optional[int] = None,
) -> List[WorkUnit]:
    return [
        WorkUnit("spma", spec, machine, via_config)
        for spec in _iter_specs(collection, limit)
    ]


def spmm_units(
    collection: MatrixCollection,
    *,
    machine: MachineConfig = DEFAULT_MACHINE,
    via_config: ViaConfig = DEFAULT_VIA,
    limit: Optional[int] = None,
    max_n: int = 1024,
) -> List[WorkUnit]:
    return [
        WorkUnit("spmm", spec, machine, via_config, max_n=max_n)
        for spec in _iter_specs(collection, limit)
    ]


# ----------------------------------------------------------------------
# content-addressed cache keys


def unit_cache_key(unit: WorkUnit, code_version: str) -> str:
    """Stable content hash of everything that determines a unit's record.

    Two units hash equal iff they would produce the same
    :class:`SweepRecord` under the same code: the matrix spec, the kernel
    kind and its parameters, both hardware configurations, and the code
    fingerprint all feed the key.
    """
    payload = {
        "kind": unit.kind,
        "spec": {
            "name": unit.spec.name,
            "domain": unit.spec.domain,
            "n": unit.spec.n,
            "seed": unit.spec.seed,
            "params": unit.spec.params,
        },
        "formats": list(unit.formats),
        "max_n": unit.max_n,
        "machine": dataclasses.asdict(unit.machine),
        "via": dataclasses.asdict(unit.via_config),
        "code": code_version,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
