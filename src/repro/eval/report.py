"""Deprecated alias for :mod:`repro.eval.report_cli`.

The full-report CLI used to live here, where its name kept colliding with
:mod:`repro.eval.reporting` (the text-table renderers).  The CLI moved to
:mod:`repro.eval.report_cli`; this shim keeps old imports and
``python -m repro.eval.report`` invocations working while warning once.
"""

from __future__ import annotations

import sys
import warnings

from repro.eval.report_cli import (  # noqa: F401  (re-exported API)
    build_report,
    dse_timing_report,
    main,
)

warnings.warn(
    "repro.eval.report moved to repro.eval.report_cli; "
    "update imports (this alias will be removed)",
    DeprecationWarning,
    stacklevel=2,
)

if __name__ == "__main__":
    sys.exit(main())
