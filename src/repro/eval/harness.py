"""Evaluation harness: sweep kernels over the matrix collection.

The harness regenerates the paper's evaluation data (Section VII): for each
matrix in a collection it runs baseline and VIA variants of a kernel on the
same machine model and records the speedup plus the structural metric the
paper categorizes by (CSB block density for Fig. 10, nnz/row for Fig. 11).

Each record also carries energy and memory-bandwidth ratios, used for the
Section VII-A prose claims (3.8x energy reduction, 2.5x bandwidth increase
for CSB SpMV).

Execution is delegated to :mod:`repro.eval.runner`: every sweep decomposes
into picklable :class:`~repro.eval.units.WorkUnit` items, so passing a
:class:`~repro.eval.runner.RunnerConfig` via ``runner=`` fans the sweep out
over a process pool and/or serves results from the content-addressed cache.
With ``runner=None`` (the default) the sweep runs inline and raises on the
first kernel error, exactly like the historical sequential path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional

import numpy as np

if TYPE_CHECKING:  # runner imports harness; keep the cycle import-time free
    from repro.eval.runner import RunnerConfig
    from repro.matrices.collection import MatrixCollection
    from repro.sim.config import MachineConfig
    from repro.via.config import ViaConfig

SPMV_FORMATS = ("csr", "csb", "spc5", "sellcs")

#: SweepRecord fields holding per-format mappings (serialization order)
_RECORD_DICT_FIELDS = (
    "speedup",
    "energy_ratio",
    "bandwidth_ratio",
    "baseline_cycles",
    "via_cycles",
)


@dataclass
class SweepRecord:
    """One matrix's results for one kernel sweep.

    ``features`` carries the matrix's :class:`~repro.matrices.stats.
    StructureStats` descriptors (as plain floats), filled by the unit
    planners so every journal line and cache entry is self-describing —
    the cost-model dataset (:mod:`repro.model.dataset`) mines journals
    without re-building any matrix.
    """

    name: str
    domain: str
    n: int
    nnz: int
    metric: float
    speedup: Dict[str, float] = field(default_factory=dict)
    energy_ratio: Dict[str, float] = field(default_factory=dict)
    bandwidth_ratio: Dict[str, float] = field(default_factory=dict)
    baseline_cycles: Dict[str, float] = field(default_factory=dict)
    via_cycles: Dict[str, float] = field(default_factory=dict)
    features: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe payload; ``from_dict`` round-trips bit-identically."""
        out = {
            "name": self.name,
            "domain": self.domain,
            "n": int(self.n),
            "nnz": int(self.nnz),
            "metric": float(self.metric),
        }
        for key in _RECORD_DICT_FIELDS:
            out[key] = {k: float(v) for k, v in getattr(self, key).items()}
        out["features"] = {k: float(v) for k, v in self.features.items()}
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SweepRecord":
        return cls(
            name=data["name"],
            domain=data["domain"],
            n=int(data["n"]),
            nnz=int(data["nnz"]),
            metric=float(data["metric"]),
            features=dict(data.get("features", {})),
            **{key: dict(data.get(key, {})) for key in _RECORD_DICT_FIELDS},
        )


def geomean(values: Iterable[float], *, warn_label: str = "geomean") -> float:
    """Geometric mean — the standard aggregate for speedup ratios.

    Two degenerate cases return NaN but mean different things:

    * *no data* — the input was empty; silent, because aggregating an
      empty category is routine (e.g. a format absent from a sweep);
    * *all values filtered out* — data arrived but every value was
      non-positive (or NaN), so the geomean is undefined; a
      ``RuntimeWarning`` flags it because silently dropping measurements
      has masked real regressions before.

    Dropping *some* non-positive values also warns, with the drop count.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return float("nan")  # no data: vacuously undefined, not suspicious
    positive = arr[arr > 0]
    if positive.size == 0:
        warnings.warn(
            f"{warn_label}: all {arr.size} value(s) are non-positive or NaN; "
            "geometric mean is undefined — returning NaN",
            RuntimeWarning,
            stacklevel=2,
        )
        return float("nan")
    if positive.size < arr.size:
        warnings.warn(
            f"{warn_label}: dropped {arr.size - positive.size} non-positive "
            f"or NaN value(s) out of {arr.size} before averaging",
            RuntimeWarning,
            stacklevel=2,
        )
    return float(np.exp(np.log(positive).mean()))


def _run(units, runner: Optional["RunnerConfig"], progress):
    """Execute units through the runner; default = strict inline run."""
    from repro.eval.runner import RunnerConfig, run_units

    if runner is None:
        runner = RunnerConfig(capture_errors=False)
    return run_units(units, runner, progress=progress).records


def sweep_spmv(
    collection: "MatrixCollection",
    *,
    formats: Iterable[str] = SPMV_FORMATS,
    machine: Optional["MachineConfig"] = None,
    via_config: Optional["ViaConfig"] = None,
    limit: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    runner: Optional["RunnerConfig"] = None,
    validate: bool = False,
) -> List[SweepRecord]:
    """Run baseline + VIA SpMV for every matrix and format (Fig. 10 data).

    The per-record ``metric`` is the matrix's median non-zeros per CSB
    block at the configured block size — the x-axis of Figure 10.
    ``validate=True`` routes every op through the runtime invariant
    checker (:class:`~repro.sim.backends.InvariantBackend`).
    """
    from repro.eval.units import spmv_units

    units = spmv_units(
        collection,
        formats=formats,
        **_hw(machine, via_config),
        limit=limit,
        validate=validate,
    )
    return _run(units, runner, progress)


def sweep_spma(
    collection: "MatrixCollection",
    *,
    machine: Optional["MachineConfig"] = None,
    via_config: Optional["ViaConfig"] = None,
    limit: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    runner: Optional["RunnerConfig"] = None,
    validate: bool = False,
) -> List[SweepRecord]:
    """Run baseline + VIA SpMA per matrix (Fig. 11 data).

    The second operand is a structurally-similar matrix generated from the
    spec with a shifted seed, mirroring the paper's same-shape additions.
    The metric is the average non-zeros per non-empty row.
    """
    from repro.eval.units import spma_units

    units = spma_units(
        collection, **_hw(machine, via_config), limit=limit,
        validate=validate,
    )
    return _run(units, runner, progress)


def sweep_spmm(
    collection: "MatrixCollection",
    *,
    machine: Optional["MachineConfig"] = None,
    via_config: Optional["ViaConfig"] = None,
    limit: Optional[int] = None,
    max_n: int = 1024,
    progress: Optional[Callable[[str], None]] = None,
    runner: Optional["RunnerConfig"] = None,
    validate: bool = False,
) -> List[SweepRecord]:
    """Run baseline + VIA SpMM per matrix (Section VII-C data).

    ``A`` is the spec's matrix in CSR; ``B`` a structural sibling in CSC.
    Matrices above ``max_n`` are skipped: the golden dense product is
    cubic, the same kind of simulation-time cut the paper makes at 20,000
    rows.
    """
    from repro.eval.units import spmm_units

    units = spmm_units(
        collection, **_hw(machine, via_config), limit=limit, max_n=max_n,
        validate=validate,
    )
    return _run(units, runner, progress)


def _hw(machine, via_config) -> dict:
    """Resolve hardware-config defaults lazily (import-cycle free)."""
    from repro.sim.config import DEFAULT_MACHINE
    from repro.via.config import DEFAULT_VIA

    return {
        "machine": machine if machine is not None else DEFAULT_MACHINE,
        "via_config": via_config if via_config is not None else DEFAULT_VIA,
    }
