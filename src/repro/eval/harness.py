"""Evaluation harness: sweep kernels over the matrix collection.

The harness regenerates the paper's evaluation data (Section VII): for each
matrix in a collection it runs baseline and VIA variants of a kernel on the
same machine model and records the speedup plus the structural metric the
paper categorizes by (CSB block density for Fig. 10, nnz/row for Fig. 11).

Each record also carries energy and memory-bandwidth ratios, used for the
Section VII-A prose claims (3.8x energy reduction, 2.5x bandwidth increase
for CSB SpMV).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.csb import CSBMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.sellcs import SellCSigmaMatrix
from repro.formats.spc5 import SPC5Matrix
from repro.kernels import spma as spma_mod
from repro.kernels import spmm as spmm_mod
from repro.kernels import spmv as spmv_mod
from repro.matrices.collection import MatrixCollection, MatrixSpec
from repro.matrices.stats import nnz_per_row_metric
from repro.sim.config import DEFAULT_MACHINE, MachineConfig
from repro.via.config import DEFAULT_VIA, ViaConfig

SPMV_FORMATS = ("csr", "csb", "spc5", "sellcs")


@dataclass
class SweepRecord:
    """One matrix's results for one kernel sweep."""

    name: str
    domain: str
    n: int
    nnz: int
    metric: float
    speedup: Dict[str, float] = field(default_factory=dict)
    energy_ratio: Dict[str, float] = field(default_factory=dict)
    bandwidth_ratio: Dict[str, float] = field(default_factory=dict)
    baseline_cycles: Dict[str, float] = field(default_factory=dict)
    via_cycles: Dict[str, float] = field(default_factory=dict)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean — the standard aggregate for speedup ratios."""
    arr = np.asarray(list(values), dtype=float)
    arr = arr[arr > 0]
    return float(np.exp(np.log(arr).mean())) if arr.size else float("nan")


def _build_format(coo: COOMatrix, fmt: str, machine: MachineConfig, via: ViaConfig):
    if fmt == "csr":
        return CSRMatrix.from_coo(coo)
    if fmt == "csb":
        return CSBMatrix.from_coo(coo, block_size=via.csb_block_size)
    if fmt == "spc5":
        return SPC5Matrix.from_coo(coo, vl=machine.vl)
    if fmt == "sellcs":
        return SellCSigmaMatrix.from_coo(coo, c=machine.vl, sigma=16 * machine.vl)
    raise ValueError(f"unknown SpMV format {fmt!r}")


def sweep_spmv(
    collection: MatrixCollection,
    *,
    formats: Iterable[str] = SPMV_FORMATS,
    machine: MachineConfig = DEFAULT_MACHINE,
    via_config: ViaConfig = DEFAULT_VIA,
    limit: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[SweepRecord]:
    """Run baseline + VIA SpMV for every matrix and format (Fig. 10 data).

    The per-record ``metric`` is the matrix's median non-zeros per CSB
    block at the configured block size — the x-axis of Figure 10.
    """
    records: List[SweepRecord] = []
    rng = np.random.default_rng(12345)
    for spec in _iter(collection, limit):
        coo = collection.matrix(spec)
        x = rng.standard_normal(coo.cols)
        csb = CSBMatrix.from_coo(coo, block_size=via_config.csb_block_size)
        per_block = csb.nnz_per_block()
        rec = SweepRecord(
            name=spec.name,
            domain=spec.domain,
            n=coo.rows,
            nnz=coo.nnz,
            metric=float(np.median(per_block)) if per_block.size else 0.0,
        )
        for fmt in formats:
            mat = csb if fmt == "csb" else _build_format(coo, fmt, machine, via_config)
            base_fn, via_fn = spmv_mod.SPMV_VARIANTS[fmt]
            base = base_fn(mat, x, machine)
            via = via_fn(mat, x, machine, via_config)
            rec.speedup[fmt] = base.cycles / via.cycles
            rec.energy_ratio[fmt] = base.energy_pj / via.energy_pj
            rec.bandwidth_ratio[fmt] = (
                via.memory_bandwidth_gbs / base.memory_bandwidth_gbs
                if base.memory_bandwidth_gbs
                else float("nan")
            )
            rec.baseline_cycles[fmt] = base.cycles
            rec.via_cycles[fmt] = via.cycles
        records.append(rec)
        if progress is not None:
            progress(spec.name)
    return records


def sweep_spma(
    collection: MatrixCollection,
    *,
    machine: MachineConfig = DEFAULT_MACHINE,
    via_config: ViaConfig = DEFAULT_VIA,
    limit: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[SweepRecord]:
    """Run baseline + VIA SpMA per matrix (Fig. 11 data).

    The second operand is a structurally-similar matrix generated from the
    spec with a shifted seed, mirroring the paper's same-shape additions.
    The metric is the average non-zeros per non-empty row.
    """
    records: List[SweepRecord] = []
    for spec in _iter(collection, limit):
        coo_a = collection.matrix(spec)
        sibling = MatrixSpec(
            name=spec.name + "_b",
            domain=spec.domain,
            n=spec.n,
            seed=spec.seed + 1,
            params=spec.params,
        )
        coo_b = sibling.build()
        if coo_b.shape != coo_a.shape:  # grid/kron generators round dims
            coo_b = COOMatrix(
                coo_a.shape,
                coo_b.row % coo_a.shape[0],
                coo_b.col % coo_a.shape[1],
                coo_b.data,
            )
        a = CSRMatrix.from_coo(coo_a)
        b = CSRMatrix.from_coo(coo_b)
        base = spma_mod.spma_csr_baseline(a, b, machine)
        via = spma_mod.spma_via(a, b, machine, via_config)
        rec = SweepRecord(
            name=spec.name,
            domain=spec.domain,
            n=coo_a.rows,
            nnz=coo_a.nnz,
            metric=nnz_per_row_metric(coo_a),
            speedup={"csr": base.cycles / via.cycles},
            energy_ratio={"csr": base.energy_pj / via.energy_pj},
            baseline_cycles={"csr": base.cycles},
            via_cycles={"csr": via.cycles},
        )
        records.append(rec)
        if progress is not None:
            progress(spec.name)
    return records


def sweep_spmm(
    collection: MatrixCollection,
    *,
    machine: MachineConfig = DEFAULT_MACHINE,
    via_config: ViaConfig = DEFAULT_VIA,
    limit: Optional[int] = None,
    max_n: int = 1024,
    progress: Optional[Callable[[str], None]] = None,
) -> List[SweepRecord]:
    """Run baseline + VIA SpMM per matrix (Section VII-C data).

    ``A`` is the spec's matrix in CSR; ``B`` a structural sibling in CSC.
    Matrices above ``max_n`` are skipped: the golden dense product is
    cubic, the same kind of simulation-time cut the paper makes at 20,000
    rows.
    """
    records: List[SweepRecord] = []
    for spec in _iter(collection, limit):
        if spec.n > max_n:
            continue
        coo_a = collection.matrix(spec)
        if coo_a.rows > max_n:
            continue
        sibling = MatrixSpec(
            name=spec.name + "_b",
            domain=spec.domain,
            n=spec.n,
            seed=spec.seed + 2,
            params=spec.params,
        )
        coo_b = sibling.build()
        if coo_b.shape != coo_a.shape:
            coo_b = COOMatrix(
                coo_a.shape,
                coo_b.row % coo_a.shape[0],
                coo_b.col % coo_a.shape[1],
                coo_b.data,
            )
        a = CSRMatrix.from_coo(coo_a)
        b = CSCMatrix.from_coo(coo_b)
        base = spmm_mod.spmm_csr_baseline(a, b, machine)
        via = spmm_mod.spmm_via(a, b, machine, via_config)
        rec = SweepRecord(
            name=spec.name,
            domain=spec.domain,
            n=coo_a.rows,
            nnz=coo_a.nnz,
            metric=nnz_per_row_metric(coo_a),
            speedup={"csr": base.cycles / via.cycles},
            energy_ratio={"csr": base.energy_pj / via.energy_pj},
            baseline_cycles={"csr": base.cycles},
            via_cycles={"csr": via.cycles},
        )
        records.append(rec)
        if progress is not None:
            progress(spec.name)
    return records


def _iter(collection: MatrixCollection, limit: Optional[int]):
    specs = collection.specs
    return specs[:limit] if limit is not None else specs
