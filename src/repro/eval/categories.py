"""Category aggregation for Figures 10 and 11.

The paper sorts the evaluated matrices by a structural metric and evenly
splits them into four categories, reporting the per-category average
speedup with the category's median metric as the x-axis label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.eval.harness import SweepRecord, geomean
from repro.matrices.stats import quartile_split


@dataclass(frozen=True)
class CategoryRow:
    """One of the four x-axis categories of Fig. 10 / Fig. 11."""

    median_metric: float
    count: int
    speedup: Dict[str, float]


@dataclass(frozen=True)
class CategorizedResult:
    """Four categories plus overall averages."""

    rows: List[CategoryRow]
    overall: Dict[str, float]

    def series(self, key: str) -> List[float]:
        """Speedup series for one format across the four categories."""
        return [row.speedup.get(key, float("nan")) for row in self.rows]


def categorize(records: Sequence[SweepRecord]) -> CategorizedResult:
    """Split sweep records into the paper's four metric categories."""
    if not records:
        return CategorizedResult(rows=[], overall={})
    metrics = [r.metric for r in records]
    groups, medians = quartile_split(metrics)
    keys = sorted({k for r in records for k in r.speedup})
    rows: List[CategoryRow] = []
    for g, med in zip(groups, medians):
        members = [records[int(i)] for i in g]
        rows.append(
            CategoryRow(
                median_metric=med,
                count=len(members),
                speedup={
                    k: geomean(m.speedup[k] for m in members if k in m.speedup)
                    for k in keys
                },
            )
        )
    overall = {
        k: geomean(r.speedup[k] for r in records if k in r.speedup) for k in keys
    }
    return CategorizedResult(rows=rows, overall=overall)


def aggregate_ratio(records: Sequence[SweepRecord], attr: str, key: str) -> float:
    """Geomean of one ratio field (e.g. energy_ratio['csb']) over a sweep."""
    values = [getattr(r, attr).get(key) for r in records]
    return geomean(v for v in values if v is not None and np.isfinite(v))
