"""Full-report CLI: regenerate every paper artifact in one run.

Usage::

    python -m repro.eval.report_cli                # default scale
    python -m repro.eval.report_cli --matrices 48 --max-n 4096
    python -m repro.eval.report_cli --out report.txt
    python -m repro.eval.report_cli --dse-timing   # record/replay speedup

This is the scripted equivalent of ``pytest benchmarks/ --benchmark-only``
for users who want the artifacts without the benchmarking machinery.

Naming note: this module *renders and runs* the full report (it was
``repro.eval.report`` until that kept colliding with
:mod:`repro.eval.reporting`, the text-table renderers).  The old name is
kept as a deprecation shim.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from repro.eval.categories import aggregate_ratio, categorize
from repro.eval.dse import run_dse
from repro.eval.harness import geomean, sweep_spma, sweep_spmm, sweep_spmv
from repro.eval.reporting import (
    render_categories,
    render_dse,
    render_ratio_line,
    render_table,
)
from repro.kernels import (
    histogram_scalar_baseline,
    histogram_vector_baseline,
    histogram_via,
    stencil_vector_baseline,
    stencil_via,
)
from repro.matrices import MatrixCollection, dse_collection
from repro.sim import table1
from repro.via import table2


def build_report(
    *,
    matrices: int = 16,
    max_n: int = 1024,
    seed: int = 2021,
    include_dse: bool = True,
    log=print,
) -> str:
    """Run every experiment and return the combined text report."""
    sections: List[str] = []
    t0 = time.perf_counter()

    def section(title: str, body: str) -> None:
        sections.append(f"{'=' * 72}\n{title}\n{'=' * 72}\n{body}")
        log(f"[{time.perf_counter() - t0:7.1f}s] {title}")

    collection = MatrixCollection(matrices, seed=seed, min_n=192, max_n=max_n)

    section("T1 — simulation parameters", table1())
    section("T2 — SSPM synthesis results", table2())

    spmv_records = sweep_spmv(collection)
    body = render_categories(
        "Figure 10 — SpMV speedup by CSB block-density category",
        categorize(spmv_records),
        metric_label="nnz/block",
    )
    body += "\n" + render_ratio_line(
        "CSB energy reduction",
        aggregate_ratio(spmv_records, "energy_ratio", "csb"),
        3.8,
    )
    body += "\n" + render_ratio_line(
        "CSB bandwidth increase",
        aggregate_ratio(spmv_records, "bandwidth_ratio", "csb"),
        2.5,
    )
    section("F10 — SpMV (paper avg: CSB 4.22x)", body)

    spma_records = sweep_spma(collection)
    section(
        "F11 — SpMA (paper avg: 6.14x)",
        render_categories(
            "Figure 11 — SpMA speedup by nnz-per-row category",
            categorize(spma_records),
            metric_label="nnz/row",
        ),
    )

    spmm_records = sweep_spmm(collection, max_n=min(max_n, 1024))
    section(
        "F11b — SpMM (paper avg: 6.00x)",
        render_categories(
            "SpMM speedup by nnz-per-row category",
            categorize(spmm_records),
            metric_label="nnz/row",
        ),
    )

    section("F12a — histogram (paper: 5.49x / 4.51x)", _histogram_section())
    section("F12b — stencil (paper avg: 3.39x)", _stencil_section())

    if include_dse:
        dse = run_dse(
            dse_collection(),
            spmm_collection=MatrixCollection(4, seed=99, min_n=256, max_n=640),
        )
        section("F9 — design-space exploration", render_dse(dse))

    sections.append(f"report generated in {time.perf_counter() - t0:.1f}s")
    return "\n\n".join(sections)


def _histogram_section() -> str:
    rng = np.random.default_rng(42)
    rows = []
    ratios_s, ratios_v = [], []
    for name, keys in (
        ("uniform", rng.integers(0, 1024, 16384)),
        ("zipf", np.minimum((1024 * rng.random(16384) ** 3).astype(int), 1023)),
    ):
        s = histogram_scalar_baseline(keys, 1024)
        v = histogram_vector_baseline(keys, 1024)
        via = histogram_via(keys, 1024, functional=False)
        ratios_s.append(s.cycles / via.cycles)
        ratios_v.append(v.cycles / via.cycles)
        rows.append(
            [name, f"{ratios_s[-1]:.2f}x", f"{ratios_v[-1]:.2f}x"]
        )
    rows.append(["geomean", f"{geomean(ratios_s):.2f}x", f"{geomean(ratios_v):.2f}x"])
    return render_table(
        "Figure 12a — histogram speedups", ["keys", "vs scalar", "vs vector"], rows
    )


def _stencil_section() -> str:
    rng = np.random.default_rng(3)
    rows = []
    ratios = []
    for size in (128, 256):
        image = rng.standard_normal((size, size))
        base = stencil_vector_baseline(image)
        via = stencil_via(image, functional=False)
        ratios.append(base.cycles / via.cycles)
        rows.append([f"{size}px", f"{ratios[-1]:.2f}x"])
    rows.append(["geomean", f"{geomean(ratios):.2f}x"])
    return render_table(
        "Figure 12b — Gaussian filter speedups", ["image", "speedup"], rows
    )


def dse_timing_report(
    *,
    matrices: int = 6,
    max_n: int = 640,
    seed: int = 2021,
    log=print,
) -> str:
    """Measure the record/replay DSE against per-config direct sweeps.

    Runs the same configuration sweep three ways — direct (every config
    re-executes every kernel), cold record/replay (record once per
    SSPM-capacity group into a fresh store, replay every config), and warm
    replay (second pass over the same store) — and reports wall times plus
    a bit-identity check of every kernel×config cell.  Two sweeps are
    timed: the paper's four Fig. 9 configurations, and a 2-capacity ×
    4-port sweep where the replay economics are starker (one recording per
    capacity serves four port variants).
    """
    import tempfile

    from repro.via.config import ViaConfig, dse_configs

    collection = MatrixCollection(matrices, seed=seed, min_n=192, max_n=max_n)
    sweeps = [
        ("Fig. 9 (4 configs)", dse_configs()),
        (
            "port scaling (8 configs)",
            [ViaConfig(kb, p) for kb in (4, 16) for p in (1, 2, 4, 8)],
        ),
    ]
    rows = []
    for label, configs in sweeps:
        t0 = time.perf_counter()
        direct = run_dse(collection, configs=configs)
        t_direct = time.perf_counter() - t0
        log(f"{label}: direct {t_direct:.2f}s")
        with tempfile.TemporaryDirectory() as td:
            t0 = time.perf_counter()
            replayed = run_dse(collection, configs=configs, record_dir=td)
            t_cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            warm = run_dse(collection, configs=configs, record_dir=td)
            t_warm = time.perf_counter() - t0
        identical = all(
            replayed.cycles[k][c] == v and warm.cycles[k][c] == v
            for k, per_cfg in direct.cycles.items()
            for c, v in per_cfg.items()
        )
        log(
            f"{label}: record+replay {t_cold:.2f}s "
            f"({t_direct / t_cold:.2f}x), warm {t_warm:.2f}s, "
            f"identical={identical}"
        )
        rows.append([
            label,
            f"{t_direct:.2f}s",
            f"{t_cold:.2f}s",
            f"{t_direct / t_cold:.2f}x",
            f"{t_warm:.2f}s",
            f"{t_direct / t_warm:.2f}x",
            "yes" if identical else "NO",
        ])
    return render_table(
        "DSE wall time — per-config direct vs record/replay",
        ["sweep", "direct", "cold replay", "speedup", "warm replay",
         "speedup", "bit-identical"],
        rows,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.report_cli",
        description="Regenerate the paper's evaluation artifacts.",
    )
    parser.add_argument("--matrices", type=int, default=16,
                        help="matrices in the collection (default 16)")
    parser.add_argument("--max-n", type=int, default=1024,
                        help="largest matrix dimension (default 1024)")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--skip-dse", action="store_true",
                        help="skip the (slow) Figure 9 sweep")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the report to this file")
    parser.add_argument("--dse-timing", action="store_true",
                        help="measure the record/replay DSE against "
                             "per-config direct sweeps and exit")
    args = parser.parse_args(argv)

    if args.dse_timing:
        report = dse_timing_report(seed=args.seed)
        print(report)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(report + "\n")
        return 0

    report = build_report(
        matrices=args.matrices,
        max_n=args.max_n,
        seed=args.seed,
        include_dse=not args.skip_dse,
    )
    print(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
