"""Design-space exploration — regenerates Figure 9 and Table II.

Figure 9 sweeps the four SSPM configurations (4_2p, 4_4p, 16_2p, 16_4p)
over the three sparse kernels and reports each kernel's speedup normalized
to its own 4_2p configuration.  Table II pairs those configurations with
their synthesized area and leakage (see :mod:`repro.via.area`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.eval.harness import geomean, sweep_spma, sweep_spmm, sweep_spmv
from repro.matrices.collection import MatrixCollection
from repro.sim.config import DEFAULT_MACHINE, MachineConfig
from repro.via.config import ViaConfig, dse_configs

if TYPE_CHECKING:
    from repro.eval.runner import RunnerConfig

DSE_KERNELS = ("spmv", "spma", "spmm")


@dataclass(frozen=True)
class DseResult:
    """Per-kernel mean VIA cycles for every configuration swept."""

    #: kernel -> config name -> geomean VIA cycles over the collection
    cycles: Dict[str, Dict[str, float]]
    baseline_config: str = "4_2p"

    def normalized_speedup(self, kernel: str) -> Dict[str, float]:
        """Figure 9's y-axis: speedup of each config over 4_2p."""
        per_config = self.cycles[kernel]
        base = per_config[self.baseline_config]
        return {name: base / c for name, c in per_config.items()}

    def best_config(self, kernel: str) -> str:
        per_config = self.cycles[kernel]
        return min(per_config, key=per_config.get)


def run_dse(
    collection: MatrixCollection,
    *,
    configs: Optional[List[ViaConfig]] = None,
    machine: MachineConfig = DEFAULT_MACHINE,
    limit: Optional[int] = None,
    spmm_collection: Optional[MatrixCollection] = None,
    spmm_max_n: int = 1024,
    runner: Optional["RunnerConfig"] = None,
) -> DseResult:
    """Sweep every configuration over the three kernels (Figure 9).

    SpMV runs the CSB flow (the paper's DSE uses the best-performing
    format); SpMA and SpMM run the CSR flows.  CSB block sizes follow each
    configuration (half the SSPM), so the sweep captures the capacity
    effect as well as the port effect.

    ``runner`` is forwarded to every underlying sweep — the DSE re-sweeps
    the same collection once per configuration, so a cached parallel
    :class:`~repro.eval.runner.RunnerConfig` pays off most here.
    """
    configs = list(configs) if configs is not None else dse_configs()
    cycles: Dict[str, Dict[str, float]] = {k: {} for k in DSE_KERNELS}
    for cfg in configs:
        spmv_recs = sweep_spmv(
            collection,
            formats=("csb",),
            machine=machine,
            via_config=cfg,
            limit=limit,
            runner=runner,
        )
        cycles["spmv"][cfg.name] = geomean(
            r.via_cycles["csb"] for r in spmv_recs
        )
        spma_recs = sweep_spma(
            collection, machine=machine, via_config=cfg, limit=limit,
            runner=runner,
        )
        cycles["spma"][cfg.name] = geomean(
            r.via_cycles["csr"] for r in spma_recs
        )
        spmm_recs = sweep_spmm(
            spmm_collection if spmm_collection is not None else collection,
            machine=machine,
            via_config=cfg,
            limit=limit,
            max_n=spmm_max_n,
            runner=runner,
        )
        cycles["spmm"][cfg.name] = geomean(
            r.via_cycles["csr"] for r in spmm_recs
        )
    return DseResult(cycles=cycles)
