"""Design-space exploration — regenerates Figure 9 and Table II.

Figure 9 sweeps the four SSPM configurations (4_2p, 4_4p, 16_2p, 16_4p)
over the three sparse kernels and reports each kernel's speedup normalized
to its own 4_2p configuration.  Table II pairs those configurations with
their synthesized area and leakage (see :mod:`repro.via.area`).

With ``record_dir`` set, the sweep runs in record/replay mode over the
op-stream IR (:mod:`repro.sim.ops`): each matrix×kernel executes *once per
stream-shape group* (the four configurations collapse into two — SSPM
ports never shape the op stream), and every configuration re-prices the
recorded streams.  Results are bit-identical to direct execution; only the
wall time changes, from O(configs × full runs) to
O(shape groups × full runs + configs × cheap replays).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.eval.harness import geomean, sweep_spma, sweep_spmm, sweep_spmv
from repro.matrices.collection import MatrixCollection
from repro.sim.config import DEFAULT_MACHINE, MachineConfig
from repro.via.config import ViaConfig, dse_configs

if TYPE_CHECKING:
    from repro.eval.runner import RunnerConfig

DSE_KERNELS = ("spmv", "spma", "spmm")


@dataclass(frozen=True)
class DseResult:
    """Per-kernel mean VIA cycles for every configuration swept.

    Under ``strategy="guided"`` only the model-ranked survivors were
    simulated: ``cycles`` holds just those entries (bit-identical to
    their exhaustive counterparts), ``predicted`` holds the model's
    ranking scores for *every* candidate, and ``simulated`` names the
    survivors per kernel.  Exhaustive results leave the guided fields at
    their defaults, so existing consumers are untouched.
    """

    #: kernel -> config name -> geomean VIA cycles over the collection
    cycles: Dict[str, Dict[str, float]]
    baseline_config: str = "4_2p"
    strategy: str = "exhaustive"
    #: every candidate config name, in sweep order
    candidates: Tuple[str, ...] = ()
    #: kernel -> config names actually simulated (guided survivors)
    simulated: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: kernel -> config name -> model-predicted geomean cycles
    predicted: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def normalized_speedup(self, kernel: str) -> Dict[str, float]:
        """Figure 9's y-axis: speedup of each config over 4_2p.

        Guided results only support this when the baseline survived the
        halving for ``kernel`` (a ``KeyError`` otherwise — there is no
        simulated baseline to normalize against).
        """
        per_config = self.cycles[kernel]
        base = per_config[self.baseline_config]
        return {name: base / c for name, c in per_config.items()}

    def best_config(self, kernel: str) -> str:
        per_config = self.cycles[kernel]
        return min(per_config, key=per_config.get)

    def simulated_fraction(self) -> float:
        """Simulated kernel×config cells over candidate cells (1.0 = all)."""
        if not self.candidates:
            return 1.0
        total = len(self.candidates) * len(self.cycles)
        done = sum(len(v) for v in self.cycles.values())
        return done / total if total else 1.0


def _dse_unit_lists(
    kernel: str,
    collection: MatrixCollection,
    cfg: ViaConfig,
    machine: MachineConfig,
    limit: Optional[int],
    spmm_collection: Optional[MatrixCollection],
    spmm_max_n: int,
    validate: bool = False,
):
    """The work-unit list and metric format for one kernel×config cell."""
    from repro.eval.units import spma_units, spmm_units, spmv_units

    if kernel == "spmv":
        units = spmv_units(
            collection,
            formats=("csb",),
            machine=machine,
            via_config=cfg,
            limit=limit,
            validate=validate,
        )
        return units, "csb"
    if kernel == "spma":
        units = spma_units(
            collection, machine=machine, via_config=cfg, limit=limit,
            validate=validate,
        )
        return units, "csr"
    units = spmm_units(
        spmm_collection if spmm_collection is not None else collection,
        machine=machine,
        via_config=cfg,
        limit=limit,
        max_n=spmm_max_n,
        validate=validate,
    )
    return units, "csr"


def run_dse(
    collection: MatrixCollection,
    *,
    configs: Optional[List[ViaConfig]] = None,
    machine: MachineConfig = DEFAULT_MACHINE,
    limit: Optional[int] = None,
    spmm_collection: Optional[MatrixCollection] = None,
    spmm_max_n: int = 1024,
    runner: Optional["RunnerConfig"] = None,
    record_dir: Optional[str] = None,
    engine: Optional[str] = None,
    validate: bool = False,
    strategy: str = "exhaustive",
    model: Any = None,
    guided_keep: float = 0.5,
) -> DseResult:
    """Sweep every configuration over the three kernels (Figure 9).

    SpMV runs the CSB flow (the paper's DSE uses the best-performing
    format); SpMA and SpMM run the CSR flows.  CSB block sizes follow each
    configuration (half the SSPM), so the sweep captures the capacity
    effect as well as the port effect.

    ``runner`` is forwarded to every underlying sweep — the DSE re-sweeps
    the same collection once per configuration, so a cached parallel
    :class:`~repro.eval.runner.RunnerConfig` pays off most here.

    ``record_dir`` switches to record/replay mode: each matrix×kernel runs
    functionally once per SSPM-capacity group, writing op-stream artifacts
    into that directory, and every configuration is priced by replaying
    them (bit-identical to the direct sweep, see
    ``tests/test_ops_replay_differential.py``).

    ``engine`` selects the replay pricing engine (``"scalar"`` or
    ``"columnar"``, see :data:`repro.sim.backends.REPLAY_ENGINES`); it only
    applies in record/replay mode and never changes results — both engines
    are bit-identical by contract.

    ``validate`` routes every op (direct, record, and replay) through the
    runtime invariant checker
    (:class:`~repro.sim.backends.InvariantBackend`).

    ``strategy="guided"`` prunes the sweep with the learned cost model
    (:mod:`repro.model`): per kernel, every candidate is *ranked* by
    predicted geomean cycles and the candidate pool is successively
    halved down to ``ceil(len(configs) × guided_keep)`` survivors, which
    are the only configurations simulated.  Survivor cycle counts are
    bit-identical to the exhaustive sweep's (same units, same cache
    keys); only the pruned cells are absent.  ``model`` may be a
    :class:`~repro.model.cost.CostModel`, a
    :class:`~repro.model.cost.JobCostEstimator`, a model-store directory
    path, or ``None`` (the deterministic analytic fallback).
    """
    configs = list(configs) if configs is not None else dse_configs()
    if strategy not in ("exhaustive", "guided"):
        raise ValueError(
            f"unknown DSE strategy {strategy!r}; "
            "expected 'exhaustive' or 'guided'"
        )
    if strategy == "guided":
        return _run_dse_guided(
            collection,
            configs=configs,
            machine=machine,
            limit=limit,
            spmm_collection=spmm_collection,
            spmm_max_n=spmm_max_n,
            runner=runner,
            record_dir=record_dir,
            engine=engine,
            validate=validate,
            model=model,
            keep=guided_keep,
        )
    if record_dir is not None:
        return _run_dse_replay(
            collection,
            configs=configs,
            machine=machine,
            limit=limit,
            spmm_collection=spmm_collection,
            spmm_max_n=spmm_max_n,
            runner=runner,
            record_dir=record_dir,
            engine=engine,
            validate=validate,
        )
    cycles: Dict[str, Dict[str, float]] = {k: {} for k in DSE_KERNELS}
    for cfg in configs:
        spmv_recs = sweep_spmv(
            collection,
            formats=("csb",),
            machine=machine,
            via_config=cfg,
            limit=limit,
            runner=runner,
            validate=validate,
        )
        cycles["spmv"][cfg.name] = geomean(
            r.via_cycles["csb"] for r in spmv_recs
        )
        spma_recs = sweep_spma(
            collection, machine=machine, via_config=cfg, limit=limit,
            runner=runner, validate=validate,
        )
        cycles["spma"][cfg.name] = geomean(
            r.via_cycles["csr"] for r in spma_recs
        )
        spmm_recs = sweep_spmm(
            spmm_collection if spmm_collection is not None else collection,
            machine=machine,
            via_config=cfg,
            limit=limit,
            max_n=spmm_max_n,
            runner=runner,
            validate=validate,
        )
        cycles["spmm"][cfg.name] = geomean(
            r.via_cycles["csr"] for r in spmm_recs
        )
    return DseResult(cycles=cycles)


def _run_dse_replay(
    collection: MatrixCollection,
    *,
    configs: List[ViaConfig],
    machine: MachineConfig,
    limit: Optional[int],
    spmm_collection: Optional[MatrixCollection],
    spmm_max_n: int,
    runner: Optional["RunnerConfig"],
    record_dir: str,
    engine: Optional[str] = None,
    validate: bool = False,
) -> DseResult:
    """Record once per stream-shape group, replay once per configuration."""
    from repro.eval.harness import _run
    from repro.eval.units import record_units, replay_units

    # one representative per shape group: ports never shape the op stream,
    # so configs differing only in ports share recordings
    representatives: Dict[int, ViaConfig] = {}
    for cfg in configs:
        representatives.setdefault(cfg.sram_kb, cfg)
    for rep in representatives.values():
        for kernel in DSE_KERNELS:
            units, _ = _dse_unit_lists(
                kernel, collection, rep, machine, limit,
                spmm_collection, spmm_max_n, validate,
            )
            _run(record_units(units, record_dir=record_dir), runner, None)
    cycles: Dict[str, Dict[str, float]] = {k: {} for k in DSE_KERNELS}
    for cfg in configs:
        for kernel in DSE_KERNELS:
            units, fmt = _dse_unit_lists(
                kernel, collection, cfg, machine, limit,
                spmm_collection, spmm_max_n, validate,
            )
            recs = _run(
                replay_units(units, record_dir=record_dir, engine=engine),
                runner,
                None,
            )
            cycles[kernel][cfg.name] = geomean(
                r.via_cycles[fmt] for r in recs
            )
    return DseResult(cycles=cycles)


# ----------------------------------------------------------------------
# model-guided search


def _resolve_estimator(model: Any):
    """Accept a CostModel, an estimator, a store path, or None."""
    from repro.model.cost import CostModel, JobCostEstimator

    if model is None:
        return JobCostEstimator()
    if isinstance(model, JobCostEstimator):
        return model
    if isinstance(model, CostModel):
        return JobCostEstimator(model)
    if isinstance(model, str):
        return JobCostEstimator.load(model)
    raise TypeError(
        f"model must be a CostModel, JobCostEstimator, store path, or "
        f"None, got {type(model).__name__}"
    )


def _kernel_specs(
    kernel: str,
    collection: MatrixCollection,
    limit: Optional[int],
    spmm_collection: Optional[MatrixCollection],
    spmm_max_n: int,
):
    """The matrix specs one kernel's sweep actually simulates."""
    source = (
        spmm_collection
        if kernel == "spmm" and spmm_collection is not None
        else collection
    )
    specs = source.specs
    if limit is not None:
        specs = specs[:limit]
    if kernel == "spmm":
        specs = [s for s in specs if s.n <= spmm_max_n]
    return specs


def _predicted_geomean(
    estimator: Any,
    kernel: str,
    fmt: str,
    cfg: ViaConfig,
    machine: MachineConfig,
    specs,
) -> float:
    """Model-predicted geomean VIA cycles for one kernel×config cell."""
    import dataclasses

    from repro.model.dataset import spec_structure_features

    featurized = [
        (s.name, spec_structure_features(s, block_size=cfg.csb_block_size))
        for s in specs
    ]
    cycles = estimator.predict_units(
        featurized,
        kernel=kernel,
        fmt=fmt,
        via={"sram_kb": cfg.sram_kb, "ports": cfg.ports},
        machine=dataclasses.asdict(machine),
    )
    return geomean(cycles, warn_label=f"guided DSE predict {kernel}")


def _run_dse_guided(
    collection: MatrixCollection,
    *,
    configs: List[ViaConfig],
    machine: MachineConfig,
    limit: Optional[int],
    spmm_collection: Optional[MatrixCollection],
    spmm_max_n: int,
    runner: Optional["RunnerConfig"],
    record_dir: Optional[str],
    engine: Optional[str],
    validate: bool,
    model: Any,
    keep: float,
) -> DseResult:
    """Rank by predicted cycles, halve to survivors, simulate survivors.

    The halving schedule: per kernel, the candidate pool (ordered by
    predicted geomean cycles, best first) is cut in half each rung until
    it reaches ``ceil(len(configs) × keep)``.  With the paper's four
    Figure 9 configurations and the default ``keep=0.5`` that is one
    rung to two survivors — half the simulation work of the exhaustive
    sweep, per kernel.
    """
    if not (0.0 < keep <= 1.0):
        raise ValueError(f"guided_keep must be in (0, 1], got {keep}")
    from repro.eval.harness import _run
    from repro.eval.units import record_units, replay_units

    estimator = _resolve_estimator(model)
    target = max(1, math.ceil(len(configs) * keep))
    predicted: Dict[str, Dict[str, float]] = {}
    survivors: Dict[str, List[ViaConfig]] = {}
    for kernel in DSE_KERNELS:
        fmt = "csb" if kernel == "spmv" else "csr"
        specs = _kernel_specs(
            kernel, collection, limit, spmm_collection, spmm_max_n
        )
        scores = {
            cfg.name: _predicted_geomean(
                estimator, kernel, fmt, cfg, machine, specs
            )
            for cfg in configs
        }
        predicted[kernel] = scores
        # successive halving on the static ranking: candidate order is
        # (score, sweep position) so prediction ties resolve stably
        order = {cfg.name: i for i, cfg in enumerate(configs)}
        pool = sorted(configs, key=lambda c: (scores[c.name], order[c.name]))
        while len(pool) > target:
            pool = pool[: max(target, (len(pool) + 1) // 2)]
        survivors[kernel] = sorted(pool, key=lambda c: order[c.name])

    cycles: Dict[str, Dict[str, float]] = {k: {} for k in DSE_KERNELS}
    for kernel in DSE_KERNELS:
        fmt = "csb" if kernel == "spmv" else "csr"
        if record_dir is not None:
            # record once per surviving capacity group, then replay
            reps: Dict[int, ViaConfig] = {}
            for cfg in survivors[kernel]:
                reps.setdefault(cfg.sram_kb, cfg)
            for rep in reps.values():
                units, _ = _dse_unit_lists(
                    kernel, collection, rep, machine, limit,
                    spmm_collection, spmm_max_n, validate,
                )
                _run(
                    record_units(units, record_dir=record_dir), runner, None
                )
        for cfg in survivors[kernel]:
            units, _ = _dse_unit_lists(
                kernel, collection, cfg, machine, limit,
                spmm_collection, spmm_max_n, validate,
            )
            if record_dir is not None:
                units = replay_units(
                    units, record_dir=record_dir, engine=engine
                )
            recs = _run(units, runner, None)
            cycles[kernel][cfg.name] = geomean(
                r.via_cycles[fmt] for r in recs
            )
    return DseResult(
        cycles=cycles,
        strategy="guided",
        candidates=tuple(cfg.name for cfg in configs),
        simulated={
            k: tuple(cfg.name for cfg in v) for k, v in survivors.items()
        },
        predicted=predicted,
    )
