"""Design-space exploration — regenerates Figure 9 and Table II.

Figure 9 sweeps the four SSPM configurations (4_2p, 4_4p, 16_2p, 16_4p)
over the three sparse kernels and reports each kernel's speedup normalized
to its own 4_2p configuration.  Table II pairs those configurations with
their synthesized area and leakage (see :mod:`repro.via.area`).

With ``record_dir`` set, the sweep runs in record/replay mode over the
op-stream IR (:mod:`repro.sim.ops`): each matrix×kernel executes *once per
stream-shape group* (the four configurations collapse into two — SSPM
ports never shape the op stream), and every configuration re-prices the
recorded streams.  Results are bit-identical to direct execution; only the
wall time changes, from O(configs × full runs) to
O(shape groups × full runs + configs × cheap replays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.eval.harness import geomean, sweep_spma, sweep_spmm, sweep_spmv
from repro.matrices.collection import MatrixCollection
from repro.sim.config import DEFAULT_MACHINE, MachineConfig
from repro.via.config import ViaConfig, dse_configs

if TYPE_CHECKING:
    from repro.eval.runner import RunnerConfig

DSE_KERNELS = ("spmv", "spma", "spmm")


@dataclass(frozen=True)
class DseResult:
    """Per-kernel mean VIA cycles for every configuration swept."""

    #: kernel -> config name -> geomean VIA cycles over the collection
    cycles: Dict[str, Dict[str, float]]
    baseline_config: str = "4_2p"

    def normalized_speedup(self, kernel: str) -> Dict[str, float]:
        """Figure 9's y-axis: speedup of each config over 4_2p."""
        per_config = self.cycles[kernel]
        base = per_config[self.baseline_config]
        return {name: base / c for name, c in per_config.items()}

    def best_config(self, kernel: str) -> str:
        per_config = self.cycles[kernel]
        return min(per_config, key=per_config.get)


def _dse_unit_lists(
    kernel: str,
    collection: MatrixCollection,
    cfg: ViaConfig,
    machine: MachineConfig,
    limit: Optional[int],
    spmm_collection: Optional[MatrixCollection],
    spmm_max_n: int,
    validate: bool = False,
):
    """The work-unit list and metric format for one kernel×config cell."""
    from repro.eval.units import spma_units, spmm_units, spmv_units

    if kernel == "spmv":
        units = spmv_units(
            collection,
            formats=("csb",),
            machine=machine,
            via_config=cfg,
            limit=limit,
            validate=validate,
        )
        return units, "csb"
    if kernel == "spma":
        units = spma_units(
            collection, machine=machine, via_config=cfg, limit=limit,
            validate=validate,
        )
        return units, "csr"
    units = spmm_units(
        spmm_collection if spmm_collection is not None else collection,
        machine=machine,
        via_config=cfg,
        limit=limit,
        max_n=spmm_max_n,
        validate=validate,
    )
    return units, "csr"


def run_dse(
    collection: MatrixCollection,
    *,
    configs: Optional[List[ViaConfig]] = None,
    machine: MachineConfig = DEFAULT_MACHINE,
    limit: Optional[int] = None,
    spmm_collection: Optional[MatrixCollection] = None,
    spmm_max_n: int = 1024,
    runner: Optional["RunnerConfig"] = None,
    record_dir: Optional[str] = None,
    engine: Optional[str] = None,
    validate: bool = False,
) -> DseResult:
    """Sweep every configuration over the three kernels (Figure 9).

    SpMV runs the CSB flow (the paper's DSE uses the best-performing
    format); SpMA and SpMM run the CSR flows.  CSB block sizes follow each
    configuration (half the SSPM), so the sweep captures the capacity
    effect as well as the port effect.

    ``runner`` is forwarded to every underlying sweep — the DSE re-sweeps
    the same collection once per configuration, so a cached parallel
    :class:`~repro.eval.runner.RunnerConfig` pays off most here.

    ``record_dir`` switches to record/replay mode: each matrix×kernel runs
    functionally once per SSPM-capacity group, writing op-stream artifacts
    into that directory, and every configuration is priced by replaying
    them (bit-identical to the direct sweep, see
    ``tests/test_ops_replay_differential.py``).

    ``engine`` selects the replay pricing engine (``"scalar"`` or
    ``"columnar"``, see :data:`repro.sim.backends.REPLAY_ENGINES`); it only
    applies in record/replay mode and never changes results — both engines
    are bit-identical by contract.

    ``validate`` routes every op (direct, record, and replay) through the
    runtime invariant checker
    (:class:`~repro.sim.backends.InvariantBackend`).
    """
    configs = list(configs) if configs is not None else dse_configs()
    if record_dir is not None:
        return _run_dse_replay(
            collection,
            configs=configs,
            machine=machine,
            limit=limit,
            spmm_collection=spmm_collection,
            spmm_max_n=spmm_max_n,
            runner=runner,
            record_dir=record_dir,
            engine=engine,
            validate=validate,
        )
    cycles: Dict[str, Dict[str, float]] = {k: {} for k in DSE_KERNELS}
    for cfg in configs:
        spmv_recs = sweep_spmv(
            collection,
            formats=("csb",),
            machine=machine,
            via_config=cfg,
            limit=limit,
            runner=runner,
            validate=validate,
        )
        cycles["spmv"][cfg.name] = geomean(
            r.via_cycles["csb"] for r in spmv_recs
        )
        spma_recs = sweep_spma(
            collection, machine=machine, via_config=cfg, limit=limit,
            runner=runner, validate=validate,
        )
        cycles["spma"][cfg.name] = geomean(
            r.via_cycles["csr"] for r in spma_recs
        )
        spmm_recs = sweep_spmm(
            spmm_collection if spmm_collection is not None else collection,
            machine=machine,
            via_config=cfg,
            limit=limit,
            max_n=spmm_max_n,
            runner=runner,
            validate=validate,
        )
        cycles["spmm"][cfg.name] = geomean(
            r.via_cycles["csr"] for r in spmm_recs
        )
    return DseResult(cycles=cycles)


def _run_dse_replay(
    collection: MatrixCollection,
    *,
    configs: List[ViaConfig],
    machine: MachineConfig,
    limit: Optional[int],
    spmm_collection: Optional[MatrixCollection],
    spmm_max_n: int,
    runner: Optional["RunnerConfig"],
    record_dir: str,
    engine: Optional[str] = None,
    validate: bool = False,
) -> DseResult:
    """Record once per stream-shape group, replay once per configuration."""
    from repro.eval.harness import _run
    from repro.eval.units import record_units, replay_units

    # one representative per shape group: ports never shape the op stream,
    # so configs differing only in ports share recordings
    representatives: Dict[int, ViaConfig] = {}
    for cfg in configs:
        representatives.setdefault(cfg.sram_kb, cfg)
    for rep in representatives.values():
        for kernel in DSE_KERNELS:
            units, _ = _dse_unit_lists(
                kernel, collection, rep, machine, limit,
                spmm_collection, spmm_max_n, validate,
            )
            _run(record_units(units, record_dir=record_dir), runner, None)
    cycles: Dict[str, Dict[str, float]] = {k: {} for k in DSE_KERNELS}
    for cfg in configs:
        for kernel in DSE_KERNELS:
            units, fmt = _dse_unit_lists(
                kernel, collection, cfg, machine, limit,
                spmm_collection, spmm_max_n, validate,
            )
            recs = _run(
                replay_units(units, record_dir=record_dir, engine=engine),
                runner,
                None,
            )
            cycles[kernel][cfg.name] = geomean(
                r.via_cycles[fmt] for r in recs
            )
    return DseResult(cycles=cycles)
