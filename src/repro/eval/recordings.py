"""Content-addressed store for recorded op-stream artifacts.

Mirrors the layout and integrity discipline of the PR-1 result cache
(:class:`repro.eval.runner.ResultCache`): one compressed ``.npz`` file per
work unit at ``<root>/<key[:2]>/<key>.npz``, written atomically, verified
on load (schema version + checksum + key match), and *self-healing* — any
unreadable or mismatched artifact is deleted and treated as a miss, so the
caller re-records instead of ever consuming rot.

The key (:func:`recording_key`) hashes only what determines the *stream*:
the matrix spec, kernel, formats, the stream-shaping subset of the machine
config, the SSPM capacity, the code fingerprint, and the IR schema
version.  SSPM port counts and pure-pricing machine knobs are deliberately
absent — that is what lets one recording serve every port variant of a
Fig. 9 shape group.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.errors import RecordingError
from repro.sim.ops import (
    OPS_SCHEMA_VERSION,
    Recording,
    load_recordings,
    machine_shape_key,
    save_recordings,
)

#: kernel families whose *baseline* narration never reads the VIA config.
#: Their baseline recordings drop the SSPM capacity from the key, so one
#: baseline artifact serves every shape group of the Fig. 9 DSE — the
#: second group's record run replays it instead of re-running the kernel.
SHARED_BASELINE_KERNELS = frozenset({"spma", "spmm"})

#: fields deliberately outside :func:`recording_key`, checked by the
#: VIA101 cache-key hygiene rule (``python -m repro.analysis``).  The
#: machine side is covered by :func:`repro.sim.ops.machine_shape_key`,
#: which carries its own exemptions.
KEY_EXEMPT = {
    "WorkUnit": {
        "record_dir": "the recording is invariant to where it is stored",
        "validate": "invariant checking only verifies streams; it never "
        "changes them",
        "engine": "the replay pricing engine re-prices a stream; it never "
        "shapes one — recordings are engine-invariant",
    },
    "ViaConfig": {
        "ports": "pure-pricing knob applied at replay time; excluding it "
        "is what lets one recording serve every port variant",
    },
}


def recording_key(unit, code_version: str, *, part: str = "via") -> str:
    """Stable content hash of everything that shapes a unit's op streams.

    Two units hash equal iff direct execution would narrate identical op
    streams for them, so their recordings are interchangeable: same spec,
    kernel, formats, vector length, L1 latency, and SSPM capacity.  Port
    counts and all other machine knobs only affect pricing and are applied
    at replay time.

    ``part`` separates a unit's two artifacts: ``"via"`` (the VIA kernel
    streams plus the unit's skeleton metadata) and ``"base"`` (the baseline
    kernel streams).  For :data:`SHARED_BASELINE_KERNELS` the base key
    additionally drops the SSPM capacity — those baselines narrate
    identically under every VIA configuration.
    """
    kernel = unit.kernel or unit.kind
    via_sram_kb: Optional[int] = unit.via_config.sram_kb
    if part == "base" and kernel in SHARED_BASELINE_KERNELS:
        via_sram_kb = None
    payload = {
        "kernel": kernel,
        "part": part,
        "spec": {
            "name": unit.spec.name,
            "domain": unit.spec.domain,
            "n": unit.spec.n,
            "seed": unit.spec.seed,
            "params": unit.spec.params,
        },
        "formats": list(unit.formats),
        "max_n": unit.max_n,
        "machine_shape": machine_shape_key(unit.machine),
        "via_sram_kb": via_sram_kb,
        "code": code_version,
        "ops_schema": OPS_SCHEMA_VERSION,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: process-local artifact cache keyed by (path, mtime_ns, size) — any write
#: or tamper changes the stat signature, so stale entries can never be
#: served after the file on disk changes.  Guarded by a lock because the
#: serving layer (:mod:`repro.serve`) replays from executor threads.
_LOAD_MEMO: "OrderedDict[Tuple[str, int, int], Tuple[Dict[str, Recording], Dict[str, Any]]]" = OrderedDict()
_LOAD_MEMO_MAX = 256
_LOAD_MEMO_LOCK = threading.Lock()


class RecordingStore:
    """On-disk artifact store, one ``save_recordings`` file per key."""

    def __init__(self, root: str):
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.npz"

    def get(
        self, key: str
    ) -> Optional[Tuple[Dict[str, Recording], Dict[str, Any]]]:
        """Load ``(recordings, extra_meta)`` for a key, or ``None``.

        Corrupt, truncated, schema-stale, or mis-keyed artifacts are
        deleted on sight so the next record run rewrites them cleanly.
        """
        path = self._path(key)
        try:
            st = path.stat()
        except OSError:
            return None
        memo_key = (str(path), st.st_mtime_ns, st.st_size)
        with _LOAD_MEMO_LOCK:
            hit = _LOAD_MEMO.get(memo_key)
            if hit is not None:
                _LOAD_MEMO.move_to_end(memo_key)
                return hit
        try:
            recordings, extra = load_recordings(path)
            if extra.get("key") != key:
                raise RecordingError(
                    f"artifact {path} is filed under the wrong key"
                )
        except RecordingError:
            path.unlink(missing_ok=True)
            return None
        with _LOAD_MEMO_LOCK:
            _LOAD_MEMO[memo_key] = (recordings, extra)
            while len(_LOAD_MEMO) > _LOAD_MEMO_MAX:
                _LOAD_MEMO.popitem(last=False)
        return recordings, extra

    def has(self, key: str) -> bool:
        """Whether an artifact file exists for ``key`` (no integrity load).

        A cheap existence probe for observability (the serving layer's
        replay-hit accounting); the authoritative integrity check still
        happens in :meth:`get` when the artifact is actually consumed.
        """
        return self._path(key).exists()

    def put(
        self,
        key: str,
        recordings: Dict[str, Recording],
        *,
        extra_meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Atomically persist recordings under a key (tmp + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = dict(extra_meta or {})
        meta["key"] = key
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".npz"
        )
        os.close(fd)
        try:
            save_recordings(tmp, recordings, extra_meta=meta)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        # pre-seed the load memo: in-process readers (the replay phase of a
        # record/replay sweep) skip the decompress-and-rebuild round trip
        st = path.stat()
        with _LOAD_MEMO_LOCK:
            _LOAD_MEMO[(str(path), st.st_mtime_ns, st.st_size)] = (
                dict(recordings),
                meta,
            )
            while len(_LOAD_MEMO) > _LOAD_MEMO_MAX:
                _LOAD_MEMO.popitem(last=False)

    def invalidate(self) -> None:
        """Delete every stored artifact."""
        if self.root.exists():
            shutil.rmtree(self.root)
