"""Evaluation harness: sweeps, category aggregation, DSE and reporting.

This package regenerates the paper's evaluation artifacts — see the
experiment index in DESIGN.md Section 3 and the per-artifact benchmark
modules under ``benchmarks/``.
"""

from repro.eval.categories import (
    CategorizedResult,
    CategoryRow,
    aggregate_ratio,
    categorize,
)
from repro.eval.dse import DSE_KERNELS, DseResult, run_dse
from repro.eval.harness import (
    SPMV_FORMATS,
    SweepRecord,
    geomean,
    sweep_spma,
    sweep_spmm,
    sweep_spmv,
)
from repro.eval.runner import (
    ResultCache,
    RunnerConfig,
    SweepResult,
    UnitFailure,
    code_version,
    run_units,
)
from repro.eval.supervisor import UnitOutcome, run_supervised
from repro.eval.recordings import RecordingStore, recording_key
from repro.eval.units import (
    UNIT_KINDS,
    WorkUnit,
    compute_unit,
    record_units,
    replay_units,
    spma_units,
    spmm_units,
    spmv_units,
    unit_cache_key,
)
from repro.eval.reporting import (
    render_categories,
    render_dict,
    render_dse,
    render_ratio_line,
    render_table,
)

__all__ = [
    "CategorizedResult",
    "CategoryRow",
    "aggregate_ratio",
    "categorize",
    "DSE_KERNELS",
    "DseResult",
    "run_dse",
    "SPMV_FORMATS",
    "SweepRecord",
    "geomean",
    "sweep_spma",
    "sweep_spmm",
    "sweep_spmv",
    "render_categories",
    "render_dict",
    "render_dse",
    "render_ratio_line",
    "render_table",
    "ResultCache",
    "RunnerConfig",
    "SweepResult",
    "UnitFailure",
    "UnitOutcome",
    "code_version",
    "run_units",
    "run_supervised",
    "RecordingStore",
    "recording_key",
    "UNIT_KINDS",
    "WorkUnit",
    "compute_unit",
    "record_units",
    "replay_units",
    "spma_units",
    "spmm_units",
    "spmv_units",
    "unit_cache_key",
]
