"""Parallel, cached sweep-execution engine with structured run telemetry.

The paper's evaluation (Section VII) sweeps 1,024 matrices across kernels
and formats; replaying that loop sequentially repays the full simulation
cost on every figure regeneration.  This module turns a list of
:class:`~repro.eval.units.WorkUnit` into :class:`SweepRecord` results three
ways faster:

* **parallelism** — units fan out over a ``multiprocessing`` pool with a
  configurable worker count and ``chunksize``; results keep unit order, so
  a parallel sweep is bit-identical to a sequential one;
* **caching** — a content-addressed on-disk cache keyed by
  :func:`repro.eval.units.unit_cache_key` (matrix spec, kernel, formats,
  :class:`MachineConfig`, :class:`ViaConfig`, and a code fingerprint) makes
  re-runs and partial sweeps near-free; entries carry checksums so a
  corrupted or truncated file is recomputed, never served;
* **telemetry** — a JSONL run journal records per-unit wall time, cycles,
  cache status and worker id, and aggregate
  :class:`repro.sim.stats.SweepCounters` summarize the run; a unit that
  raises becomes a recorded :class:`UnitFailure` instead of killing the
  sweep (when ``capture_errors`` is on).

Environment knobs (read by :meth:`RunnerConfig.from_env`):

* ``REPRO_SWEEP_WORKERS`` — pool size (default 1 = inline execution);
* ``REPRO_SWEEP_CACHE`` — cache directory (unset = caching off);
* ``REPRO_SWEEP_NO_CACHE=1`` — escape hatch: ignore any cache directory;
* ``REPRO_SWEEP_JOURNAL`` — JSONL journal path (unset = no journal).

A CLI is included for demo sweeps::

    python -m repro.eval --kernel spmv --count 8 --workers 2 \
        --cache-dir /tmp/via-cache --journal /tmp/via-run.jsonl
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

import repro
from repro.eval.harness import SweepRecord, geomean
from repro.eval.units import WorkUnit, compute_unit, unit_cache_key
from repro.sim.stats import SweepCounters

#: bump when the cache entry layout (not the results) changes
CACHE_FORMAT = 1

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Fingerprint of every source file that can influence sweep results.

    Hashing the package sources (rather than trusting a version string)
    means any edit to kernels, formats, the machine model, or the unit
    computation invalidates stale cache entries automatically.
    """
    global _code_version_cache
    if _code_version_cache is None:
        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(path.read_bytes())
        _code_version_cache = digest.hexdigest()
    return _code_version_cache


@dataclass(frozen=True)
class RunnerConfig:
    """Execution policy for one sweep run."""

    workers: int = 1
    chunksize: Optional[int] = None
    cache_dir: Optional[str] = None
    use_cache: bool = True
    journal_path: Optional[str] = None
    capture_errors: bool = True

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.chunksize is not None and self.chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {self.chunksize}")

    @property
    def caching(self) -> bool:
        return self.use_cache and self.cache_dir is not None

    @classmethod
    def from_env(cls, **overrides) -> "RunnerConfig":
        """Build a config from the ``REPRO_SWEEP_*`` environment knobs."""
        values = {
            "workers": int(os.environ.get("REPRO_SWEEP_WORKERS", "1")),
            "cache_dir": os.environ.get("REPRO_SWEEP_CACHE") or None,
            "use_cache": os.environ.get("REPRO_SWEEP_NO_CACHE") != "1",
            "journal_path": os.environ.get("REPRO_SWEEP_JOURNAL") or None,
        }
        values.update(overrides)
        return cls(**values)


@dataclass
class UnitFailure:
    """A work unit that raised; the sweep records it and moves on."""

    index: int
    kind: str
    name: str
    error: str
    traceback: str = ""


@dataclass
class SweepResult:
    """Everything one runner invocation produced."""

    records: List[SweepRecord] = field(default_factory=list)
    failures: List[UnitFailure] = field(default_factory=list)
    counters: SweepCounters = field(default_factory=SweepCounters)
    journal_path: Optional[str] = None


class ResultCache:
    """Content-addressed on-disk store of serialized :class:`SweepRecord`.

    Layout: ``<root>/<key[:2]>/<key>.json``.  Each entry embeds its own key
    and a checksum of the payload; :meth:`get` treats a missing key, a
    parse failure, a key mismatch, or a checksum mismatch as a miss (the
    latter three flagged *corrupt* and the entry deleted) so a truncated
    or tampered file is recomputed, never served.
    """

    def __init__(self, root: str):
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @staticmethod
    def _checksum(payload) -> str:
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def get(self, key: str) -> Tuple[Optional[dict], str]:
        """Return ``(entry_payload, status)``; status in hit/miss/corrupt."""
        path = self._path(key)
        if not path.exists():
            return None, "miss"
        try:
            entry = json.loads(path.read_text())
            if (
                entry.get("format") != CACHE_FORMAT
                or entry.get("key") != key
                or entry.get("checksum") != self._checksum(entry["payload"])
            ):
                raise ValueError("cache entry failed integrity check")
            return entry["payload"], "hit"
        except (ValueError, KeyError, TypeError, json.JSONDecodeError):
            path.unlink(missing_ok=True)
            return None, "corrupt"

    def put(self, key: str, payload: Optional[dict]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT,
            "key": key,
            "payload": payload,
            "checksum": self._checksum(payload),
        }
        tmp = path.with_suffix(".tmp")
        # no sort_keys: the payload's dict order must survive the round
        # trip so cached records stay bit-identical to computed ones
        tmp.write_text(json.dumps(entry))
        os.replace(tmp, path)  # atomic: readers never see a partial entry

    def invalidate(self, key: Optional[str] = None) -> int:
        """Drop one entry (or, with no key, every entry); returns count."""
        if key is not None:
            path = self._path(key)
            existed = path.exists()
            path.unlink(missing_ok=True)
            return int(existed)
        dropped = 0
        if self.root.exists():
            for path in self.root.rglob("*.json"):
                path.unlink()
                dropped += 1
        return dropped

    def __len__(self) -> int:
        return sum(1 for _ in self.root.rglob("*.json")) if self.root.exists() else 0


# ----------------------------------------------------------------------
# worker-side execution


def _execute(task: Tuple[int, WorkUnit]):
    """Run one unit in the current process; never raises.

    Returns ``(index, status, payload, wall_s, worker_pid)`` where status
    is ``ok`` (payload = SweepRecord or None for self-filtered units) or
    ``failed`` (payload = (error, traceback) strings).
    """
    index, unit = task
    start = time.perf_counter()
    try:
        record = compute_unit(unit)
        return index, "ok", record, time.perf_counter() - start, os.getpid()
    except Exception as exc:  # per-unit fault isolation
        tb = traceback.format_exc()
        return index, "failed", (repr(exc), tb), time.perf_counter() - start, os.getpid()


def _pool_context():
    """Fork keeps registered UNIT_KINDS visible to workers; fall back
    to the platform default elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class _Journal:
    """Append-only JSONL writer; one line per work unit."""

    def __init__(self, path: Optional[str]):
        self.path = path
        self._fh = None
        if path is not None:
            Path(path).parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(path, "a", encoding="utf-8")

    def write(self, **fields) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(fields, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _journal_cycles(record: Optional[SweepRecord]) -> dict:
    if record is None:
        return {}
    return {
        "baseline_cycles": dict(record.baseline_cycles),
        "via_cycles": dict(record.via_cycles),
    }


def run_units(
    units: Sequence[WorkUnit],
    config: Optional[RunnerConfig] = None,
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Execute ``units`` under ``config`` and return ordered results.

    Records come back in unit order no matter how many workers computed
    them, so ``workers=N`` is bit-identical to ``workers=1``.  With a cache
    configured, known-good entries are served without recomputation; with
    ``capture_errors`` on, a raising unit becomes a :class:`UnitFailure`
    and the sweep completes.
    """
    config = config or RunnerConfig()
    units = list(units)
    counters = SweepCounters(units_total=len(units), workers=config.workers)
    result = SweepResult(counters=counters, journal_path=config.journal_path)
    journal = _Journal(config.journal_path)
    cache = ResultCache(config.cache_dir) if config.caching else None
    version = code_version() if cache is not None else ""
    run_start = time.perf_counter()
    my_pid = os.getpid()

    # per-index outcome slots keep deterministic ordering
    slots: List[Optional[Tuple[str, object, float, int]]] = [None] * len(units)
    keys: List[Optional[str]] = [None] * len(units)
    pending: List[Tuple[int, WorkUnit]] = []

    try:
        for i, unit in enumerate(units):
            if cache is None:
                pending.append((i, unit))
                continue
            lookup_start = time.perf_counter()
            keys[i] = unit_cache_key(unit, version)
            payload, status = cache.get(keys[i])
            if status == "hit":
                counters.cache_hits += 1
                record = SweepRecord.from_dict(payload) if payload is not None else None
                slots[i] = ("hit", record, time.perf_counter() - lookup_start, my_pid)
            else:
                counters.cache_misses += 1
                if status == "corrupt":
                    counters.cache_corrupt += 1
                pending.append((i, unit))

        if config.workers > 1 and len(pending) > 1:
            chunksize = config.chunksize or max(
                1, len(pending) // (config.workers * 4)
            )
            ctx = _pool_context()
            with ctx.Pool(processes=config.workers) as pool:
                outcomes = pool.imap(_execute, pending, chunksize=chunksize)
                for index, status, payload, wall_s, pid in outcomes:
                    slots[index] = (status, payload, wall_s, pid)
        else:
            for task in pending:
                index, status, payload, wall_s, pid = _execute(task)
                slots[index] = (status, payload, wall_s, pid)

        for i, unit in enumerate(units):
            status, payload, wall_s, pid = slots[i]
            entry = {
                "unit": i,
                "kind": unit.kind,
                "name": unit.spec.name,
                "wall_s": round(wall_s, 6),
                "worker": pid,
                "cache": "hit" if status == "hit" else
                         ("off" if cache is None else "miss"),
            }
            if status == "failed":
                error, tb = payload
                if not config.capture_errors:
                    journal.write(status="failed", error=error, **entry)
                    raise RuntimeError(
                        f"work unit {i} ({unit.kind}/{unit.spec.name}) "
                        f"failed: {error}\n{tb}"
                    )
                counters.units_failed += 1
                result.failures.append(
                    UnitFailure(i, unit.kind, unit.spec.name, error, tb)
                )
                journal.write(status="failed", error=error, **entry)
            elif status == "hit":
                counters.units_cached += 1
                record = payload
                if record is None:
                    counters.units_skipped += 1
                else:
                    result.records.append(record)
                journal.write(status="cached", **_journal_cycles(record), **entry)
            else:  # computed
                record = payload
                if cache is not None:
                    cache.put(
                        keys[i], record.to_dict() if record is not None else None
                    )
                if record is None:
                    counters.units_skipped += 1
                    journal.write(status="skipped", **entry)
                else:
                    counters.units_ok += 1
                    result.records.append(record)
                    journal.write(status="ok", **_journal_cycles(record), **entry)
            if progress is not None:
                progress(unit.spec.name)
    finally:
        counters.wall_seconds = time.perf_counter() - run_start
        journal.close()
    return result


# ----------------------------------------------------------------------
# CLI — demo sweeps and cache management


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    from repro.eval.units import spma_units, spmm_units, spmv_units
    from repro.matrices.collection import MatrixCollection

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return value

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Run a demo evaluation sweep through the parallel "
        "cached runner.",
    )
    parser.add_argument("--kernel", choices=("spmv", "spma", "spmm"),
                        default="spmv")
    parser.add_argument("--count", type=positive_int, default=8,
                        help="matrices in the seeded demo collection")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--max-n", type=int, default=512,
                        help="largest matrix dimension")
    parser.add_argument("--workers", type=positive_int, default=1)
    parser.add_argument("--chunksize", type=positive_int, default=None)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--no-cache", action="store_true",
                        help="escape hatch: ignore --cache-dir")
    parser.add_argument("--invalidate-cache", action="store_true",
                        help="wipe the cache directory before running")
    parser.add_argument("--journal", default=None,
                        help="JSONL run-journal path")
    args = parser.parse_args(argv)

    config = RunnerConfig(
        workers=args.workers,
        chunksize=args.chunksize,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        journal_path=args.journal,
    )
    if args.invalidate_cache and args.cache_dir:
        dropped = ResultCache(args.cache_dir).invalidate()
        print(f"invalidated {dropped} cache entr{'y' if dropped == 1 else 'ies'}")

    collection = MatrixCollection(
        args.count, seed=args.seed, min_n=64, max_n=args.max_n
    )
    builders = {
        "spmv": lambda: spmv_units(collection, formats=("csr", "csb")),
        "spma": lambda: spma_units(collection),
        "spmm": lambda: spmm_units(collection, max_n=args.max_n),
    }
    result = run_units(builders[args.kernel](), config)

    print(result.counters.summary())
    for failure in result.failures:
        print(f"  FAILED {failure.kind}/{failure.name}: {failure.error}")
    if result.records:
        fmts = sorted(result.records[0].speedup)
        for fmt in fmts:
            mean = geomean(
                r.speedup[fmt] for r in result.records if fmt in r.speedup
            )
            print(f"  {args.kernel}/{fmt}: geomean speedup {mean:.2f}x "
                  f"over {len(result.records)} matrices")
    if config.journal_path:
        print(f"  journal: {config.journal_path}")
    return 1 if result.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
