"""Parallel, cached, supervised sweep-execution engine with run telemetry.

The paper's evaluation (Section VII) sweeps 1,024 matrices across kernels
and formats; replaying that loop sequentially repays the full simulation
cost on every figure regeneration — and at that scale a single hung
kernel, OOM-killed worker, or Ctrl-C must not lose the run.  This module
turns a list of :class:`~repro.eval.units.WorkUnit` into
:class:`SweepRecord` results with four defenses:

* **parallelism** — units fan out over a watchdog-supervised worker pool
  (:mod:`repro.eval.supervisor`); results keep unit order, so a parallel
  sweep is bit-identical to a sequential one;
* **supervision** — a per-unit wall-clock ``timeout_s`` kills hung
  kernels, dead workers (crash, OOM kill) are detected and replenished,
  and transient failures retry with bounded exponential backoff
  (``retries`` / ``backoff_s``); SIGINT/SIGTERM flush every completed
  unit to the journal before raising
  :class:`~repro.errors.SweepInterrupted`;
* **caching + resume** — a content-addressed on-disk cache keyed by
  :func:`repro.eval.units.unit_cache_key` makes re-runs near-free, and
  ``resume=`` replays a prior run's JSONL journal so only units that
  failed (or never ran) are recomputed — bit-identically, because the
  journal stores each completed unit's full record;
* **telemetry** — the journal records per-unit wall time, cycles, cache
  status (including ``corrupt``), worker id and retry history, and
  aggregate :class:`repro.sim.stats.SweepCounters` summarize the run; a
  unit that raises becomes a recorded :class:`UnitFailure` instead of
  killing the sweep (when ``capture_errors`` is on).

Environment knobs (read by :meth:`RunnerConfig.from_env`):

* ``REPRO_SWEEP_WORKERS`` — pool size (default 1 = inline execution);
* ``REPRO_SWEEP_CACHE`` — cache directory (unset = caching off);
* ``REPRO_SWEEP_NO_CACHE=1`` — escape hatch: ignore any cache directory;
* ``REPRO_SWEEP_JOURNAL`` — JSONL journal path (unset = no journal);
* ``REPRO_SWEEP_TIMEOUT`` — per-unit wall-clock timeout in seconds;
* ``REPRO_SWEEP_RETRIES`` — extra attempts for transient failures.

A CLI is included for demo sweeps::

    python -m repro.eval --kernel spmv --count 8 --workers 2 \
        --cache-dir /tmp/via-cache --journal /tmp/via-run.jsonl \
        --timeout 60 --retries 2
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import signal as signal_mod
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro
from repro.errors import SweepError, SweepInterrupted
from repro.eval.harness import SweepRecord, geomean
from repro.eval.supervisor import UnitOutcome, execute_unit, run_supervised
from repro.eval.units import WorkUnit, unit_cache_key
from repro.sim.stats import SweepCounters

#: bump when the cache entry layout (not the results) changes
CACHE_FORMAT = 1

#: journal statuses a resumed run may serve without recomputation
_RESUMABLE_STATUSES = ("ok", "cached", "resumed", "skipped")

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Fingerprint of every source file that can influence sweep results.

    Hashing the package sources (rather than trusting a version string)
    means any edit to kernels, formats, the machine model, or the unit
    computation invalidates stale cache entries automatically.
    """
    global _code_version_cache
    if _code_version_cache is None:
        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(path.read_bytes())
        _code_version_cache = digest.hexdigest()
    return _code_version_cache


@dataclass(frozen=True)
class RunnerConfig:
    """Execution policy for one sweep run.

    ``timeout_s`` / ``retries`` / ``backoff_s`` drive the supervised
    dispatch loop; setting either of the first two (or ``workers > 1``)
    routes execution through :mod:`repro.eval.supervisor`.  ``resume``
    names a prior run's journal: units whose completed records it holds
    are served from it bit-identically instead of recomputed.
    ``chunksize`` is retained for backward compatibility but ignored —
    supervised dispatch hands out one unit at a time so every timeout or
    worker death is attributable to a single unit.
    """

    workers: int = 1
    chunksize: Optional[int] = None
    cache_dir: Optional[str] = None
    use_cache: bool = True
    journal_path: Optional[str] = None
    capture_errors: bool = True
    timeout_s: Optional[float] = None
    retries: int = 0
    backoff_s: float = 0.1
    resume: Optional[str] = None

    def __post_init__(self):
        if self.workers < 1:
            raise SweepError(f"workers must be >= 1, got {self.workers}")
        if self.chunksize is not None and self.chunksize < 1:
            raise SweepError(f"chunksize must be >= 1, got {self.chunksize}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise SweepError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.retries < 0:
            raise SweepError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise SweepError(f"backoff_s must be >= 0, got {self.backoff_s}")

    @property
    def caching(self) -> bool:
        return self.use_cache and self.cache_dir is not None

    @property
    def supervised(self) -> bool:
        """Whether execution needs the watchdog-supervised worker pool."""
        return (
            self.workers > 1
            or self.timeout_s is not None
            or self.retries > 0
        )

    @classmethod
    def from_env(cls, **overrides) -> "RunnerConfig":
        """Build a config from the ``REPRO_SWEEP_*`` environment knobs."""
        timeout = os.environ.get("REPRO_SWEEP_TIMEOUT")
        values = {
            "workers": int(os.environ.get("REPRO_SWEEP_WORKERS", "1")),
            "cache_dir": os.environ.get("REPRO_SWEEP_CACHE") or None,
            "use_cache": os.environ.get("REPRO_SWEEP_NO_CACHE") != "1",
            "journal_path": os.environ.get("REPRO_SWEEP_JOURNAL") or None,
            "timeout_s": float(timeout) if timeout else None,
            "retries": int(os.environ.get("REPRO_SWEEP_RETRIES", "0")),
        }
        values.update(overrides)
        return cls(**values)


@dataclass
class UnitFailure:
    """A work unit that failed for good; the sweep records it and moves on.

    ``transient`` marks failures that *might* succeed on retry (worker
    death, timeout) as opposed to deterministic kernel exceptions;
    ``attempts`` counts how many times the unit ran and ``history`` holds
    one line per failed attempt (the retry history).
    """

    index: int
    kind: str
    name: str
    error: str
    traceback: str = ""
    transient: bool = False
    attempts: int = 1
    history: List[str] = field(default_factory=list)


@dataclass
class SweepResult:
    """Everything one runner invocation produced."""

    records: List[SweepRecord] = field(default_factory=list)
    failures: List[UnitFailure] = field(default_factory=list)
    counters: SweepCounters = field(default_factory=SweepCounters)
    journal_path: Optional[str] = None


class ResultCache:
    """Content-addressed on-disk store of serialized :class:`SweepRecord`.

    Layout: ``<root>/<key[:2]>/<key>.json``.  Each entry embeds its own key
    and a checksum of the payload; :meth:`get` treats a missing key, a
    parse failure, a key mismatch, or a checksum mismatch as a miss (the
    latter three flagged *corrupt* and the entry deleted) so a truncated
    or tampered file is recomputed, never served.
    """

    def __init__(self, root: str):
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @staticmethod
    def _checksum(payload) -> str:
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def get(self, key: str) -> Tuple[Optional[dict], str]:
        """Return ``(entry_payload, status)``; status in hit/miss/corrupt."""
        path = self._path(key)
        if not path.exists():
            return None, "miss"
        try:
            entry = json.loads(path.read_text())
            if (
                entry.get("format") != CACHE_FORMAT
                or entry.get("key") != key
                or entry.get("checksum") != self._checksum(entry["payload"])
            ):
                raise ValueError("cache entry failed integrity check")
            return entry["payload"], "hit"
        except (ValueError, KeyError, TypeError, json.JSONDecodeError):
            path.unlink(missing_ok=True)
            return None, "corrupt"

    def put(
        self,
        key: str,
        payload: Optional[dict],
        *,
        context: Optional[dict] = None,
    ) -> None:
        """Write one entry; ``context`` is optional sidecar metadata.

        The checksum covers the payload alone, so context (the unit's
        kernel/machine/VIA configuration, mined by the cost-model
        dataset) can be added or dropped without invalidating entries,
        and :meth:`get` serves old and new entries alike.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT,
            "key": key,
            "payload": payload,
            "checksum": self._checksum(payload),
        }
        if context is not None:
            entry["context"] = context
        tmp = path.with_suffix(".tmp")
        # no sort_keys: the payload's dict order must survive the round
        # trip so cached records stay bit-identical to computed ones
        tmp.write_text(json.dumps(entry))
        os.replace(tmp, path)  # atomic: readers never see a partial entry

    def invalidate(self, key: Optional[str] = None) -> int:
        """Drop one entry (or, with no key, every entry); returns count."""
        if key is not None:
            path = self._path(key)
            existed = path.exists()
            path.unlink(missing_ok=True)
            return int(existed)
        dropped = 0
        if self.root.exists():
            for path in self.root.rglob("*.json"):
                path.unlink()
                dropped += 1
        return dropped

    def __len__(self) -> int:
        return sum(1 for _ in self.root.rglob("*.json")) if self.root.exists() else 0


def _pool_context():
    """Fork keeps registered UNIT_KINDS visible to workers; fall back
    to the platform default elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class _Journal:
    """Append-only JSONL writer; one line per work-unit outcome.

    Opened in append mode so resumed runs may keep extending one journal
    file.  Every line is flushed as soon as it is written — the journal is
    the crash-recovery record, so a line must hit the OS before the unit
    is considered durable.  An unwritable path (missing permissions, a
    parent that is a file, a directory target) raises
    :class:`~repro.errors.SweepError` immediately rather than losing
    telemetry silently.
    """

    def __init__(self, path: Optional[str]):
        self.path = path
        self._fh = None
        if path is not None:
            try:
                Path(path).parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(path, "a", encoding="utf-8")
            except OSError as exc:
                raise SweepError(
                    f"run journal {path!r} is not writable: {exc}"
                ) from exc

    def write(self, **fields) -> None:
        if self._fh is None:
            return
        try:
            self._fh.write(json.dumps(fields, sort_keys=True) + "\n")
            self._fh.flush()
        except (OSError, ValueError) as exc:
            raise SweepError(
                f"run journal {self.path!r} failed mid-run: {exc}"
            ) from exc

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None


def unit_context(unit: WorkUnit) -> dict:
    """The hardware/kernel context of one unit, JSON-shaped.

    Written into journal lines and cache entries so the cost-model
    dataset (:mod:`repro.model.dataset`) can mine (features, config) →
    cycles rows from a journal alone, without reconstructing units.
    """
    return {
        "kernel": unit.kernel or unit.kind,
        "via": dataclasses.asdict(unit.via_config),
        "machine": dataclasses.asdict(unit.machine),
    }


def _journal_cycles(record: Optional[SweepRecord]) -> dict:
    if record is None:
        return {}
    return {
        "baseline_cycles": dict(record.baseline_cycles),
        "via_cycles": dict(record.via_cycles),
    }


def _load_resume_map(path: str) -> Dict[str, dict]:
    """Completed-unit journal lines from a prior run, keyed by unit key.

    Only lines that carry a unit ``key`` and a completed status are
    usable; failures are deliberately excluded (they must recompute) and
    torn lines — the expected tail of a crashed run's journal — are
    skipped.  A later line for the same key wins, so a journal extended
    across several resumed runs serves its freshest outcome.
    """
    journal = Path(path)
    if not journal.exists():
        raise SweepError(f"resume journal {path!r} does not exist")
    entries: Dict[str, dict] = {}
    try:
        text = journal.read_text(encoding="utf-8")
    except OSError as exc:
        raise SweepError(f"resume journal {path!r} is unreadable: {exc}") from exc
    for raw_line in text.splitlines():
        stripped = raw_line.strip()
        if not stripped:
            continue
        try:
            entry = json.loads(stripped)
        except json.JSONDecodeError:
            continue  # torn tail of a crashed run
        if not isinstance(entry, dict):
            continue
        key = entry.get("key")
        if key and entry.get("status") in _RESUMABLE_STATUSES:
            entries[key] = entry
    return entries


class _SweepState:
    """Mutable bookkeeping for one :func:`run_units` invocation.

    Outcomes arrive in completion order (cache scan, inline loop, or
    supervised pool); :meth:`finish` journals and counts each one the
    moment it lands, so an interrupt can flush a faithful partial state.
    Deterministic ordering is restored at the end: records are assembled
    from ``slots`` in unit order, bit-identical no matter who computed
    what when.
    """

    def __init__(self, units, config: RunnerConfig, journal, cache, progress):
        self.units = units
        self.config = config
        self.journal = journal
        self.cache = cache
        self.progress = progress
        self.counters = SweepCounters(
            units_total=len(units), workers=config.workers
        )
        self.result = SweepResult(
            counters=self.counters, journal_path=config.journal_path
        )
        self.slots: List[Optional[Tuple[str, object]]] = [None] * len(units)
        self.keys: List[Optional[str]] = [None] * len(units)
        self.cache_status: List[str] = ["off"] * len(units)

    def finish(self, outcome: UnitOutcome) -> None:
        """Score one unit's final outcome: counters, cache, journal."""
        i = outcome.index
        unit = self.units[i]
        status = outcome.status
        entry = {
            "unit": i,
            "kind": unit.kind,
            "name": unit.spec.name,
            "wall_s": round(outcome.wall_s, 6),
            "worker": outcome.worker,
            "cache": self.cache_status[i],
            **unit_context(unit),
        }
        if self.keys[i] is not None:
            entry["key"] = self.keys[i]
        if outcome.attempts > 1 or outcome.history:
            entry["attempts"] = outcome.attempts
            entry["retry_history"] = list(outcome.history)
        if outcome.attempts > 1:
            self.counters.units_retried += 1
        if status == "failed":
            error, tb = outcome.payload
            self.counters.units_failed += 1
            if outcome.timed_out:
                self.counters.units_timeout += 1
            self.slots[i] = ("failed", None)
            self.result.failures.append(
                UnitFailure(
                    i,
                    unit.kind,
                    unit.spec.name,
                    error,
                    tb,
                    transient=outcome.transient,
                    attempts=outcome.attempts,
                    history=list(outcome.history),
                )
            )
            self.journal.write(status="failed", error=error, **entry)
            if not self.config.capture_errors:
                raise SweepError(
                    f"work unit {i} ({unit.kind}/{unit.spec.name}) "
                    f"failed: {error}\n{tb}"
                )
        elif status in ("hit", "resumed"):
            record = outcome.payload
            if status == "hit":
                self.counters.units_cached += 1
            else:
                self.counters.units_resumed += 1
            if record is None:
                self.counters.units_skipped += 1
            self.slots[i] = ("done", record)
            self.journal.write(
                status="cached" if status == "hit" else "resumed",
                record=record.to_dict() if record is not None else None,
                **_journal_cycles(record),
                **entry,
            )
        else:  # computed
            record = outcome.payload
            if self.cache is not None:
                self.cache.put(
                    self.keys[i],
                    record.to_dict() if record is not None else None,
                    context=unit_context(unit),
                )
            self.slots[i] = ("done", record)
            if record is None:
                self.counters.units_skipped += 1
                self.journal.write(status="skipped", **entry)
            else:
                self.counters.units_ok += 1
                self.journal.write(
                    status="ok",
                    record=record.to_dict(),
                    **_journal_cycles(record),
                    **entry,
                )
        if self.progress is not None:
            self.progress(unit.spec.name)

    def assemble(self) -> SweepResult:
        """Collect records in unit order from whatever slots completed."""
        self.result.records = [
            slot[1]
            for slot in self.slots
            if slot is not None and slot[0] == "done" and slot[1] is not None
        ]
        return self.result


class _SignalFlag:
    """Latches the first SIGINT/SIGTERM so the dispatch loop can stop
    cleanly; restores the previous handlers on exit.  Outside the main
    thread (where handlers cannot be installed) it degrades to a no-op
    flag."""

    def __init__(self):
        self.signum: Optional[int] = None
        self._previous: Dict[int, object] = {}

    def __enter__(self) -> "_SignalFlag":
        if threading.current_thread() is threading.main_thread():
            for sig in (signal_mod.SIGINT, signal_mod.SIGTERM):
                try:
                    self._previous[sig] = signal_mod.signal(sig, self._handle)
                except (ValueError, OSError):  # pragma: no cover
                    pass
        return self

    def __exit__(self, *exc_info) -> None:
        for sig, handler in self._previous.items():
            try:
                signal_mod.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous = {}

    def _handle(self, signum, frame) -> None:
        self.signum = signum

    @property
    def set(self) -> bool:
        return self.signum is not None


def run_units(
    units: Sequence[WorkUnit],
    config: Optional[RunnerConfig] = None,
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Execute ``units`` under ``config`` and return ordered results.

    Records come back in unit order no matter how many workers computed
    them, so ``workers=N`` is bit-identical to ``workers=1``.  With a cache
    configured, known-good entries are served without recomputation; with
    ``resume=`` set, units already completed in the named journal are
    served from it; with ``capture_errors`` on, a failing unit becomes a
    :class:`UnitFailure` and the sweep completes.  A unit that exceeds
    ``timeout_s`` or loses its worker is retried up to ``retries`` times
    with exponential backoff before being scored a *transient* failure.

    SIGINT/SIGTERM do not lose the run: every completed unit is already
    flushed to the journal, and :class:`~repro.errors.SweepInterrupted`
    carries the partial :class:`SweepResult`.
    """
    config = config or RunnerConfig()
    units = list(units)
    if any(u.validate for u in units):
        # validated runs dogfood the VIA101 cache-key hygiene rule against
        # the *live* dataclasses: an editable install whose config classes
        # drifted from their key builders fails here, at sweep startup,
        # instead of silently serving poisoned cache entries
        from repro.analysis.keys import assert_key_hygiene

        assert_key_hygiene()
    journal = _Journal(config.journal_path)
    cache = ResultCache(config.cache_dir) if config.caching else None
    need_keys = (
        cache is not None
        or config.journal_path is not None
        or config.resume is not None
    )
    version = code_version() if need_keys else ""
    resume_map = (
        _load_resume_map(config.resume) if config.resume is not None else {}
    )
    state = _SweepState(units, config, journal, cache, progress)
    counters = state.counters
    run_start = time.perf_counter()
    # engine observability: attribute in-process engine fallbacks and
    # builder flushes to this sweep (deltas of process-wide counters;
    # parallel workers narrate in their own processes and under-count)
    from repro.sim.columnar import engine_fallback_count
    from repro.sim.core import narration_flush_count

    fallback_start = engine_fallback_count()
    flush_start = narration_flush_count()
    my_pid = os.getpid()
    pending: List[Tuple[int, WorkUnit]] = []

    def _local(index: int, status: str, payload, wall_s: float) -> None:
        state.finish(
            UnitOutcome(
                index=index,
                status=status,
                payload=payload,
                wall_s=wall_s,
                worker=my_pid,
            )
        )

    try:
        with _SignalFlag() as flag:
            for i, unit in enumerate(units):
                lookup_start = time.perf_counter()
                if need_keys:
                    state.keys[i] = unit_cache_key(unit, version)
                if cache is not None:
                    state.cache_status[i] = "miss"
                if state.keys[i] is not None and state.keys[i] in resume_map:
                    prior = resume_map[state.keys[i]]
                    payload = prior.get("record")
                    record = (
                        SweepRecord.from_dict(payload)
                        if payload is not None
                        else None
                    )
                    state.cache_status[i] = "resume"
                    _local(i, "resumed", record,
                           time.perf_counter() - lookup_start)
                    continue
                if cache is None:
                    pending.append((i, unit))
                    continue
                payload, cache_status = cache.get(state.keys[i])
                if cache_status == "hit":
                    counters.cache_hits += 1
                    state.cache_status[i] = "hit"
                    record = (
                        SweepRecord.from_dict(payload)
                        if payload is not None
                        else None
                    )
                    _local(i, "hit", record, time.perf_counter() - lookup_start)
                else:
                    counters.cache_misses += 1
                    if cache_status == "corrupt":
                        counters.cache_corrupt += 1
                        counters.units_corrupt += 1
                        state.cache_status[i] = "corrupt"
                    pending.append((i, unit))

            if pending and config.supervised and not flag.set:
                # return value (stopped-early?) is implied by flag.set below
                run_supervised(
                    pending,
                    _pool_context(),
                    workers=config.workers,
                    timeout_s=config.timeout_s,
                    retries=config.retries,
                    backoff_s=config.backoff_s,
                    on_outcome=state.finish,
                    should_stop=lambda: flag.set,
                    counters=counters,
                )
            else:
                for index, unit in pending:
                    if flag.set:
                        break
                    outcome = execute_unit((index, unit))
                    state.finish(
                        UnitOutcome(
                            index=outcome[0],
                            status=outcome[1],
                            payload=outcome[2],
                            wall_s=outcome[3],
                            worker=outcome[4],
                        )
                    )

            if flag.set:
                counters.wall_seconds = time.perf_counter() - run_start
                journal.close()
                sig_name = {
                    signal_mod.SIGINT: "SIGINT",
                    signal_mod.SIGTERM: "SIGTERM",
                }.get(flag.signum, str(flag.signum))
                raise SweepInterrupted(
                    f"sweep interrupted by {sig_name} after "
                    f"{counters.units_ok + counters.units_cached + counters.units_resumed}"
                    f"/{counters.units_total} units; completed work is "
                    "flushed to the journal — rerun with resume= to continue",
                    result=state.assemble(),
                    signum=flag.signum,
                )
    finally:
        counters.wall_seconds = time.perf_counter() - run_start
        counters.engine_fallback = engine_fallback_count() - fallback_start
        counters.narration_flushes = narration_flush_count() - flush_start
        journal.close()
    return state.assemble()


# ----------------------------------------------------------------------
# CLI — demo sweeps and cache management


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    from repro.eval.units import spma_units, spmm_units, spmv_units
    from repro.matrices.collection import MatrixCollection

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return value

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Run a demo evaluation sweep through the supervised "
        "parallel cached runner.",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {repro.__version__}")
    parser.add_argument("--kernel", choices=("spmv", "spma", "spmm"),
                        default="spmv")
    parser.add_argument("--count", type=positive_int, default=8,
                        help="matrices in the seeded demo collection")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--max-n", type=int, default=512,
                        help="largest matrix dimension")
    parser.add_argument("--workers", type=positive_int, default=1)
    parser.add_argument("--chunksize", type=positive_int, default=None,
                        help="(legacy, ignored by supervised dispatch)")
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--no-cache", action="store_true",
                        help="escape hatch: ignore --cache-dir")
    parser.add_argument("--invalidate-cache", action="store_true",
                        help="wipe the cache directory before running")
    parser.add_argument("--journal", default=None,
                        help="JSONL run-journal path")
    parser.add_argument("--resume", default=None, metavar="JOURNAL",
                        help="serve units already completed in this prior "
                        "run journal; only the rest recompute")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-unit wall-clock timeout in seconds")
    parser.add_argument("--retries", type=int, default=0,
                        help="extra attempts for transient failures "
                        "(worker death, timeout)")
    parser.add_argument("--backoff", type=float, default=0.1,
                        help="base seconds for exponential retry backoff")
    parser.add_argument("--validate", action="store_true",
                        help="run the op-stream invariant checks "
                        "(InvariantBackend) on every unit")
    args = parser.parse_args(argv)

    journal = args.journal
    if journal is None and args.resume is not None:
        journal = args.resume  # keep extending the journal we resume from
    config = RunnerConfig(
        workers=args.workers,
        chunksize=args.chunksize,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        journal_path=journal,
        timeout_s=args.timeout,
        retries=args.retries,
        backoff_s=args.backoff,
        resume=args.resume,
    )
    if args.invalidate_cache and args.cache_dir:
        dropped = ResultCache(args.cache_dir).invalidate()
        print(f"invalidated {dropped} cache entr{'y' if dropped == 1 else 'ies'}")

    collection = MatrixCollection(
        args.count, seed=args.seed, min_n=64, max_n=args.max_n
    )
    builders = {
        "spmv": lambda: spmv_units(collection, formats=("csr", "csb"),
                                   validate=args.validate),
        "spma": lambda: spma_units(collection, validate=args.validate),
        "spmm": lambda: spmm_units(collection, max_n=args.max_n,
                                   validate=args.validate),
    }
    try:
        result = run_units(builders[args.kernel](), config)
    except SweepInterrupted as exc:
        print(exc)
        return 130

    print(result.counters.summary())
    for failure in result.failures:
        print(f"  FAILED {failure.kind}/{failure.name}: {failure.error}")
        for line in failure.history:
            print(f"    {line}")
    if result.records:
        fmts = sorted(result.records[0].speedup)
        for fmt in fmts:
            mean = geomean(
                r.speedup[fmt] for r in result.records if fmt in r.speedup
            )
            print(f"  {args.kernel}/{fmt}: geomean speedup {mean:.2f}x "
                  f"over {len(result.records)} matrices")
    if config.journal_path:
        print(f"  journal: {config.journal_path}")
    return 1 if result.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
