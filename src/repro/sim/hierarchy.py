"""Three-level inclusive memory hierarchy with write-back propagation.

Each demand access walks L1 -> L2 -> L3 -> DRAM until it hits; the line is
allocated in every level above the hit point (inclusive fill).  Dirty
victims cascade downwards and eventually become DRAM write traffic.

The hierarchy returns, per batch, the per-level hit counts and the summed
access latency — the raw material for the core's cycle model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.sim.cache import Cache, compress_lines, stream_lines
from repro.sim.config import MachineConfig
from repro.sim.dram import DRAMModel


@dataclass
class AccessResult:
    """Outcome of a batch of memory accesses."""

    raw_accesses: int = 0
    line_accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    dram_fills: int = 0
    latency_sum: float = 0.0

    def merge(self, other: "AccessResult") -> "AccessResult":
        return AccessResult(
            self.raw_accesses + other.raw_accesses,
            self.line_accesses + other.line_accesses,
            self.l1_hits + other.l1_hits,
            self.l2_hits + other.l2_hits,
            self.l3_hits + other.l3_hits,
            self.dram_fills + other.dram_fills,
            self.latency_sum + other.latency_sum,
        )

    @property
    def misses(self) -> int:
        """Line accesses that missed in the L1."""
        return self.line_accesses - self.l1_hits


class MemoryHierarchy:
    """L1/L2/L3 caches in front of a bandwidth-limited DRAM channel."""

    def __init__(self, machine: MachineConfig):
        self.machine = machine
        self.l1 = Cache(machine.l1)
        self.l2 = Cache(machine.l2)
        self.l3 = Cache(machine.l3)
        self.dram = DRAMModel(
            machine.dram_latency,
            machine.dram_bw_bytes_per_cycle,
            machine.l1.line_bytes,
        )
        self.line_bytes = machine.l1.line_bytes
        # Cumulative latency by fill level (0=L1 hit .. 3=DRAM fill),
        # left-associated exactly like the per-line sums used to be so that
        # float configs stay bit-identical.
        m = machine
        self._level_latency = (
            m.l1.latency,
            m.l1.latency + m.l2.latency,
            m.l1.latency + m.l2.latency + m.l3.latency,
            m.l1.latency + m.l2.latency + m.l3.latency + self.dram.latency,
        )

    # ------------------------------------------------------------------
    def reset(self) -> None:
        for c in (self.l1, self.l2, self.l3):
            c.reset()
        self.dram.reset()

    # ------------------------------------------------------------------
    def _walk(self, line: int, write: bool) -> int:
        """Walk one line through the hierarchy; returns the fill level.

        0 = L1 hit, 1 = L2 hit, 2 = L3 hit, 3 = DRAM fill.  Dirty victims
        cascade downwards as a side effect (inclusive write-back).
        """
        hit, victim = self.l1.access_line(line, write)
        if victim is not None:
            self._writeback_to_l2(victim)
        if hit:
            return 0

        hit, victim = self.l2.access_line(line, False)
        if victim is not None:
            self._writeback_to_l3(victim)
        if hit:
            return 1

        hit, victim = self.l3.access_line(line, False)
        if victim is not None:
            self.dram.write_line()
        if hit:
            return 2

        self.dram.read_line()
        return 3

    def access_line(self, line: int, write: bool) -> AccessResult:
        """One demand line access through the full hierarchy."""
        res = AccessResult(raw_accesses=0, line_accesses=1)
        level = self._walk(line, write)
        if level == 0:
            res.l1_hits = 1
        elif level == 1:
            res.l2_hits = 1
        elif level == 2:
            res.l3_hits = 1
        else:
            res.dram_fills = 1
        res.latency_sum = self._level_latency[level]
        return res

    def _writeback_to_l2(self, line: int) -> None:
        _hit, victim = self.l2.access_line(line, True)
        if victim is not None:
            self._writeback_to_l3(victim)

    def _writeback_to_l3(self, line: int) -> None:
        _hit, victim = self.l3.access_line(line, True)
        if victim is not None:
            self.dram.write_line()

    # ------------------------------------------------------------------
    # Batch entry points used by the core
    # ------------------------------------------------------------------
    def access_addresses(self, addresses: np.ndarray, *, write: bool = False) -> AccessResult:
        """Access a sequence of byte addresses (LSQ-coalesced per line)."""
        lines, _counts = compress_lines(addresses, self.line_bytes)
        return self._walk_batch(lines, write, int(np.asarray(addresses).size))

    def access_stream(self, base: int, nbytes: int, *, write: bool = False) -> AccessResult:
        """Access a contiguous byte range (one pass, line granularity)."""
        lines = stream_lines(base, nbytes, self.line_bytes)
        return self._walk_batch(lines, write, int(lines.size))

    def _walk_batch(self, lines: np.ndarray, write: bool, raw: int) -> AccessResult:
        """Walk a batch of line ids, accumulating counters in plain ints.

        Latency accumulates per line as ``0.0 + lat_0 + lat_1 + ...`` — the
        same left fold the old per-line ``AccessResult.merge`` chain did, so
        fractional-latency configs price bit-identically.
        """
        walk = self._walk
        lat = self._level_latency
        hits = [0, 0, 0, 0]
        latency_sum = 0.0
        for line in lines.tolist():
            level = walk(line, write)
            hits[level] += 1
            latency_sum = latency_sum + lat[level]
        return AccessResult(
            raw_accesses=raw,
            line_accesses=int(lines.size),
            l1_hits=hits[0],
            l2_hits=hits[1],
            l3_hits=hits[2],
            dram_fills=hits[3],
            latency_sum=latency_sum,
        )

    # ------------------------------------------------------------------
    def level_stats(self) -> Dict[str, dict]:
        """Per-level counter snapshot for reports."""
        out = {}
        for name, cache in (("l1", self.l1), ("l2", self.l2), ("l3", self.l3)):
            s = cache.stats
            out[name] = {
                "accesses": s.accesses,
                "hits": s.hits,
                "misses": s.misses,
                "writebacks": s.writebacks,
                "hit_rate": s.hit_rate,
            }
        out["dram"] = {
            "reads": self.dram.stats.reads,
            "writes": self.dram.stats.writes,
            "traffic_bytes": self.dram.traffic_bytes,
        }
        return out
