"""Cycle-approximate machine model — the gem5 full-system substitute.

See DESIGN.md Sections 1 and 5: a single-core out-of-order model whose
timing is driven by the mechanisms the paper's evaluation depends on —
gather/scatter serialization, cache/DRAM traffic, MSHR-limited memory-level
parallelism, and VIA commit-time execution.
"""

from repro.sim.backends import (
    DEFAULT_REPLAY_ENGINE,
    REPLAY_ENGINES,
    Backend,
    DirectBackend,
    RecorderBackend,
    TraceBackend,
    replay_recording,
)
from repro.sim.cache import Cache, CacheStats, compress_lines, stream_lines
from repro.sim.columnar import (
    ColumnarBuilder,
    ColumnarOps,
    EngineFallbackWarning,
    FlushBatch,
    check_columnar_invariants,
    columnar_via_totals,
    concat_columnar,
    engine_fallback_count,
    note_engine_fallback,
    price_columnar,
    price_flush,
)
from repro.sim.config import (
    DEFAULT_MACHINE,
    CacheConfig,
    MachineConfig,
    table1,
)
from repro.sim.core import (
    DEFAULT_FLUSH_OPS,
    AddressSpace,
    Array,
    Core,
    narration_flush_count,
    narration_mode,
    set_narration_mode,
)
from repro.sim.dram import DRAMModel, DRAMStats
from repro.sim.hierarchy import AccessResult, MemoryHierarchy
from repro.sim.ops import (
    OPS_SCHEMA_VERSION,
    Op,
    Recording,
    load_recordings,
    save_recordings,
    stream_shape_key,
)
from repro.sim.stats import (
    CycleBreakdown,
    KernelResult,
    OpCounters,
    SweepCounters,
)

__all__ = [
    "Backend",
    "DirectBackend",
    "RecorderBackend",
    "TraceBackend",
    "replay_recording",
    "DEFAULT_REPLAY_ENGINE",
    "REPLAY_ENGINES",
    "ColumnarBuilder",
    "ColumnarOps",
    "EngineFallbackWarning",
    "FlushBatch",
    "check_columnar_invariants",
    "columnar_via_totals",
    "concat_columnar",
    "engine_fallback_count",
    "note_engine_fallback",
    "price_columnar",
    "price_flush",
    "OPS_SCHEMA_VERSION",
    "Op",
    "Recording",
    "load_recordings",
    "save_recordings",
    "stream_shape_key",
    "Cache",
    "CacheStats",
    "compress_lines",
    "stream_lines",
    "DEFAULT_MACHINE",
    "CacheConfig",
    "MachineConfig",
    "table1",
    "AddressSpace",
    "Array",
    "Core",
    "DEFAULT_FLUSH_OPS",
    "narration_flush_count",
    "narration_mode",
    "set_narration_mode",
    "DRAMModel",
    "DRAMStats",
    "AccessResult",
    "MemoryHierarchy",
    "CycleBreakdown",
    "KernelResult",
    "OpCounters",
    "SweepCounters",
]
