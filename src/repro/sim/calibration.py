"""Every free constant of the machine model, with its provenance.

The reproduction deliberately avoids per-kernel tuning: all timing constants
are set once, here, from the paper itself or from public microarchitecture
references, and every kernel (baseline and VIA alike) is priced on the same
numbers.  Changing a constant changes both sides of each comparison.

Provenance legend
-----------------
[P]   stated in the VIA paper
[I]   public Intel out-of-order core documentation (Haswell-class, the core
      the paper compares areas against)
[G]   common gem5 ``O3CPU`` defaults, the simulator the paper extends
[M]   modeling choice of this reproduction, documented inline
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Core pipeline
# ---------------------------------------------------------------------------
CLOCK_GHZ = 2.0  # [P] synthesis target frequency, Section VI-B
ISSUE_WIDTH = 8  # [G] O3CPU default issue width
ROB_ENTRIES = 192  # [I] Haswell-class reorder buffer
MSHRS = 16  # [G] per-cache outstanding-miss registers

# ---------------------------------------------------------------------------
# Vector unit (AVX2-class, the ISA the paper extends — Section IV-C)
# ---------------------------------------------------------------------------
VECTOR_LANES_F64 = 4  # [I] 256-bit AVX2 = 4 double lanes
VFU_THROUGHPUT_PER_CYCLE = 1.0  # [I] one vector FMA issued per cycle
VFU_FMA_LATENCY = 5  # [I] AVX2 FMA latency
VREDUCE_LATENCY = 6  # [M] log2(VL) shuffle+add stages, ~3 cycles each
VPERMUTE_LATENCY = 3  # [I] cross-lane permute
VCONFLICT_LATENCY = 3  # [I] AVX-512CD vpconflictd class latency

# A gather on a modern Intel out-of-order core takes 22 cycles in the BEST
# case, with every element already in the L1 — stated explicitly in the
# paper, Section III-A (Challenge 1).  Element misses add on top.
GATHER_BASE_LATENCY = 22  # [P]
SCATTER_BASE_LATENCY = 25  # [M] scatters are slightly worse than gathers

# ---------------------------------------------------------------------------
# Memory hierarchy (Table I-class single-core configuration)
# ---------------------------------------------------------------------------
CACHE_LINE_BYTES = 64  # [I]
L1_KB, L1_WAYS, L1_LATENCY = 32, 8, 4  # [I]
L2_KB, L2_WAYS, L2_LATENCY = 256, 8, 12  # [I]
L3_KB, L3_WAYS, L3_LATENCY = 8192, 16, 36  # [I]
DRAM_LATENCY = 200  # [G] ~100 ns at 2 GHz
DRAM_BW_BYTES_PER_CYCLE = 25.6  # [M] 51.2 GB/s (dual-channel DDR4) at 2 GHz

# Conditional branches: data-dependent compares (sparse merge loops) are
# nearly unpredictable; each mispredict flushes the front-end.
BRANCH_MISS_PENALTY = 14  # [I] Haswell-class pipeline refill

# ---------------------------------------------------------------------------
# Memory-level parallelism
# ---------------------------------------------------------------------------
# Sequential streams are detected by the hardware prefetchers, which run
# far enough ahead that stream miss latency is almost entirely hidden and
# throughput is bounded by DRAM occupancy instead.  Dependent
# (pointer-chasing) accesses barely overlap — the paper's Challenge 1 is
# precisely this serialization.
MLP_STREAM = 64.0  # [M] prefetcher-covered streams expose ~3 cyc/line
MLP_DEPENDENT = 1.6  # [M] col_idx -> x[col] chains expose most latency

# ---------------------------------------------------------------------------
# Kernel-specific software cost models (documented in each kernel module)
# ---------------------------------------------------------------------------
# Eigen-style sparse merge (SpMA): compare, select, two pointer advances,
# bounds check, result append (index + value) and loop control.
SPMA_STEP_UOPS = 16  # [M] incl. result-array append/bookkeeping
SPMA_ROW_UOPS = 30  # [M] per-row result setup / row_ptr bookkeeping
SPMA_MERGE_MISPREDICT = 0.45  # [M] two-stream compare is near coin-flip
SPMA_INSERT_MISPREDICT = 0.2  # [M] result-append capacity checks
# Inner-product SpMM index search (Algorithm 3 search_idx): tighter loop,
# somewhat more predictable exit pattern than a full merge.
SPMM_STEP_UOPS = 3  # [M]
SPMM_SEARCH_MISPREDICT = 0.15  # [M]
# Scalar histogram: the load-increment-store chain through the L1 and the
# store buffer limits throughput well below the issue width.
HISTOGRAM_RMW_CHAIN = 6  # [M] cycles per element of exposed RMW chain

# ---------------------------------------------------------------------------
# VIA hardware (Sections IV and VI)
# ---------------------------------------------------------------------------
SSPM_ELEMENT_BYTES = 4  # [P] SRAM built from four-byte blocks
FIVU_EXTRA_STAGES = 3  # [P] preprocessing-1/-2 + post-processing
SSPM_ACCESS_LATENCY = 2  # [M] SRAM read/write pipeline latency
CAM_SEARCH_LATENCY = 1  # [M] banked CAM match resolves in a cycle
COMMIT_ISSUE_OVERHEAD = 1  # [M] ROB-notify handshake per VIA instruction

# ---------------------------------------------------------------------------
# Energy (22 nm, 0.8 V — McPAT/CACTI substitute, Section V-A)
# Representative per-event energies in picojoules.
# ---------------------------------------------------------------------------
ENERGY_PJ = {
    "scalar_op": 20.0,  # [M] scalar uop through an OoO pipeline
    "vector_op": 60.0,  # [M] 256-bit ALU op incl. pipeline overheads
    "l1_access": 15.0,  # [M] CACTI-class 32 KB SRAM read
    "l2_access": 45.0,
    "l3_access": 120.0,
    "dram_line": 2000.0,  # [M] ~31 pJ/bit * 64 B line
    "sspm_access": 8.0,  # [M] small dedicated SRAM, cheaper than L1
    "cam_search": 12.0,  # [M] banked 8-entry CAM with clock gating
    "gather_overhead": 200.0,  # [M] AGU replay energy of a gather/scatter
}
CORE_LEAKAGE_MW = 350.0  # [M] Haswell-class core leakage at 22 nm
