"""DRAM model: fixed access latency plus a shared bandwidth budget.

Each line transferred (demand fill or write-back) occupies the channel for
``line_bytes / bw_bytes_per_cycle`` cycles.  The occupancy total becomes one
of the resource bounds in the core's cycle accounting — a memory-bound
kernel's runtime is its DRAM occupancy, which is exactly the regime the
paper targets (Section III-B: "computations such as SpMV and SpMM become
memory-bound").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DRAMStats:
    """Lines moved between the LLC and memory."""

    reads: int = 0
    writes: int = 0

    @property
    def lines(self) -> int:
        return self.reads + self.writes

    def reset(self) -> None:
        self.reads = self.writes = 0


class DRAMModel:
    """Latency + bandwidth accounting for the memory channel."""

    def __init__(self, latency: int, bw_bytes_per_cycle: float, line_bytes: int):
        self.latency = int(latency)
        self.bw_bytes_per_cycle = float(bw_bytes_per_cycle)
        self.line_bytes = int(line_bytes)
        self.stats = DRAMStats()

    def read_line(self) -> int:
        """Fetch one line; returns the access latency in cycles."""
        self.stats.reads += 1
        return self.latency

    def read_lines(self, count: int) -> None:
        """Bulk-record ``count`` demand fills (aggregate accounting)."""
        self.stats.reads += int(count)

    def write_line(self) -> None:
        """Write back one line (posted; latency hidden by write buffers)."""
        self.stats.writes += 1

    @property
    def traffic_bytes(self) -> int:
        """Total bytes moved on the channel."""
        return self.stats.lines * self.line_bytes

    def occupancy_cycles(self) -> float:
        """Cycles the channel is busy moving the recorded traffic."""
        return self.traffic_bytes / self.bw_bytes_per_cycle

    def reset(self) -> None:
        self.stats.reset()
