"""Counters and result records produced by the machine model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union


@dataclass
class OpCounters:
    """Raw event counts accumulated while a kernel runs."""

    scalar_uops: int = 0
    vector_uops: int = 0
    vector_fma: int = 0
    vector_reduce: int = 0
    vector_permute: int = 0
    vector_conflict: int = 0
    gathers: int = 0
    scatters: int = 0
    gather_elements: int = 0
    scatter_elements: int = 0
    mem_line_accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    dram_fills: int = 0
    stream_miss_latency: float = 0.0
    dependent_miss_latency: float = 0.0
    branches: int = 0
    branch_mispredicts: float = 0.0
    dependency_stall_cycles: float = 0.0
    via_instructions: int = 0
    sspm_accesses: int = 0
    sspm_busy_cycles: float = 0.0
    cam_searches: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


@dataclass
class CycleBreakdown:
    """Resource-bound components of the final cycle count.

    ``bound`` components race (the machine is limited by the slowest
    resource); ``exposed`` components add on top (latency the out-of-order
    window could not hide).
    """

    issue_cycles: float = 0.0
    vfu_cycles: float = 0.0
    gather_serial_cycles: float = 0.0
    dram_occupancy_cycles: float = 0.0
    sspm_cycles: float = 0.0
    commit_serial_cycles: float = 0.0
    exposed_stream_latency: float = 0.0
    exposed_dependent_latency: float = 0.0
    branch_penalty_cycles: float = 0.0
    dependency_stall_cycles: float = 0.0

    @property
    def bound_cycles(self) -> float:
        return max(
            self.issue_cycles,
            self.vfu_cycles,
            self.gather_serial_cycles,
            self.dram_occupancy_cycles,
            self.sspm_cycles,
            self.commit_serial_cycles,
        )

    @property
    def bottleneck(self) -> str:
        """Name of the resource that bounds execution."""
        candidates = {
            "issue": self.issue_cycles,
            "vfu": self.vfu_cycles,
            "gather": self.gather_serial_cycles,
            "dram": self.dram_occupancy_cycles,
            "sspm": self.sspm_cycles,
            "commit": self.commit_serial_cycles,
        }
        return max(candidates, key=lambda name: candidates[name])

    @property
    def total_cycles(self) -> float:
        return (
            self.bound_cycles
            + self.exposed_stream_latency
            + self.exposed_dependent_latency
            + self.branch_penalty_cycles
            + self.dependency_stall_cycles
        )

    def as_dict(self) -> Dict[str, Union[float, str]]:
        d: Dict[str, Union[float, str]] = {
            k: getattr(self, k) for k in self.__dataclass_fields__
        }
        d["bound_cycles"] = self.bound_cycles
        d["total_cycles"] = self.total_cycles
        d["bottleneck"] = self.bottleneck
        return d


@dataclass
class SweepCounters:
    """Aggregate observability counters for one sweep-runner invocation.

    Produced by :func:`repro.eval.runner.run_units`; every work unit lands
    in exactly one of ``units_ok`` / ``units_cached`` / ``units_resumed`` /
    ``units_failed`` / ``units_skipped``.  ``cache_corrupt`` counts cache
    entries that failed integrity checks; ``units_corrupt`` counts the
    units those entries belonged to (recomputed, never served).  The
    supervised-execution counters record watchdog activity:
    ``units_retried`` units that needed more than one attempt,
    ``units_timeout`` units whose final attempt exceeded the wall-clock
    timeout, and ``worker_deaths`` worker processes that died (or were
    killed by the watchdog) and were replenished.

    The engine-observability counters record which pricing path ran:
    ``engine_fallback`` counts loud scalar fallbacks (non-integral
    latency configs, see
    :class:`~repro.sim.columnar.EngineFallbackWarning`) and
    ``narration_flushes`` counts builder flushes through the columnar
    record path.  Both are process-wide deltas attributed to the sweep
    that observed them; with parallel workers the narration happens in
    worker processes and the in-process deltas under-count (workers do
    not report them back).
    """

    units_total: int = 0
    units_ok: int = 0
    units_cached: int = 0
    units_resumed: int = 0
    units_failed: int = 0
    units_skipped: int = 0
    units_corrupt: int = 0
    units_retried: int = 0
    units_timeout: int = 0
    worker_deaths: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_corrupt: int = 0
    engine_fallback: int = 0
    narration_flushes: int = 0
    wall_seconds: float = 0.0
    workers: int = 1

    def as_dict(self) -> Dict[str, float]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}

    def merge(self, other: "SweepCounters") -> "SweepCounters":
        """Combine counters from two sweeps (workers: max, wall: sum)."""
        merged = SweepCounters(workers=max(self.workers, other.workers))
        for name in self.__dataclass_fields__:
            if name == "workers":
                continue
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged

    def summary(self) -> str:
        return (
            f"{self.units_total} units: {self.units_ok} computed, "
            f"{self.units_cached} cached, "
            + (f"{self.units_resumed} resumed, " if self.units_resumed else "")
            + f"{self.units_failed} failed, "
            f"{self.units_skipped} skipped "
            + (f"[{self.units_retried} retried] " if self.units_retried else "")
            + (f"[{self.units_timeout} timed out] " if self.units_timeout else "")
            + (f"[{self.worker_deaths} worker death(s)] " if self.worker_deaths else "")
            + (
                f"[{self.engine_fallback} engine fallback(s)] "
                if self.engine_fallback
                else ""
            )
            + f"(cache {self.cache_hits} hit / {self.cache_misses} miss"
            + (f" / {self.cache_corrupt} corrupt" if self.cache_corrupt else "")
            + f") in {self.wall_seconds:.2f}s with {self.workers} worker(s)"
        )


@dataclass
class KernelResult:
    """Everything measured for one timed kernel execution."""

    name: str
    cycles: float
    seconds: float
    breakdown: CycleBreakdown
    counters: OpCounters
    dram_traffic_bytes: int
    energy_pj: float
    memory_bandwidth_gbs: float
    cache_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    output: Optional[object] = None

    def speedup_over(self, baseline: "KernelResult") -> float:
        """Baseline cycles divided by this result's cycles (>1 == faster)."""
        return baseline.cycles / self.cycles if self.cycles else float("inf")

    def energy_ratio_over(self, baseline: "KernelResult") -> float:
        """Baseline energy divided by this result's energy (>1 == greener)."""
        return baseline.energy_pj / self.energy_pj if self.energy_pj else float("inf")

    def summary(self) -> str:
        return (
            f"{self.name}: {self.cycles:,.0f} cycles "
            f"({self.seconds * 1e3:.3f} ms), "
            f"bound={self.breakdown.bottleneck}, "
            f"DRAM={self.dram_traffic_bytes / 1024:.1f} KiB, "
            f"BW={self.memory_bandwidth_gbs:.2f} GB/s, "
            f"E={self.energy_pj / 1e6:.3f} uJ"
        )
