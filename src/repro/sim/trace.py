"""Execution tracing for the machine model.

Wrap a :class:`~repro.sim.core.Core` in a :class:`TracedCore` and every
operation the kernel narrates is recorded as a :class:`TraceEvent`.  The
trace answers "what did this kernel actually do" during model debugging
and powers the instruction-mix reports in tests and examples::

    core = TracedCore(Core(machine))
    ... run a kernel against `core` ...
    print(core.trace.mix())

Tracing rides the op-stream IR seam: the proxy installs a
:class:`~repro.sim.backends.TraceBackend` around the core's existing
backend, so every :class:`~repro.sim.ops.Op` the core emits is logged
before being priced (or recorded) exactly as it would have been untraced.
Tracing is opt-in (kernels accept a plain ``Core``) so sweeps pay nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.backends import TraceBackend


@dataclass(frozen=True)
class TraceEvent:
    """One narrated operation."""

    kind: str
    detail: str
    count: int = 1


@dataclass
class Trace:
    """An append-only list of events with aggregation helpers."""

    events: List[TraceEvent] = field(default_factory=list)

    def add(self, kind: str, detail: str = "", count: int = 1) -> None:
        self.events.append(TraceEvent(kind, detail, int(count)))

    def __len__(self) -> int:
        return len(self.events)

    def mix(self) -> Dict[str, int]:
        """Operation counts by kind (the kernel's instruction mix)."""
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + ev.count
        return out

    def filter(self, kind: str) -> List[TraceEvent]:
        return [ev for ev in self.events if ev.kind == kind]

    def render(self, limit: Optional[int] = 40) -> str:
        """Human-readable listing (truncated to ``limit`` events)."""
        shown = self.events if limit is None else self.events[:limit]
        lines = [f"{ev.kind:14s} x{ev.count:<8d} {ev.detail}" for ev in shown]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)


class TracedCore:
    """Transparent tracing proxy around a :class:`~repro.sim.core.Core`.

    Installs a :class:`~repro.sim.backends.TraceBackend` wrapping the
    core's current backend and forwards every attribute to the wrapped
    core.  Because kernels only ever call public ``Core`` methods — all of
    which emit through the backend seam — the proxy is a drop-in
    replacement, and VIA-device calls into the core are traced too.
    """

    def __init__(self, core: Any):
        self._core = core
        self.trace = Trace()
        core.backend = TraceBackend(self.trace, inner=core.backend)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._core, name)
