"""Execution tracing for the machine model.

Wrap a :class:`~repro.sim.core.Core` in a :class:`TracedCore` and every
operation the kernel narrates is recorded as a :class:`TraceEvent`.  The
trace answers "what did this kernel actually do" during model debugging
and powers the instruction-mix reports in tests and examples::

    core = TracedCore(Core(machine))
    ... run a kernel against `core` ...
    print(core.trace.mix())

Tracing is opt-in (kernels accept a plain ``Core``) so sweeps pay nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class TraceEvent:
    """One narrated operation."""

    kind: str
    detail: str
    count: int = 1


@dataclass
class Trace:
    """An append-only list of events with aggregation helpers."""

    events: List[TraceEvent] = field(default_factory=list)

    def add(self, kind: str, detail: str = "", count: int = 1) -> None:
        self.events.append(TraceEvent(kind, detail, int(count)))

    def __len__(self) -> int:
        return len(self.events)

    def mix(self) -> Dict[str, int]:
        """Operation counts by kind (the kernel's instruction mix)."""
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + ev.count
        return out

    def filter(self, kind: str) -> List[TraceEvent]:
        return [ev for ev in self.events if ev.kind == kind]

    def render(self, limit: Optional[int] = 40) -> str:
        """Human-readable listing (truncated to ``limit`` events)."""
        shown = self.events if limit is None else self.events[:limit]
        lines = [f"{ev.kind:14s} x{ev.count:<8d} {ev.detail}" for ev in shown]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)


class TracedCore:
    """Transparent tracing proxy around a :class:`~repro.sim.core.Core`.

    Forwards every attribute to the wrapped core, intercepting the
    narration entry points to record events.  Because kernels only ever
    call public ``Core`` methods, the proxy is a drop-in replacement.
    """

    _INTERCEPTS = {
        "scalar_ops",
        "vector_op",
        "branches",
        "dependency_stall",
        "load_stream",
        "store_stream",
        "gather",
        "scatter",
        "gather_serial",
        "scatter_serial",
        "load_windows",
        "scalar_load",
        "scalar_store",
        "bulk_stream",
        "record_via_op",
    }

    def __init__(self, core):
        self._core = core
        self.trace = Trace()
        # re-attach the VIA device so its record_via_op calls route here
        if core.via is not None:
            core.via.attach(self)

    def __getattr__(self, name):
        attr = getattr(self._core, name)
        if name not in self._INTERCEPTS or not callable(attr):
            return attr

        def wrapper(*args, **kwargs):
            self.trace.add(name, _describe(name, args, kwargs), _count(args, kwargs))
            return attr(*args, **kwargs)

        return wrapper


def _count(args, kwargs) -> int:
    for value in list(args) + list(kwargs.values()):
        if isinstance(value, (int, np.integer)) and value > 0:
            return int(value)
        if isinstance(value, np.ndarray):
            return max(int(value.size), 1)
    return 1


def _describe(name: str, args, kwargs) -> str:
    parts = []
    for a in args:
        if isinstance(a, np.ndarray):
            parts.append(f"<{a.size} elems>")
        elif hasattr(a, "name") and hasattr(a, "base"):
            parts.append(a.name)
        else:
            parts.append(repr(a))
    parts += [f"{k}={_short(v)}" for k, v in kwargs.items()]
    return ", ".join(parts)


def _short(v) -> str:
    if isinstance(v, np.ndarray):
        return f"<{v.size} elems>"
    return repr(v)
