"""The cycle-approximate out-of-order core model.

Kernels do not run real machine code; they *narrate* their execution to a
:class:`Core` as a stream of coarse operations (one call per VL-wide vector
instruction or scalar bookkeeping group) while computing their functional
results in numpy.  Each narration call builds an immutable
:class:`~repro.sim.ops.Op` record and routes it through the core's backend
(:mod:`repro.sim.backends`): the default direct backend prices it
immediately, a recorder also captures it for later replay, a trace backend
logs it.  Pricing itself always happens in :meth:`Op.apply` against the
machine configuration and the live cache hierarchy, then
:meth:`Core.finalize` combines the counters into cycles with an
interval-style overlap model:

``cycles = max(resource bounds) + exposed miss latency``

* **Resource bounds** race against each other — issue bandwidth, vector
  unit occupancy, gather/scatter serialization, DRAM channel occupancy,
  SSPM port occupancy, and VIA commit serialization.  A kernel runs as slow
  as its most contended resource, which is how balanced pipelines behave on
  average.
* **Exposed latency** adds on top: cache-miss latency divided by the
  memory-level parallelism the access pattern allows.  Streaming misses
  overlap up to ~MSHR depth; dependent (pointer-chasing) misses barely
  overlap — the paper's Challenge 1.

This is deliberately not a per-instruction scheduler: it is fast enough to
sweep a thousand-matrix collection in Python while preserving the
mechanisms the paper's conclusions rest on (see DESIGN.md Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim import calibration as cal
from repro.sim.backends import Backend, DirectBackend
from repro.sim.config import DEFAULT_MACHINE, MachineConfig
from repro.sim.hierarchy import AccessResult, MemoryHierarchy
from repro.sim.ops import (
    AllocOp,
    BranchesOp,
    BulkStreamOp,
    DependencyStallOp,
    GatherOp,
    GatherSerialOp,
    LoadStreamOp,
    LoadWindowsOp,
    Op,
    ScalarLoadOp,
    ScalarOpsOp,
    ScalarStoreOp,
    ScatterOp,
    ScatterSerialOp,
    StoreStreamOp,
    VectorOpOp,
    ViaOpRecord,
)
from repro.sim.stats import CycleBreakdown, KernelResult, OpCounters

_LINE = cal.CACHE_LINE_BYTES


def stream_uop_count(machine: MachineConfig, count: int, elem_bytes: int) -> int:
    """Issue cost of one contiguous vector access (VL elements per uop).

    Shared by :meth:`Core._stream_uops` and the columnar engine
    (:mod:`repro.sim.columnar`) so both price stream issue identically.
    """
    per_uop = max(1, (machine.vl * 8) // max(elem_bytes, 1))
    return max(1, -(-int(count) // per_uop))


def build_result(
    *,
    name: str,
    machine: MachineConfig,
    counters: OpCounters,
    dram_occupancy_cycles: float,
    dram_traffic_bytes: int,
    dram_lines: int,
    cache_stats: Dict[str, dict],
    via_leakage_mw: float,
    output=None,
) -> KernelResult:
    """Combine priced counters into a :class:`KernelResult`.

    This is the single cycles/energy formula, shared by
    :meth:`Core.finalize` and by replay (which reconstructs results from a
    recording's stored pricing state without a live core) — keeping them on
    one code path is what makes replayed results bit-identical.
    """
    m, c = machine, counters
    breakdown = CycleBreakdown(
        issue_cycles=(c.scalar_uops + c.vector_uops) / m.issue_width,
        vfu_cycles=c.vector_uops / cal.VFU_THROUGHPUT_PER_CYCLE,
        gather_serial_cycles=(
            c.gathers * m.gather_base_latency
            + c.scatters * m.scatter_base_latency
        ),
        dram_occupancy_cycles=dram_occupancy_cycles,
        sspm_cycles=c.sspm_busy_cycles,
        commit_serial_cycles=c.via_instructions * cal.COMMIT_ISSUE_OVERHEAD,
        exposed_stream_latency=c.stream_miss_latency / m.mlp_stream,
        exposed_dependent_latency=c.dependent_miss_latency / m.mlp_dependent,
        branch_penalty_cycles=c.branch_mispredicts * cal.BRANCH_MISS_PENALTY,
        dependency_stall_cycles=c.dependency_stall_cycles,
    )
    cycles = breakdown.total_cycles
    seconds = m.cycles_to_seconds(cycles)
    bandwidth = dram_traffic_bytes / seconds / 1e9 if seconds else 0.0
    energy = _energy_pj(c, dram_lines, via_leakage_mw, seconds)
    return KernelResult(
        name=name,
        cycles=cycles,
        seconds=seconds,
        breakdown=breakdown,
        counters=c,
        dram_traffic_bytes=dram_traffic_bytes,
        energy_pj=energy,
        memory_bandwidth_gbs=bandwidth,
        cache_stats=cache_stats,
        output=output,
    )


def _energy_pj(
    c: OpCounters, dram_lines: int, via_leak_mw: float, seconds: float
) -> float:
    e = cal.ENERGY_PJ
    dynamic = (
        c.scalar_uops * e["scalar_op"]
        + c.vector_uops * e["vector_op"]
        + c.mem_line_accesses * e["l1_access"]
        + (c.mem_line_accesses - c.l1_hits) * e["l2_access"]
        + (c.mem_line_accesses - c.l1_hits - c.l2_hits) * e["l3_access"]
        + dram_lines * e["dram_line"]
        + c.sspm_accesses * e["sspm_access"]
        + c.cam_searches * e["cam_search"]
        + (c.gathers + c.scatters) * e["gather_overhead"]
    )
    leakage = (cal.CORE_LEAKAGE_MW + via_leak_mw) * 1e-3 * seconds * 1e12
    return dynamic + leakage


@dataclass(frozen=True)
class Array:
    """A named region of the simulated address space.

    Kernels convert element indices into byte addresses through this handle
    so the cache model sees a realistic layout.
    """

    name: str
    base: int
    nbytes: int
    elem_bytes: int

    @property
    def num_elems(self) -> int:
        return self.nbytes // self.elem_bytes

    def addr(self, indices) -> np.ndarray:
        """Byte addresses of the given element indices."""
        idx = np.asarray(indices, dtype=np.int64)
        return self.base + idx * self.elem_bytes

    def addr_range(self, start: int, count: int) -> tuple:
        """(base, nbytes) of elements ``[start, start+count)``."""
        return self.base + start * self.elem_bytes, count * self.elem_bytes


class AddressSpace:
    """Bump allocator handing out line-aligned simulated arrays.

    Allocation order fully determines base addresses, which is why
    replaying a recorded op stream (allocations included) reproduces the
    exact address trace the original run generated.
    """

    def __init__(self, base: int = 0x1000_0000):
        self._next = base
        self._arrays: Dict[str, Array] = {}

    def alloc(self, name: str, num_elems: int, elem_bytes: int = 8) -> Array:
        if num_elems < 0 or elem_bytes <= 0:
            raise SimulationError(
                f"bad allocation {name!r}: {num_elems} x {elem_bytes}B"
            )
        nbytes = max(num_elems, 1) * elem_bytes
        arr = Array(name, self._next, nbytes, elem_bytes)
        # advance to the next line boundary so arrays never share lines
        self._next += (nbytes + _LINE - 1) // _LINE * _LINE
        self._arrays[name] = arr
        return arr

    def __getitem__(self, name: str) -> Array:
        return self._arrays[name]


class Core:
    """Cycle-approximate OoO core with an attached memory hierarchy.

    Parameters
    ----------
    machine:
        Machine configuration (defaults to the Table I machine).
    via:
        Optional VIA device (:class:`repro.via.engine.ViaDevice`).  When
        present, VIA instructions report their SSPM occupancy here through
        :meth:`record_via_op`.
    backend:
        Op-stream backend (defaults to :class:`~repro.sim.backends.DirectBackend`,
        which prices every op immediately — the historical behavior).
    """

    def __init__(
        self,
        machine: MachineConfig = DEFAULT_MACHINE,
        via=None,
        backend: Optional[Backend] = None,
    ):
        self.machine = machine
        self.memory = MemoryHierarchy(machine)
        self.mem = AddressSpace()
        self.counters = OpCounters()
        self.backend: Backend = backend if backend is not None else DirectBackend()
        self.via = via
        if via is not None:
            via.attach(self)

    def _emit(self, op: Op) -> None:
        """Route one narrated op through the backend (the IR seam)."""
        self.backend.handle(op, self)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, name: str, num_elems: int, elem_bytes: int = 8) -> Array:
        """Allocate a simulated array (line-aligned)."""
        self._emit(AllocOp(name, int(num_elems), int(elem_bytes)))
        return self.mem[name]

    # ------------------------------------------------------------------
    # Scalar / vector compute
    # ------------------------------------------------------------------
    def scalar_ops(self, count: int) -> None:
        """Record ``count`` scalar bookkeeping uops (loop control, etc.)."""
        self._emit(ScalarOpsOp(int(count)))

    def vector_op(self, kind: str = "alu", count: int = 1) -> None:
        """Record ``count`` VL-wide vector ALU instructions.

        ``kind`` selects the latency/energy class: ``alu``, ``fma``,
        ``reduce``, ``permute``, ``conflict``, ``mask``.
        """
        self._emit(VectorOpOp(kind, int(count)))

    def branches(self, count: int, mispredict_rate: float) -> None:
        """Record conditional branches with a given mispredict rate.

        Sparse merge loops (SpMA Algorithm 2, SpMM index search) branch on
        data comparisons the predictor cannot learn; every mispredict costs
        a front-end refill.
        """
        self._emit(BranchesOp(int(count), float(mispredict_rate)))

    def dependency_stall(self, cycles: float) -> None:
        """Record serialization the OoO window cannot hide.

        Used for true dependence chains: per-row horizontal reductions
        feeding the next iteration, or read-modify-write chains on the same
        address (scalar histogram bins).
        """
        self._emit(DependencyStallOp(float(cycles)))

    # ------------------------------------------------------------------
    # Memory operations
    # ------------------------------------------------------------------
    def load_stream(self, array: Array, start: int, count: int) -> None:
        """Contiguous load of ``count`` elements starting at ``start``."""
        self._emit(LoadStreamOp(array.name, int(start), int(count)))

    def store_stream(self, array: Array, start: int, count: int) -> None:
        """Contiguous store of ``count`` elements starting at ``start``."""
        self._emit(StoreStreamOp(array.name, int(start), int(count)))

    def gather(self, array: Array, indices, *, n_instr: Optional[int] = None) -> None:
        """Vector gather ``array[indices]`` (paper Challenge 1).

        Charged the published fixed cost per gather instruction plus the
        memory-system cost of each element access, classified as dependent
        (the indices themselves were loaded first — pointer chasing).

        ``n_instr`` overrides the default ``ceil(len / VL)`` instruction
        count; kernels pass it when short rows fragment vectors (a row of
        two entries still needs a whole gather instruction).
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        vl = self.machine.vl
        if n_instr is None:
            n_instr = (idx.size + vl - 1) // vl
        self._emit(GatherOp(array.name, idx, int(n_instr)))

    def scatter(self, array: Array, indices, *, n_instr: Optional[int] = None) -> None:
        """Vector scatter to ``array[indices]`` (store-load forwarding
        traffic when used for partial results)."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        vl = self.machine.vl
        if n_instr is None:
            n_instr = (idx.size + vl - 1) // vl
        self._emit(ScatterOp(array.name, idx, int(n_instr)))

    def gather_serial(self, n_instr: int, elements_per_instr: int) -> None:
        """Account gather instructions whose memory side is billed elsewhere.

        Sliding-window kernels re-read the same lines thousands of times;
        simulating every element address is pointless when the stream side
        is already charged via :meth:`load_stream`/:meth:`bulk_stream`.
        This records only the instructions' fixed serialization cost and
        issue bandwidth.
        """
        n_instr = int(n_instr)
        if n_instr <= 0:
            return
        self._emit(GatherSerialOp(n_instr, int(elements_per_instr)))

    def scatter_serial(self, n_instr: int, elements_per_instr: int) -> None:
        """Scatter counterpart of :meth:`gather_serial`."""
        n_instr = int(n_instr)
        if n_instr <= 0:
            return
        self._emit(ScatterSerialOp(n_instr, int(elements_per_instr)))

    def load_windows(self, array: Array, starts, width: int) -> None:
        """Vector loads of ``width`` contiguous elements at computed starts.

        Models formats that read small windows at data-dependent offsets
        (e.g. SPC5 reading ``x[col0 : col0+VL]`` per block): one vector uop
        per window, memory classified as dependent because the start comes
        from a just-loaded header, but *without* the gather fixed cost —
        these are plain (possibly unaligned) vector loads.
        """
        starts = np.asarray(starts, dtype=np.int64)
        if starts.size == 0 or width <= 0:
            return
        self._emit(LoadWindowsOp(array.name, starts, int(width)))

    def scalar_load(self, array: Array, indices, *, dependent: bool = False) -> None:
        """Scalar loads of individual elements."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        self._emit(ScalarLoadOp(array.name, idx, bool(dependent)))

    def scalar_store(self, array: Array, indices, *, dependent: bool = False) -> None:
        """Scalar stores of individual elements."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        self._emit(ScalarStoreOp(array.name, idx, bool(dependent)))

    def bulk_stream(self, array: Array, *, passes: int, write: bool = False) -> None:
        """Aggregate accounting for re-streaming an array ``passes`` times.

        Inner-product SpMM re-reads all of matrix ``B`` once per row of
        ``A`` — simulating millions of identical line accesses per matrix
        is pointless, so repeat passes are classified analytically: the
        array is served by the smallest cache level that fits it (first
        pass runs through the detailed model and warms the hierarchy).
        """
        if passes <= 0:
            return
        self._emit(BulkStreamOp(array.name, int(passes), bool(write)))

    # ------------------------------------------------------------------
    # VIA hook
    # ------------------------------------------------------------------
    def record_via_op(
        self,
        *,
        sspm_elements: int,
        cam_searches: int,
        port_cycles: Optional[float] = None,
        port_passes: Optional[int] = None,
        count: int = 1,
    ) -> None:
        """Account VIA instructions' SSPM work (called by the engine).

        The engine passes ``port_passes`` — the FIVU profile's pass count —
        and the port-cycle cost is derived at pricing time from the VIA
        configuration of whichever core prices the op: a VIA op touching
        ``k`` SSPM elements per pass needs ``ceil(k / ports)`` scratchpad
        cycles per pass (Section IV-B, preprocessing-1 nested pipeline).
        A pre-computed ``port_cycles`` is also accepted and pins the cost
        (legacy callers / cores without a VIA device).  The commit
        handshake adds a fixed overhead and VIA instructions serialize at
        commit (Section IV-E).  ``count`` bulk-records that many identical
        instructions (per-instruction operand values do not change the
        timing, only the element counts do).
        """
        self._emit(
            ViaOpRecord(
                sspm_elements=int(sspm_elements),
                cam_searches=int(cam_searches),
                count=int(count),
                port_passes=None if port_passes is None else int(port_passes),
                port_cycles=None if port_cycles is None else float(port_cycles),
            )
        )

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self, name: str, *, output=None) -> KernelResult:
        """Combine the accumulated counters into a :class:`KernelResult`."""
        self.backend.on_finalize(self, name, output)
        return build_result(
            name=name,
            machine=self.machine,
            counters=self.counters,
            dram_occupancy_cycles=self.memory.dram.occupancy_cycles(),
            dram_traffic_bytes=self.memory.dram.traffic_bytes,
            dram_lines=self.memory.dram.stats.lines,
            cache_stats=self.memory.level_stats(),
            via_leakage_mw=self.via.leakage_mw if self.via is not None else 0.0,
            output=output,
        )

    # ------------------------------------------------------------------
    # Internals (shared by Op.apply implementations)
    # ------------------------------------------------------------------
    def _price_stream(self, array: Array, start: int, count: int, *, write: bool) -> None:
        """Detailed-model cost of one contiguous stream access."""
        base, nbytes = array.addr_range(start, count)
        res = self.memory.access_stream(base, nbytes, write=write)
        self._record_mem(res, dependent=False)
        self._stream_uops(count, array.elem_bytes)

    def _stream_uops(self, count: int, elem_bytes: int) -> None:
        """Issue cost of a contiguous vector access (VL elements per uop)."""
        self.counters.vector_uops += stream_uop_count(
            self.machine, count, elem_bytes
        )

    def _record_mem(self, res: AccessResult, *, dependent: bool) -> None:
        c = self.counters
        c.mem_line_accesses += res.line_accesses
        c.l1_hits += res.l1_hits
        c.l2_hits += res.l2_hits
        c.l3_hits += res.l3_hits
        c.dram_fills += res.dram_fills
        # latency beyond the (pipelined) L1 hit cost is what stalls expose
        miss_latency = res.latency_sum - res.line_accesses * self.machine.l1.latency
        miss_latency = max(miss_latency, 0.0)
        if dependent:
            c.dependent_miss_latency += miss_latency
        else:
            c.stream_miss_latency += miss_latency
