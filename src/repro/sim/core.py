"""The cycle-approximate out-of-order core model.

Kernels do not run real machine code; they *narrate* their execution to a
:class:`Core` as a stream of coarse operations (one call per VL-wide vector
instruction or scalar bookkeeping group) while computing their functional
results in numpy.  Narration is **born columnar**: when the core's backend
can consume batches (all pricing backends can), each narration call appends
one row to an in-core :class:`~repro.sim.columnar.ColumnarBuilder` and the
buffered rows flush through the columnar pricing kernels
(:func:`~repro.sim.columnar.price_flush`) — no per-op
:class:`~repro.sim.ops.Op` object is ever allocated on the hot path.  The
scalar path (one ``Op`` per call, priced through :meth:`Op.apply`) is
retained as the reference engine: it serves batch-incapable backends
(tracing), machines whose latencies break the columnar bit-identity
contract, and ``set_narration_mode("scalar")``.  Both paths produce
bit-identical counters; the differential suite pins this.

:meth:`Core.finalize` combines the counters into cycles with an
interval-style overlap model:

``cycles = max(resource bounds) + exposed miss latency``

* **Resource bounds** race against each other — issue bandwidth, vector
  unit occupancy, gather/scatter serialization, DRAM channel occupancy,
  SSPM port occupancy, and VIA commit serialization.  A kernel runs as slow
  as its most contended resource, which is how balanced pipelines behave on
  average.
* **Exposed latency** adds on top: cache-miss latency divided by the
  memory-level parallelism the access pattern allows.  Streaming misses
  overlap up to ~MSHR depth; dependent (pointer-chasing) misses barely
  overlap — the paper's Challenge 1.

This is deliberately not a per-instruction scheduler: it is fast enough to
sweep a thousand-matrix collection in Python while preserving the
mechanisms the paper's conclusions rest on (see DESIGN.md Sections 5 and 10).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro.errors import SimulationError
from repro.sim import calibration as cal
from repro.sim.backends import Backend, DirectBackend
from repro.sim.config import DEFAULT_MACHINE, MachineConfig
from repro.sim.hierarchy import AccessResult, MemoryHierarchy
from repro.sim.ops import (
    AllocOp,
    BranchesOp,
    BulkStreamOp,
    DependencyStallOp,
    GatherOp,
    GatherSerialOp,
    LoadStreamOp,
    LoadWindowsOp,
    Op,
    ScalarLoadOp,
    ScalarOpsOp,
    ScalarStoreOp,
    ScatterOp,
    ScatterSerialOp,
    StoreStreamOp,
    VectorOpOp,
    ViaOpRecord,
)
from repro.sim.stats import CycleBreakdown, KernelResult, OpCounters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.columnar import ColumnarBuilder
    from repro.via.engine import ViaDevice

_LINE = cal.CACHE_LINE_BYTES

# ---------------------------------------------------------------------------
# Narration mode (process-wide)
# ---------------------------------------------------------------------------
#: rows buffered core-side before a batch flushes through the columnar
#: pricing kernels; large enough that flush overhead amortizes, small
#: enough that a sweep's peak buffered state stays a few hundred KB
DEFAULT_FLUSH_OPS = 8192

_VALID_NARRATION_MODES = ("batched", "scalar")
_narration_mode = "batched"
_FLUSH_LOCK = threading.Lock()
_flush_count = 0


def set_narration_mode(mode: str) -> str:
    """Select how cores buffer narration; returns the previous mode.

    ``batched`` (the default) buffers rows in a
    :class:`~repro.sim.columnar.ColumnarBuilder` and prices them in
    batches; ``scalar`` restores the per-op ``Op.apply`` reference path.
    Affects cores constructed *after* the call (each core binds its mode
    in ``__init__``/backend swaps).  Benchmarks and the differential
    suite flip this to compare engines::

        previous = set_narration_mode("scalar")
        try:
            ...
        finally:
            set_narration_mode(previous)
    """
    global _narration_mode
    if mode not in _VALID_NARRATION_MODES:
        raise SimulationError(
            f"unknown narration mode {mode!r}; "
            f"expected one of {_VALID_NARRATION_MODES}"
        )
    previous = _narration_mode
    _narration_mode = mode
    return previous


def narration_mode() -> str:
    """The process-wide narration mode (``batched`` or ``scalar``)."""
    return _narration_mode


def narration_flush_count() -> int:
    """Process-wide count of builder flushes (sweep/serve metrics)."""
    return _flush_count


def _note_flush() -> None:
    global _flush_count
    with _FLUSH_LOCK:
        _flush_count += 1


def stream_uop_count(machine: MachineConfig, count: int, elem_bytes: int) -> int:
    """Issue cost of one contiguous vector access (VL elements per uop).

    Shared by :meth:`Core._stream_uops` and the columnar engine
    (:mod:`repro.sim.columnar`) so both price stream issue identically.
    """
    per_uop = max(1, (machine.vl * 8) // max(elem_bytes, 1))
    return max(1, -(-int(count) // per_uop))


def build_result(
    *,
    name: str,
    machine: MachineConfig,
    counters: OpCounters,
    dram_occupancy_cycles: float,
    dram_traffic_bytes: int,
    dram_lines: int,
    cache_stats: Dict[str, Dict[str, Any]],
    via_leakage_mw: float,
    output: object = None,
) -> KernelResult:
    """Combine priced counters into a :class:`KernelResult`.

    This is the single cycles/energy formula, shared by
    :meth:`Core.finalize` and by replay (which reconstructs results from a
    recording's stored pricing state without a live core) — keeping them on
    one code path is what makes replayed results bit-identical.
    """
    m, c = machine, counters
    breakdown = CycleBreakdown(
        issue_cycles=(c.scalar_uops + c.vector_uops) / m.issue_width,
        vfu_cycles=c.vector_uops / cal.VFU_THROUGHPUT_PER_CYCLE,
        gather_serial_cycles=(
            c.gathers * m.gather_base_latency
            + c.scatters * m.scatter_base_latency
        ),
        dram_occupancy_cycles=dram_occupancy_cycles,
        sspm_cycles=c.sspm_busy_cycles,
        commit_serial_cycles=c.via_instructions * cal.COMMIT_ISSUE_OVERHEAD,
        exposed_stream_latency=c.stream_miss_latency / m.mlp_stream,
        exposed_dependent_latency=c.dependent_miss_latency / m.mlp_dependent,
        branch_penalty_cycles=c.branch_mispredicts * cal.BRANCH_MISS_PENALTY,
        dependency_stall_cycles=c.dependency_stall_cycles,
    )
    cycles = breakdown.total_cycles
    seconds = m.cycles_to_seconds(cycles)
    bandwidth = dram_traffic_bytes / seconds / 1e9 if seconds else 0.0
    energy = _energy_pj(c, dram_lines, via_leakage_mw, seconds)
    return KernelResult(
        name=name,
        cycles=cycles,
        seconds=seconds,
        breakdown=breakdown,
        counters=c,
        dram_traffic_bytes=dram_traffic_bytes,
        energy_pj=energy,
        memory_bandwidth_gbs=bandwidth,
        cache_stats=cache_stats,
        output=output,
    )


def _energy_pj(
    c: OpCounters, dram_lines: int, via_leak_mw: float, seconds: float
) -> float:
    e = cal.ENERGY_PJ
    dynamic = (
        c.scalar_uops * e["scalar_op"]
        + c.vector_uops * e["vector_op"]
        + c.mem_line_accesses * e["l1_access"]
        + (c.mem_line_accesses - c.l1_hits) * e["l2_access"]
        + (c.mem_line_accesses - c.l1_hits - c.l2_hits) * e["l3_access"]
        + dram_lines * e["dram_line"]
        + c.sspm_accesses * e["sspm_access"]
        + c.cam_searches * e["cam_search"]
        + (c.gathers + c.scatters) * e["gather_overhead"]
    )
    leakage = (cal.CORE_LEAKAGE_MW + via_leak_mw) * 1e-3 * seconds * 1e12
    return dynamic + leakage


@dataclass(frozen=True)
class Array:
    """A named region of the simulated address space.

    Kernels convert element indices into byte addresses through this handle
    so the cache model sees a realistic layout.
    """

    name: str
    base: int
    nbytes: int
    elem_bytes: int

    @property
    def num_elems(self) -> int:
        return self.nbytes // self.elem_bytes

    def addr(self, indices: npt.ArrayLike) -> npt.NDArray[np.int64]:
        """Byte addresses of the given element indices."""
        idx = np.asarray(indices, dtype=np.int64)
        return np.asarray(self.base + idx * self.elem_bytes, dtype=np.int64)

    def addr_range(self, start: int, count: int) -> Tuple[int, int]:
        """(base, nbytes) of elements ``[start, start+count)``."""
        return self.base + start * self.elem_bytes, count * self.elem_bytes


class AddressSpace:
    """Bump allocator handing out line-aligned simulated arrays.

    Allocation order fully determines base addresses, which is why
    replaying a recorded op stream (allocations included) reproduces the
    exact address trace the original run generated.
    """

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._next = base
        self._arrays: Dict[str, Array] = {}

    def alloc(self, name: str, num_elems: int, elem_bytes: int = 8) -> Array:
        if num_elems < 0 or elem_bytes <= 0:
            raise SimulationError(
                f"bad allocation {name!r}: {num_elems} x {elem_bytes}B"
            )
        nbytes = max(num_elems, 1) * elem_bytes
        arr = Array(name, self._next, nbytes, elem_bytes)
        # advance to the next line boundary so arrays never share lines
        self._next += (nbytes + _LINE - 1) // _LINE * _LINE
        self._arrays[name] = arr
        return arr

    def __getitem__(self, name: str) -> Array:
        return self._arrays[name]


class Core:
    """Cycle-approximate OoO core with an attached memory hierarchy.

    Parameters
    ----------
    machine:
        Machine configuration (defaults to the Table I machine).
    via:
        Optional VIA device (:class:`repro.via.engine.ViaDevice`).  When
        present, VIA instructions report their SSPM occupancy here through
        :meth:`record_via_op`.
    backend:
        Op-stream backend (defaults to :class:`~repro.sim.backends.DirectBackend`).
        Backends advertising :attr:`~repro.sim.backends.Backend.batch_capable`
        receive narration as columnar flush batches; others get one
        :class:`~repro.sim.ops.Op` per call (the reference path).
    flush_ops:
        Buffered-row threshold at which the builder flushes
        (default :data:`DEFAULT_FLUSH_OPS`; keyword-only).
    """

    def __init__(
        self,
        machine: MachineConfig = DEFAULT_MACHINE,
        via: Optional["ViaDevice"] = None,
        backend: Optional[Backend] = None,
        *,
        flush_ops: int = DEFAULT_FLUSH_OPS,
    ) -> None:
        self.machine = machine
        self.memory = MemoryHierarchy(machine)
        self.mem = AddressSpace()
        self._counters = OpCounters()
        self._backend: Backend = (
            backend if backend is not None else DirectBackend()
        )
        self._flush_ops = max(1, int(flush_ops))
        self._builder: Optional["ColumnarBuilder"] = None
        self._fallback_pending = False
        self.via = via
        if via is not None:
            via.attach(self)
        self._refresh_mode()

    # ------------------------------------------------------------------
    # Batched-narration plumbing
    # ------------------------------------------------------------------
    @property
    def counters(self) -> OpCounters:
        """Priced counters, current through everything narrated so far.

        Reading them drains the narration buffer first, so mid-kernel
        observers (invariant checks, tests, the VIA engine) always see
        totals identical to the scalar path's.
        """
        b = self._builder
        if b is not None and b.rows:
            self._flush()
        return self._counters

    @counters.setter
    def counters(self, value: OpCounters) -> None:
        self._counters = value

    @property
    def backend(self) -> Backend:
        return self._backend

    @backend.setter
    def backend(self, value: Backend) -> None:
        # drain buffered narration into the backend that observed it, then
        # rebind the mode to the new backend's capabilities (TracedCore
        # swaps in a batch-incapable TraceBackend this way)
        self._flush()
        self._backend = value
        self._refresh_mode()

    def _refresh_mode(self) -> None:
        self._builder = None
        self._fallback_pending = False
        if not (self._backend.batch_capable and narration_mode() == "batched"):
            return
        from repro.sim.columnar import (
            ColumnarBuilder,
            machine_latencies_integral,
        )

        if not machine_latencies_integral(self.machine):
            # columnar bit-identity needs integer cycle arithmetic; warn
            # lazily at the first narrated op so cores that never narrate
            # (replay memo cores) stay quiet
            self._fallback_pending = True
            return
        self._builder = ColumnarBuilder()

    def _flush(self) -> None:
        """Price and hand off all buffered narration rows."""
        b = self._builder
        if b is None or not b.rows:
            return
        # detach before dispatch: pricing reads ``core.counters``, which
        # must not re-enter the flush
        batch = b.take()
        _note_flush()
        self._backend.flush(batch, self)

    def _emit(self, op: Op) -> None:
        """Route one narrated op through the backend (the IR seam).

        Batched cores flush first so a directly-injected op observes (and
        is validated against) the same counter state as in scalar order.
        """
        if self._builder is not None:
            self._flush()
        elif self._fallback_pending:
            self._fallback_pending = False
            from repro.sim.columnar import note_engine_fallback

            note_engine_fallback(self.machine, context="narration")
        self._backend.handle(op, self)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, name: str, num_elems: int, elem_bytes: int = 8) -> Array:
        """Allocate a simulated array (line-aligned)."""
        b = self._builder
        if b is None:
            self._emit(AllocOp(name, int(num_elems), int(elem_bytes)))
            return self.mem[name]
        # eager allocation keeps handles usable immediately; the builder
        # row preserves the op in the stream so replays re-derive the
        # identical address space
        arr = self.mem.alloc(name, int(num_elems), int(elem_bytes))
        b.alloc(arr, int(num_elems), int(elem_bytes))
        if b.rows >= self._flush_ops:
            self._flush()
        return arr

    # ------------------------------------------------------------------
    # Scalar / vector compute
    # ------------------------------------------------------------------
    def scalar_ops(self, count: int) -> None:
        """Record ``count`` scalar bookkeeping uops (loop control, etc.)."""
        b = self._builder
        if b is None:
            self._emit(ScalarOpsOp(int(count)))
            return
        b.scalar_ops(int(count))
        if b.rows >= self._flush_ops:
            self._flush()

    def vector_op(self, kind: str = "alu", count: int = 1) -> None:
        """Record ``count`` VL-wide vector ALU instructions.

        ``kind`` selects the latency/energy class: ``alu``, ``fma``,
        ``reduce``, ``permute``, ``conflict``, ``mask``.
        """
        b = self._builder
        if b is None:
            self._emit(VectorOpOp(kind, int(count)))
            return
        b.vector_op(kind, int(count))
        if b.rows >= self._flush_ops:
            self._flush()

    def branches(self, count: int, mispredict_rate: float) -> None:
        """Record conditional branches with a given mispredict rate.

        Sparse merge loops (SpMA Algorithm 2, SpMM index search) branch on
        data comparisons the predictor cannot learn; every mispredict costs
        a front-end refill.
        """
        b = self._builder
        if b is None:
            self._emit(BranchesOp(int(count), float(mispredict_rate)))
            return
        b.branches(int(count), float(mispredict_rate))
        if b.rows >= self._flush_ops:
            self._flush()

    def dependency_stall(self, cycles: float) -> None:
        """Record serialization the OoO window cannot hide.

        Used for true dependence chains: per-row horizontal reductions
        feeding the next iteration, or read-modify-write chains on the same
        address (scalar histogram bins).
        """
        b = self._builder
        if b is None:
            self._emit(DependencyStallOp(float(cycles)))
            return
        b.dependency_stall(float(cycles))
        if b.rows >= self._flush_ops:
            self._flush()

    # ------------------------------------------------------------------
    # Memory operations
    # ------------------------------------------------------------------
    def load_stream(self, array: Array, start: int, count: int) -> None:
        """Contiguous load of ``count`` elements starting at ``start``."""
        b = self._builder
        if b is None:
            self._emit(LoadStreamOp(array.name, int(start), int(count)))
            return
        b.load_stream(array, int(start), int(count))
        if b.rows >= self._flush_ops:
            self._flush()

    def store_stream(self, array: Array, start: int, count: int) -> None:
        """Contiguous store of ``count`` elements starting at ``start``."""
        b = self._builder
        if b is None:
            self._emit(StoreStreamOp(array.name, int(start), int(count)))
            return
        b.store_stream(array, int(start), int(count))
        if b.rows >= self._flush_ops:
            self._flush()

    def gather(
        self,
        array: Array,
        indices: npt.ArrayLike,
        *,
        n_instr: Optional[int] = None,
    ) -> None:
        """Vector gather ``array[indices]`` (paper Challenge 1).

        Charged the published fixed cost per gather instruction plus the
        memory-system cost of each element access, classified as dependent
        (the indices themselves were loaded first — pointer chasing).

        ``n_instr`` overrides the default ``ceil(len / VL)`` instruction
        count; kernels pass it when short rows fragment vectors (a row of
        two entries still needs a whole gather instruction).
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        vl = self.machine.vl
        if n_instr is None:
            n_instr = (idx.size + vl - 1) // vl
        b = self._builder
        if b is None:
            self._emit(GatherOp(array.name, idx, int(n_instr)))
            return
        b.gather(array, idx, int(n_instr))
        if b.rows >= self._flush_ops:
            self._flush()

    def scatter(
        self,
        array: Array,
        indices: npt.ArrayLike,
        *,
        n_instr: Optional[int] = None,
    ) -> None:
        """Vector scatter to ``array[indices]`` (store-load forwarding
        traffic when used for partial results)."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        vl = self.machine.vl
        if n_instr is None:
            n_instr = (idx.size + vl - 1) // vl
        b = self._builder
        if b is None:
            self._emit(ScatterOp(array.name, idx, int(n_instr)))
            return
        b.scatter(array, idx, int(n_instr))
        if b.rows >= self._flush_ops:
            self._flush()

    def gather_serial(self, n_instr: int, elements_per_instr: int) -> None:
        """Account gather instructions whose memory side is billed elsewhere.

        Sliding-window kernels re-read the same lines thousands of times;
        simulating every element address is pointless when the stream side
        is already charged via :meth:`load_stream`/:meth:`bulk_stream`.
        This records only the instructions' fixed serialization cost and
        issue bandwidth.
        """
        n_instr = int(n_instr)
        if n_instr <= 0:
            return
        b = self._builder
        if b is None:
            self._emit(GatherSerialOp(n_instr, int(elements_per_instr)))
            return
        b.gather_serial(n_instr, int(elements_per_instr))
        if b.rows >= self._flush_ops:
            self._flush()

    def scatter_serial(self, n_instr: int, elements_per_instr: int) -> None:
        """Scatter counterpart of :meth:`gather_serial`."""
        n_instr = int(n_instr)
        if n_instr <= 0:
            return
        b = self._builder
        if b is None:
            self._emit(ScatterSerialOp(n_instr, int(elements_per_instr)))
            return
        b.scatter_serial(n_instr, int(elements_per_instr))
        if b.rows >= self._flush_ops:
            self._flush()

    def load_windows(
        self, array: Array, starts: npt.ArrayLike, width: int
    ) -> None:
        """Vector loads of ``width`` contiguous elements at computed starts.

        Models formats that read small windows at data-dependent offsets
        (e.g. SPC5 reading ``x[col0 : col0+VL]`` per block): one vector uop
        per window, memory classified as dependent because the start comes
        from a just-loaded header, but *without* the gather fixed cost —
        these are plain (possibly unaligned) vector loads.
        """
        start_idx = np.asarray(starts, dtype=np.int64)
        if start_idx.size == 0 or width <= 0:
            return
        b = self._builder
        if b is None:
            self._emit(LoadWindowsOp(array.name, start_idx, int(width)))
            return
        b.load_windows(array, start_idx, int(width))
        if b.rows >= self._flush_ops:
            self._flush()

    def scalar_load(
        self, array: Array, indices: npt.ArrayLike, *, dependent: bool = False
    ) -> None:
        """Scalar loads of individual elements."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        b = self._builder
        if b is None:
            self._emit(ScalarLoadOp(array.name, idx, bool(dependent)))
            return
        b.scalar_load(array, idx, bool(dependent))
        if b.rows >= self._flush_ops:
            self._flush()

    def scalar_store(
        self, array: Array, indices: npt.ArrayLike, *, dependent: bool = False
    ) -> None:
        """Scalar stores of individual elements."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        b = self._builder
        if b is None:
            self._emit(ScalarStoreOp(array.name, idx, bool(dependent)))
            return
        b.scalar_store(array, idx, bool(dependent))
        if b.rows >= self._flush_ops:
            self._flush()

    def bulk_stream(
        self, array: Array, *, passes: int, write: bool = False
    ) -> None:
        """Aggregate accounting for re-streaming an array ``passes`` times.

        Inner-product SpMM re-reads all of matrix ``B`` once per row of
        ``A`` — simulating millions of identical line accesses per matrix
        is pointless, so repeat passes are classified analytically: the
        array is served by the smallest cache level that fits it (first
        pass runs through the detailed model and warms the hierarchy).
        """
        if passes <= 0:
            return
        b = self._builder
        if b is None:
            self._emit(BulkStreamOp(array.name, int(passes), bool(write)))
            return
        b.bulk_stream(array, int(passes), bool(write))
        if b.rows >= self._flush_ops:
            self._flush()

    # ------------------------------------------------------------------
    # VIA hook
    # ------------------------------------------------------------------
    def record_via_op(
        self,
        *,
        sspm_elements: int,
        cam_searches: int,
        port_cycles: Optional[float] = None,
        port_passes: Optional[int] = None,
        count: int = 1,
    ) -> None:
        """Account VIA instructions' SSPM work (called by the engine).

        The engine passes ``port_passes`` — the FIVU profile's pass count —
        and the port-cycle cost is derived at pricing time from the VIA
        configuration of whichever core prices the op: a VIA op touching
        ``k`` SSPM elements per pass needs ``ceil(k / ports)`` scratchpad
        cycles per pass (Section IV-B, preprocessing-1 nested pipeline).
        A pre-computed ``port_cycles`` is also accepted and pins the cost
        (legacy callers / cores without a VIA device).  The commit
        handshake adds a fixed overhead and VIA instructions serialize at
        commit (Section IV-E).  ``count`` bulk-records that many identical
        instructions (per-instruction operand values do not change the
        timing, only the element counts do).
        """
        b = self._builder
        if b is None:
            self._emit(
                ViaOpRecord(
                    sspm_elements=int(sspm_elements),
                    cam_searches=int(cam_searches),
                    count=int(count),
                    port_passes=None if port_passes is None else int(port_passes),
                    port_cycles=None if port_cycles is None else float(port_cycles),
                )
            )
            return
        b.record_via_op(
            sspm_elements=int(sspm_elements),
            cam_searches=int(cam_searches),
            count=int(count),
            port_passes=None if port_passes is None else int(port_passes),
            port_cycles=None if port_cycles is None else float(port_cycles),
        )
        if b.rows >= self._flush_ops:
            self._flush()

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self, name: str, *, output: object = None) -> KernelResult:
        """Combine the accumulated counters into a :class:`KernelResult`."""
        self._flush()
        self._backend.on_finalize(self, name, output)
        return build_result(
            name=name,
            machine=self.machine,
            counters=self._counters,
            dram_occupancy_cycles=self.memory.dram.occupancy_cycles(),
            dram_traffic_bytes=self.memory.dram.traffic_bytes,
            dram_lines=self.memory.dram.stats.lines,
            cache_stats=self.memory.level_stats(),
            via_leakage_mw=self.via.leakage_mw if self.via is not None else 0.0,
            output=output,
        )

    # ------------------------------------------------------------------
    # Internals (shared by Op.apply implementations)
    # ------------------------------------------------------------------
    def _price_stream(
        self, array: Array, start: int, count: int, *, write: bool
    ) -> None:
        """Detailed-model cost of one contiguous stream access."""
        base, nbytes = array.addr_range(start, count)
        res = self.memory.access_stream(base, nbytes, write=write)
        self._record_mem(res, dependent=False)
        self._stream_uops(count, array.elem_bytes)

    def _stream_uops(self, count: int, elem_bytes: int) -> None:
        """Issue cost of a contiguous vector access (VL elements per uop)."""
        self._counters.vector_uops += stream_uop_count(
            self.machine, count, elem_bytes
        )

    def _record_mem(self, res: AccessResult, *, dependent: bool) -> None:
        c = self._counters
        c.mem_line_accesses += res.line_accesses
        c.l1_hits += res.l1_hits
        c.l2_hits += res.l2_hits
        c.l3_hits += res.l3_hits
        c.dram_fills += res.dram_fills
        # latency beyond the (pipelined) L1 hit cost is what stalls expose
        miss_latency = res.latency_sum - res.line_accesses * self.machine.l1.latency
        miss_latency = max(miss_latency, 0.0)
        if dependent:
            c.dependent_miss_latency += miss_latency
        else:
            c.stream_miss_latency += miss_latency
