"""The typed operation-stream IR — the narration channel of the simulator.

Kernels narrate their execution as coarse events (streaming loads, gathers,
vector ALU groups, VIA instructions...).  Historically each narration call
mutated :class:`~repro.sim.core.Core` counters directly; this module turns
every event into an immutable :class:`Op` record so the *same* stream can be

* priced immediately (the direct backend — today's behavior),
* captured to a compact on-disk artifact (the recorder backend), and
* re-priced later under a different machine/VIA configuration without
  re-executing any functional numpy (replay).

This is the trace-driven separation standard in vector-architecture
simulators: the op stream is the functional/timing seam, and every backend
prices ops through the single :meth:`Op.apply` path, which is what makes
replayed timing bit-identical to direct execution by construction.

Stream shape
------------

An op stream is not universal: kernels *shape* their narration using a few
configuration values (vector length for chunking, SSPM capacity for strip
and batch sizes, the L1 latency baked into one histogram stall).  Two
configurations with the same :func:`stream_shape_key` produce identical
streams and may share recordings; everything else (cache geometry, DRAM,
MLP, SSPM *ports*) only affects pricing and can be swept at replay time.

Serialization
-------------

:func:`save_recordings` / :func:`load_recordings` persist a dict of
:class:`Recording` objects into one ``np.savez_compressed`` artifact: a JSON
meta blob (schema version, configs, priced state, checksum) plus native npz
arrays — the op stream stored *columnar* (schema v2: one array per
:data:`repro.sim.columnar.COLUMNS` field plus the shared int64 index pool,
exactly the struct-of-arrays the vectorized engine prices), and the
functional outputs.  Loading never materializes per-op Python objects:
:class:`Recording` holds the columns and converts to an op list lazily only
when the scalar engine asks.  Any truncation, tampering, or schema mismatch
raises :class:`RecordingError` — callers treat that as a cache miss and
re-record.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import threading
import zipfile
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
    cast,
)

import numpy as np
import numpy.typing as npt

from repro.errors import (
    InvariantError,
    RecordingError,
    ReplayMismatchError,
    SimulationError,
)
from repro.sim import calibration as cal
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.stats import OpCounters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports ops)
    from repro.sim.columnar import ColumnarOps
    from repro.sim.core import Core
    from repro.sim.stats import KernelResult
    from repro.via.config import ViaConfig

#: bump whenever Op field layouts or the artifact format change; folded into
#: recording cache keys so stale artifacts invalidate cleanly.
#: v2: op streams persist as struct-of-arrays columns (repro.sim.columnar)
#: instead of per-op JSON payloads
OPS_SCHEMA_VERSION = 2

_LINE = cal.CACHE_LINE_BYTES

#: vector-op kinds the cycle model understands (see OpCounters)
VECTOR_OP_KINDS = ("alu", "mask", "fma", "reduce", "permute", "conflict")


__all__ = [
    "OPS_SCHEMA_VERSION",
    "InvariantError",
    "Op",
    "OP_CLASSES",
    "PricedState",
    "Recording",
    "RecordingError",
    "ReplayMismatchError",
    "load_recordings",
    "machine_shape_key",
    "save_recordings",
    "stream_shape_key",
    "via_totals",
]


def _require_non_negative(op_kind: str, **fields: Optional[float]) -> None:
    """Constructor guard shared by the op classes.

    A negative multiplicity can only come from corrupt narration, a
    tampered artifact, or an arithmetic bug upstream; rejecting it at op
    construction pins the failure to the op that carried it instead of
    letting it silently skew counters (negative counts would *decrease*
    monotone counters when applied).
    """
    for name, value in fields.items():
        if value is not None and value < 0:
            raise SimulationError(
                f"{op_kind}: {name} must be >= 0, got {value!r}"
            )


# ---------------------------------------------------------------------------
# Stream shape keys
# ---------------------------------------------------------------------------

#: machine fields deliberately outside :func:`machine_shape_key`, checked
#: by the VIA101 cache-key hygiene rule (``python -m repro.analysis``).
#: Everything here is consumed at *pricing* time — replay applies it to a
#: recorded stream — so it must stay out of the stream-shape key or the
#: record/replay store stops deduplicating across pricing variants.
KEY_EXEMPT = {
    "MachineConfig": {
        "clock_ghz": "pricing-only: scales cycles to seconds",
        "issue_width": "pricing-only: scalar-issue throughput",
        "rob_entries": "pricing-only: overlap window",
        "mshrs": "pricing-only: outstanding-miss cap",
        "vfu_fma_latency": "pricing-only: vector FMA cost",
        "gather_base_latency": "pricing-only: gather cost",
        "scatter_base_latency": "pricing-only: scatter cost",
        "l2": "pricing-only: hit costs priced at replay",
        "l3": "pricing-only: hit costs priced at replay",
        "dram_latency": "pricing-only: miss cost",
        "dram_bw_bytes_per_cycle": "pricing-only: stream bandwidth",
        "mlp_stream": "pricing-only: stream overlap factor",
        "mlp_dependent": "pricing-only: dependent-miss overlap factor",
    },
    "CacheConfig": {
        "size_kb": "pricing-only: hit/miss split priced at replay",
        "ways": "pricing-only: conflict behaviour priced at replay",
        "line_bytes": "pricing-only: line-granularity pricing",
    },
}


def machine_shape_key(machine: MachineConfig) -> Dict[str, Any]:
    """The machine parameters that shape narration (not just pricing).

    ``vector_lanes`` sets every chunk count kernels compute; ``l1.latency``
    is read by the scalar-histogram narration when sizing its RMW stall.
    All other machine knobs are consumed at pricing time.
    """
    return {
        "vector_lanes": machine.vector_lanes,
        "l1_latency": machine.l1.latency,
    }


def stream_shape_key(
    machine: MachineConfig, via_config: Optional["ViaConfig"]
) -> Dict[str, Any]:
    """Everything that determines the *shape* of a narrated op stream.

    VIA kernels read ``sram_entries`` / ``cam_entries`` / ``csb_block_size``
    (all derived from ``sram_kb``) for strip, batch, and tile loops; the
    port count never reaches narration — it is applied when a
    :class:`ViaOpRecord` is priced.  Hence the Fig. 9 DSE's four
    configurations collapse into two shape groups (4 KB and 16 KB), each
    recorded once and replayed per port variant.
    """
    key = machine_shape_key(machine)
    key["via_sram_kb"] = via_config.sram_kb if via_config is not None else None
    return key


# ---------------------------------------------------------------------------
# Op records
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Op:
    """One narrated event.  Subclasses carry the event's parameters and
    implement :meth:`apply`, the single pricing path every backend uses."""

    #: registry key and trace-event kind (matches the Core method name)
    kind: ClassVar[str] = ""
    #: scalar payload fields, serialized verbatim into the meta JSON
    _scalars: ClassVar[Tuple[str, ...]] = ()
    #: int64-ndarray payload fields, serialized through the index pool
    _arrays: ClassVar[Tuple[str, ...]] = ()

    def apply(self, core: "Core") -> None:
        raise NotImplementedError

    @property
    def trace_count(self) -> int:
        """Event multiplicity reported to the execution trace."""
        return 1

    def describe(self) -> str:
        """Short human-readable operand summary for trace rendering."""
        parts = []
        for name in self._scalars:
            parts.append(f"{name}={getattr(self, name)!r}")
        for name in self._arrays:
            parts.append(f"{name}=<{getattr(self, name).size} elems>")
        return ", ".join(parts)


@dataclass(frozen=True)
class AllocOp(Op):
    """Allocate a named array in the simulated address space.

    Replaying allocations in recorded order reproduces the exact base
    addresses the direct run used, so the cache model sees identical
    address streams.
    """

    name: str
    num_elems: int
    elem_bytes: int

    kind: ClassVar[str] = "alloc"
    _scalars: ClassVar[Tuple[str, ...]] = ("name", "num_elems", "elem_bytes")

    def __post_init__(self) -> None:
        _require_non_negative(self.kind, num_elems=self.num_elems)
        if self.elem_bytes <= 0:
            raise SimulationError(
                f"{self.kind}: elem_bytes must be > 0, got {self.elem_bytes!r}"
            )

    def apply(self, core: "Core") -> None:
        core.mem.alloc(self.name, self.num_elems, self.elem_bytes)

    @property
    def trace_count(self) -> int:
        return max(self.num_elems, 1)


@dataclass(frozen=True)
class ScalarOpsOp(Op):
    """``count`` scalar bookkeeping uops (loop control, etc.)."""

    count: int

    kind: ClassVar[str] = "scalar_ops"
    _scalars: ClassVar[Tuple[str, ...]] = ("count",)

    def __post_init__(self) -> None:
        _require_non_negative(self.kind, count=self.count)

    def apply(self, core: "Core") -> None:
        core.counters.scalar_uops += self.count

    @property
    def trace_count(self) -> int:
        return max(self.count, 1)


@dataclass(frozen=True)
class VectorOpOp(Op):
    """``count`` VL-wide vector ALU instructions of one latency class."""

    op_kind: str
    count: int

    kind: ClassVar[str] = "vector_op"
    _scalars: ClassVar[Tuple[str, ...]] = ("op_kind", "count")

    def __post_init__(self) -> None:
        if self.op_kind not in VECTOR_OP_KINDS:
            raise SimulationError(f"unknown vector op kind {self.op_kind!r}")
        _require_non_negative(self.kind, count=self.count)

    def apply(self, core: "Core") -> None:
        c = core.counters
        c.vector_uops += self.count
        if self.op_kind == "fma":
            c.vector_fma += self.count
        elif self.op_kind == "reduce":
            c.vector_reduce += self.count
        elif self.op_kind == "permute":
            c.vector_permute += self.count
        elif self.op_kind == "conflict":
            c.vector_conflict += self.count

    @property
    def trace_count(self) -> int:
        return max(self.count, 1)


@dataclass(frozen=True)
class BranchesOp(Op):
    """Conditional branches with a given mispredict rate."""

    count: int
    mispredict_rate: float

    kind: ClassVar[str] = "branches"
    _scalars: ClassVar[Tuple[str, ...]] = ("count", "mispredict_rate")

    def __post_init__(self) -> None:
        if not (0.0 <= self.mispredict_rate <= 1.0):
            raise SimulationError(
                f"mispredict_rate must be in [0, 1], got {self.mispredict_rate}"
            )
        _require_non_negative(self.kind, count=self.count)

    def apply(self, core: "Core") -> None:
        c = core.counters
        c.scalar_uops += self.count
        c.branches += self.count
        c.branch_mispredicts += self.count * self.mispredict_rate

    @property
    def trace_count(self) -> int:
        return max(self.count, 1)


@dataclass(frozen=True)
class DependencyStallOp(Op):
    """Serialization the OoO window cannot hide (true dependence chains)."""

    cycles: float

    kind: ClassVar[str] = "dependency_stall"
    _scalars: ClassVar[Tuple[str, ...]] = ("cycles",)

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise SimulationError(
                f"stall cycles must be >= 0, got {self.cycles}"
            )

    def apply(self, core: "Core") -> None:
        core.counters.dependency_stall_cycles += self.cycles


@dataclass(frozen=True)
class _StreamOp(Op):
    """Common body for contiguous load/store streams."""

    array: str
    start: int
    count: int

    _scalars: ClassVar[Tuple[str, ...]] = ("array", "start", "count")
    _write: ClassVar[bool] = False

    def __post_init__(self) -> None:
        _require_non_negative(self.kind, start=self.start, count=self.count)

    def apply(self, core: "Core") -> None:
        core._price_stream(
            core.mem[self.array], self.start, self.count, write=self._write
        )

    @property
    def trace_count(self) -> int:
        return max(self.count, 1)


@dataclass(frozen=True)
class LoadStreamOp(_StreamOp):
    """Contiguous load of ``count`` elements starting at ``start``."""

    kind: ClassVar[str] = "load_stream"
    _write: ClassVar[bool] = False


@dataclass(frozen=True)
class StoreStreamOp(_StreamOp):
    """Contiguous store of ``count`` elements starting at ``start``."""

    kind: ClassVar[str] = "store_stream"
    _write: ClassVar[bool] = True


@dataclass(frozen=True)
class _IndexedVectorOp(Op):
    """Common body for vector gather/scatter with explicit addresses."""

    array: str
    indices: npt.NDArray[np.int64]
    n_instr: int

    _scalars: ClassVar[Tuple[str, ...]] = ("array", "n_instr")
    _arrays: ClassVar[Tuple[str, ...]] = ("indices",)
    _write: ClassVar[bool] = False

    def __post_init__(self) -> None:
        _require_non_negative(self.kind, n_instr=self.n_instr)

    def apply(self, core: "Core") -> None:
        c = core.counters
        if self._write:
            c.scatters += self.n_instr
            c.scatter_elements += int(self.indices.size)
        else:
            c.gathers += self.n_instr
            c.gather_elements += int(self.indices.size)
        c.vector_uops += self.n_instr
        arr = core.mem[self.array]
        res = core.memory.access_addresses(arr.addr(self.indices), write=self._write)
        core._record_mem(res, dependent=True)

    @property
    def trace_count(self) -> int:
        return max(int(self.indices.size), 1)


@dataclass(frozen=True)
class GatherOp(_IndexedVectorOp):
    """Vector gather ``array[indices]`` (paper Challenge 1)."""

    kind: ClassVar[str] = "gather"
    _write: ClassVar[bool] = False


@dataclass(frozen=True)
class ScatterOp(_IndexedVectorOp):
    """Vector scatter to ``array[indices]``."""

    kind: ClassVar[str] = "scatter"
    _write: ClassVar[bool] = True


@dataclass(frozen=True)
class _SerialIndexedOp(Op):
    """Gather/scatter instructions whose memory side is billed elsewhere."""

    n_instr: int
    elements_per_instr: int

    _scalars: ClassVar[Tuple[str, ...]] = ("n_instr", "elements_per_instr")
    _write: ClassVar[bool] = False

    def __post_init__(self) -> None:
        _require_non_negative(
            self.kind,
            n_instr=self.n_instr,
            elements_per_instr=self.elements_per_instr,
        )

    def apply(self, core: "Core") -> None:
        c = core.counters
        if self._write:
            c.scatters += self.n_instr
            c.scatter_elements += self.n_instr * self.elements_per_instr
        else:
            c.gathers += self.n_instr
            c.gather_elements += self.n_instr * self.elements_per_instr
        c.vector_uops += self.n_instr

    @property
    def trace_count(self) -> int:
        return max(self.n_instr, 1)


@dataclass(frozen=True)
class GatherSerialOp(_SerialIndexedOp):
    kind: ClassVar[str] = "gather_serial"
    _write: ClassVar[bool] = False


@dataclass(frozen=True)
class ScatterSerialOp(_SerialIndexedOp):
    kind: ClassVar[str] = "scatter_serial"
    _write: ClassVar[bool] = True


@dataclass(frozen=True)
class LoadWindowsOp(Op):
    """Vector loads of ``width`` contiguous elements at computed starts."""

    array: str
    starts: npt.NDArray[np.int64]
    width: int

    kind: ClassVar[str] = "load_windows"
    _scalars: ClassVar[Tuple[str, ...]] = ("array", "width")
    _arrays: ClassVar[Tuple[str, ...]] = ("starts",)

    def __post_init__(self) -> None:
        _require_non_negative(self.kind, width=self.width)

    def apply(self, core: "Core") -> None:
        arr = core.mem[self.array]
        core.counters.vector_uops += int(self.starts.size)
        offsets = np.arange(self.width, dtype=np.int64)
        addrs = (self.starts[:, None] + offsets[None, :]).ravel() * arr.elem_bytes
        addrs += arr.base
        res = core.memory.access_addresses(addrs, write=False)
        core._record_mem(res, dependent=True)

    @property
    def trace_count(self) -> int:
        return max(int(self.starts.size), 1)


@dataclass(frozen=True)
class _ScalarIndexedOp(Op):
    """Scalar loads/stores of individual elements."""

    array: str
    indices: npt.NDArray[np.int64]
    dependent: bool

    _scalars: ClassVar[Tuple[str, ...]] = ("array", "dependent")
    _arrays: ClassVar[Tuple[str, ...]] = ("indices",)
    _write: ClassVar[bool] = False

    def apply(self, core: "Core") -> None:
        core.counters.scalar_uops += int(self.indices.size)
        arr = core.mem[self.array]
        res = core.memory.access_addresses(arr.addr(self.indices), write=self._write)
        core._record_mem(res, dependent=self.dependent)

    @property
    def trace_count(self) -> int:
        return max(int(self.indices.size), 1)


@dataclass(frozen=True)
class ScalarLoadOp(_ScalarIndexedOp):
    kind: ClassVar[str] = "scalar_load"
    _write: ClassVar[bool] = False


@dataclass(frozen=True)
class ScalarStoreOp(_ScalarIndexedOp):
    kind: ClassVar[str] = "scalar_store"
    _write: ClassVar[bool] = True


@dataclass(frozen=True)
class BulkStreamOp(Op):
    """Re-stream an array ``passes`` times (analytic repeat-pass residency).

    The op stores *intent* (array + pass count), not addresses: the first
    pass runs through the detailed model, and the analytic residency level
    for repeat passes is derived from the machine the op is priced on —
    so replaying onto a machine with different cache capacities re-derives
    the residency correctly.
    """

    array: str
    passes: int
    write: bool

    kind: ClassVar[str] = "bulk_stream"
    _scalars: ClassVar[Tuple[str, ...]] = ("array", "passes", "write")

    def __post_init__(self) -> None:
        _require_non_negative(self.kind, passes=self.passes)

    def apply(self, core: "Core") -> None:
        arr = core.mem[self.array]
        core._price_stream(arr, 0, arr.num_elems, write=self.write)
        extra = self.passes - 1
        if extra <= 0:
            return
        m = core.machine
        lines = -(-arr.nbytes // _LINE)
        c = core.counters
        # residency level: smallest cache whose capacity holds the array
        if arr.nbytes <= m.l1.size_kb * 1024:
            level_latency, level = 0.0, "l1"
        elif arr.nbytes <= m.l2.size_kb * 1024:
            level_latency, level = float(m.l2.latency), "l2"
        elif arr.nbytes <= m.l3.size_kb * 1024:
            level_latency, level = float(m.l2.latency + m.l3.latency), "l3"
        else:
            level_latency, level = (
                float(m.l2.latency + m.l3.latency + m.dram_latency),
                "dram",
            )
        c.mem_line_accesses += extra * lines
        if level == "l1":
            c.l1_hits += extra * lines
        elif level == "l2":
            c.l2_hits += extra * lines
        elif level == "l3":
            c.l3_hits += extra * lines
        else:
            c.dram_fills += extra * lines
            core.memory.dram.read_lines(extra * lines)
        c.stream_miss_latency += extra * lines * level_latency
        core._stream_uops(arr.num_elems * extra, arr.elem_bytes)

    @property
    def trace_count(self) -> int:
        return max(self.passes, 1)


@dataclass(frozen=True)
class ViaOpRecord(Op):
    """SSPM work of ``count`` identical VIA instructions.

    The preferred payload is the FIVU *profile* (``sspm_elements``,
    ``cam_searches``, ``port_passes``) — the port-cycle cost is then derived
    from the VIA configuration of the core pricing the op, which is what
    lets a recorded stream re-price under a different port count.  A
    pre-computed ``port_cycles`` is accepted for backward compatibility
    (and pins the cost to the recorded configuration).
    """

    sspm_elements: int
    cam_searches: int
    count: int = 1
    port_passes: Optional[int] = None
    port_cycles: Optional[float] = None

    kind: ClassVar[str] = "record_via_op"
    _scalars: ClassVar[Tuple[str, ...]] = (
        "sspm_elements",
        "cam_searches",
        "count",
        "port_passes",
        "port_cycles",
    )

    def __post_init__(self) -> None:
        if self.port_passes is None and self.port_cycles is None:
            raise SimulationError(
                "record_via_op needs port_passes (FIVU profile) or "
                "port_cycles (pre-computed cost)"
            )
        _require_non_negative(
            self.kind,
            sspm_elements=self.sspm_elements,
            cam_searches=self.cam_searches,
            count=self.count,
            port_passes=self.port_passes,
            port_cycles=self.port_cycles,
        )

    def apply(self, core: "Core") -> None:
        port_cycles = self.port_cycles
        if port_cycles is None:
            if core.via is None:
                raise SimulationError(
                    "cannot price a VIA op on a core without a VIA device"
                )
            from repro.via.fivu import FivuTiming

            port_cycles = FivuTiming(
                sspm_elements=self.sspm_elements,
                cam_searches=self.cam_searches,
                # __post_init__ guarantees port_passes when port_cycles is None
                port_passes=cast(int, self.port_passes),
            ).port_cycles(core.via.config)
        c = core.counters
        c.via_instructions += self.count
        c.vector_uops += self.count
        c.sspm_accesses += self.sspm_elements * self.count
        c.cam_searches += self.cam_searches * self.count
        c.sspm_busy_cycles += (
            float(port_cycles) + cal.COMMIT_ISSUE_OVERHEAD
        ) * self.count

    @property
    def trace_count(self) -> int:
        return max(self.count, 1)


#: kind -> Op class, for deserialization
OP_CLASSES: Dict[str, Type[Op]] = {
    cls.kind: cls
    for cls in (
        AllocOp,
        ScalarOpsOp,
        VectorOpOp,
        BranchesOp,
        DependencyStallOp,
        LoadStreamOp,
        StoreStreamOp,
        GatherOp,
        ScatterOp,
        GatherSerialOp,
        ScatterSerialOp,
        LoadWindowsOp,
        ScalarLoadOp,
        ScalarStoreOp,
        BulkStreamOp,
        ViaOpRecord,
    )
}


def via_totals(ops: List[Op], via_config: Optional["ViaConfig"]) -> OpCounters:
    """Counter contributions of a stream's VIA ops under a port configuration.

    Accumulates exactly what each :class:`ViaOpRecord` would add to a live
    core's counters, in stream order, starting from zero — so the sums are
    bit-identical to direct execution's (``sspm_busy_cycles`` receives
    contributions from VIA ops only, and integer counters commute exactly).
    This is the whole port-dependent side of pricing: replaying a recording
    under a sibling port variant only needs this pass.
    """
    totals = OpCounters()
    for op in ops:
        if not isinstance(op, ViaOpRecord):
            continue
        port_cycles = op.port_cycles
        if port_cycles is None:
            if via_config is None:
                raise SimulationError(
                    "cannot price a VIA op without a VIA configuration"
                )
            from repro.via.fivu import FivuTiming

            port_cycles = FivuTiming(
                sspm_elements=op.sspm_elements,
                cam_searches=op.cam_searches,
                # __post_init__ guarantees port_passes when port_cycles is None
                port_passes=cast(int, op.port_passes),
            ).port_cycles(via_config)
        totals.via_instructions += op.count
        totals.vector_uops += op.count
        totals.sspm_accesses += op.sspm_elements * op.count
        totals.cam_searches += op.cam_searches * op.count
        totals.sspm_busy_cycles += (
            float(port_cycles) + cal.COMMIT_ISSUE_OVERHEAD
        ) * op.count
    return totals


# ---------------------------------------------------------------------------
# Recordings
# ---------------------------------------------------------------------------
@dataclass
class PricedState:
    """Priced totals captured when a recording's run finalized.

    Everything :func:`repro.sim.core.build_result` needs, frozen at record
    time.  SSPM port counts touch exactly one of these numbers
    (``counters.sspm_busy_cycles``, recomputed per target by
    :func:`via_totals`), so a same-machine replay is pure arithmetic over
    this state — no cache re-simulation at all.
    """

    counters: OpCounters
    dram_occupancy_cycles: float
    dram_traffic_bytes: int
    dram_lines: int
    cache_stats: Dict[str, Dict[str, Any]]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": self.counters.as_dict(),
            "dram_occupancy_cycles": self.dram_occupancy_cycles,
            "dram_traffic_bytes": self.dram_traffic_bytes,
            "dram_lines": self.dram_lines,
            "cache_stats": self.cache_stats,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PricedState":
        return cls(
            counters=OpCounters(**data["counters"]),
            dram_occupancy_cycles=data["dram_occupancy_cycles"],
            dram_traffic_bytes=data["dram_traffic_bytes"],
            dram_lines=data["dram_lines"],
            cache_stats=data["cache_stats"],
        )


class Recording:
    """One kernel execution captured as an op stream plus its output.

    ``machine`` / ``via_config`` are the configurations the stream was
    narrated under; :func:`repro.sim.backends.replay_recording` re-prices
    the stream under any shape-compatible pair.  ``priced`` is the record
    run's pricing state (same-machine replays reuse it instead of
    re-simulating memory); ``_machine_memo`` caches the one memory pass a
    cross-machine replay needs, keyed by target machine (and engine).

    The stream itself lives in whichever representation produced the
    recording — an op list (recorder backend) or struct-of-arrays columns
    (loaded v2 artifacts) — and converts to the other lazily, under a lock,
    only when an engine asks: the columnar engine never materializes per-op
    objects for a loaded artifact, and the scalar engine never pays for
    columns it does not use.
    """

    def __init__(
        self,
        name: str,
        machine: MachineConfig,
        via_config: Optional["ViaConfig"],
        ops: Optional[List[Op]] = None,
        output: Any = None,
        priced: Optional[PricedState] = None,
        columnar: Optional["ColumnarOps"] = None,
    ) -> None:
        if ops is None and columnar is None:
            ops = []
        self.name = name
        self.machine = machine
        self.via_config = via_config
        self.output = output
        self.priced = priced
        self._ops = ops
        self._columnar = columnar
        #: per-(engine, machine) memoized memory passes; shared across serve
        #: executor threads, guarded by backends._MEMO_LOCK
        self._machine_memo: Dict[Any, Any] = {}
        self._lock = threading.Lock()

    @property
    def shape_key(self) -> Dict[str, Any]:
        return stream_shape_key(self.machine, self.via_config)

    @property
    def ops(self) -> List[Op]:
        """The op stream as records, materialized from columns on demand."""
        ops = self._ops
        if ops is None:
            with self._lock:
                if self._ops is None:
                    self._ops = cast("ColumnarOps", self._columnar).to_ops()
                ops = self._ops
        return ops

    def columnar(self) -> "ColumnarOps":
        """The op stream as struct-of-arrays columns, converted on demand."""
        cols = self._columnar
        if cols is None:
            # deferred: columnar imports this module at load time
            from repro.sim.columnar import ColumnarOps

            with self._lock:
                if self._columnar is None:
                    self._columnar = ColumnarOps.from_ops(
                        cast(List[Op], self._ops)
                    )
                cols = self._columnar
        return cols

    def replay(
        self,
        machine: Optional[MachineConfig] = None,
        via_config: Optional["ViaConfig"] = None,
        *,
        engine: Optional[str] = None,
        validate: bool = False,
    ) -> "KernelResult":
        """Re-price this stream; see :func:`repro.sim.backends.replay_recording`."""
        from repro.sim.backends import replay_recording

        return replay_recording(
            self,
            machine=machine,
            via_config=via_config,
            engine=engine,
            validate=validate,
        )


# -- config (de)serialization ------------------------------------------------
def _machine_to_dict(machine: MachineConfig) -> Dict[str, Any]:
    return dataclasses.asdict(machine)


def _machine_from_dict(data: Dict[str, Any]) -> MachineConfig:
    kwargs = dict(data)
    for level in ("l1", "l2", "l3"):
        kwargs[level] = CacheConfig(**kwargs[level])
    return MachineConfig(**kwargs)


def _via_to_dict(cfg: Optional["ViaConfig"]) -> Optional[Dict[str, Any]]:
    return None if cfg is None else dataclasses.asdict(cfg)


def _via_from_dict(data: Optional[Dict[str, Any]]) -> Optional["ViaConfig"]:
    if data is None:
        return None
    from repro.via.config import ViaConfig

    return ViaConfig(**data)


# -- output (de)serialization ------------------------------------------------
def _encode_output(
    output: Any, arrays: Dict[str, npt.NDArray[Any]], prefix: str
) -> Dict[str, Any]:
    """Encode a kernel output into a JSON spec + named npz arrays.

    Handles the output types kernels actually return: ``None``, python/numpy
    scalars, ndarrays, and the COO/CSR sparse matrices.
    """
    from repro.formats.coo import COOMatrix
    from repro.formats.csr import CSRMatrix

    def stash(suffix: str, arr: npt.NDArray[Any]) -> str:
        key = f"{prefix}{suffix}"
        arrays[key] = np.asarray(arr)
        return key

    if output is None:
        return {"type": "none"}
    if isinstance(output, (bool, int, float, np.integer, np.floating)):
        return {"type": "scalar", "value": float(output)}
    if isinstance(output, np.ndarray):
        return {"type": "ndarray", "key": stash("nd", output)}
    if isinstance(output, CSRMatrix):
        return {
            "type": "csr",
            "shape": [int(output.rows), int(output.cols)],
            "row_ptr": stash("rp", output.row_ptr),
            "col_idx": stash("ci", output.col_idx),
            "data": stash("dt", output.data),
        }
    if isinstance(output, COOMatrix):
        return {
            "type": "coo",
            "shape": [int(output.rows), int(output.cols)],
            "row": stash("r", output.row),
            "col": stash("c", output.col),
            "data": stash("d", output.data),
        }
    raise RecordingError(
        f"cannot serialize kernel output of type {type(output).__name__}"
    )


def _decode_output(spec: Dict[str, Any], arrays: Mapping[str, Any]) -> Any:
    from repro.formats.coo import COOMatrix
    from repro.formats.csr import CSRMatrix

    kind = spec["type"]
    if kind == "none":
        return None
    if kind == "scalar":
        return spec["value"]
    if kind == "ndarray":
        return arrays[spec["key"]]
    if kind == "csr":
        return CSRMatrix(
            tuple(spec["shape"]),
            arrays[spec["row_ptr"]],
            arrays[spec["col_idx"]],
            arrays[spec["data"]],
        )
    if kind == "coo":
        return COOMatrix(
            tuple(spec["shape"]),
            arrays[spec["row"]],
            arrays[spec["col"]],
            arrays[spec["data"]],
        )
    raise RecordingError(f"unknown output spec type {kind!r}")


def _checksum(meta_blob: bytes, arrays: Mapping[str, npt.NDArray[Any]]) -> str:
    """Digest of the meta blob plus every npz array (name, dtype, shape,
    bytes) — so tampering with any column, pool, or output is detected."""
    digest = hashlib.sha256()
    digest.update(meta_blob)
    for key in sorted(arrays):
        arr = np.ascontiguousarray(arrays[key])
        digest.update(key.encode("utf-8"))
        digest.update(arr.dtype.str.encode("ascii"))
        digest.update(repr(arr.shape).encode("ascii"))
        digest.update(arr.tobytes())
    return digest.hexdigest()


def save_recordings(
    path: Any,
    recordings: Dict[str, Recording],
    *,
    extra_meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Persist named recordings into one compressed ``.npz`` artifact.

    Schema v2 stores each entry's op stream as its struct-of-arrays columns
    (``ops{i}_<column>`` plus ``ops{i}_pool``; see
    :class:`repro.sim.columnar.ColumnarOps`) — the exact representation the
    vectorized engine prices, so loading is zero-copy into the columnar
    path and only the scalar engine ever pays per-op materialization.
    """
    from repro.sim.columnar import COLUMNS

    arrays: Dict[str, npt.NDArray[Any]] = {}
    entries: Dict[str, Any] = {}
    for i, (label, rec) in enumerate(recordings.items()):
        cols = rec.columnar()
        prefix = f"ops{i}_"
        for column in COLUMNS:
            arrays[prefix + column] = getattr(cols, column)
        arrays[prefix + "pool"] = cols.pool
        entries[label] = {
            "name": rec.name,
            "machine": _machine_to_dict(rec.machine),
            "via": _via_to_dict(rec.via_config),
            "ops": {"prefix": prefix, "names": list(cols.names)},
            "output": _encode_output(rec.output, arrays, prefix=f"out{i}_"),
            "priced": None if rec.priced is None else rec.priced.to_dict(),
        }
    meta: Dict[str, Any] = {
        "schema": OPS_SCHEMA_VERSION,
        "entries": entries,
        "extra": extra_meta or {},
    }
    meta_blob = json.dumps(meta, sort_keys=True).encode("utf-8")
    meta["checksum"] = _checksum(meta_blob, arrays)
    np.savez_compressed(
        path,
        meta=np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
        **arrays,
    )


def _reject_v1_artifact(path: Any) -> None:
    """The single v1-artifact compatibility shim.

    Schema-1 artifacts (PR-2 era, one JSON payload per op) lost their
    codec when the op stream went columnar; this is the one place that
    still recognizes them, and it translates the bare version mismatch
    into an actionable deprecation error.  Callers that go through
    :class:`repro.eval.recordings.RecordingStore` self-heal — the store
    deletes the stale artifact and the next record run rewrites it in the
    columnar v2 layout — so the error only ever surfaces to direct
    :func:`load_recordings` users.
    """
    raise RecordingError(
        f"recording artifact {path} uses the deprecated v1 per-op schema; "
        "v1 payload codecs were removed when op streams went columnar "
        f"(schema {OPS_SCHEMA_VERSION}) — delete the artifact and re-record"
    )


def load_recordings(path: Any) -> Tuple[Dict[str, Recording], Dict[str, Any]]:
    """Load an artifact; returns ``(recordings, extra_meta)``.

    Raises :class:`RecordingError` on any integrity or schema failure —
    truncated zip, garbled JSON, checksum mismatch, a schema version this
    code does not understand (v1 gets a dedicated deprecation message via
    :func:`_reject_v1_artifact`), or ragged/out-of-bounds op columns (the
    structural validation in :class:`repro.sim.columnar.ColumnarOps`).
    """
    from repro.sim.columnar import COLUMNS, ColumnarOps

    try:
        with np.load(path, allow_pickle=False) as npz:
            meta = json.loads(bytes(npz["meta"].tobytes()).decode("utf-8"))
            arrays = {k: npz[k] for k in npz.files if k != "meta"}
    except (OSError, ValueError, KeyError, zipfile.BadZipFile,
            json.JSONDecodeError, io.UnsupportedOperation) as exc:
        raise RecordingError(f"unreadable recording artifact {path}: {exc}") from exc
    try:
        if meta.get("schema") == 1:
            _reject_v1_artifact(path)
        if meta.get("schema") != OPS_SCHEMA_VERSION:
            raise RecordingError(
                f"recording schema {meta.get('schema')!r} != {OPS_SCHEMA_VERSION}"
            )
        stored = meta.pop("checksum", None)
        meta_blob = json.dumps(meta, sort_keys=True).encode("utf-8")
        if stored != _checksum(meta_blob, arrays):
            raise RecordingError(f"recording checksum mismatch in {path}")
        recordings: Dict[str, Recording] = {}
        for label, entry in meta["entries"].items():
            spec = entry["ops"]
            prefix = spec["prefix"]
            cols = ColumnarOps(
                pool=arrays[prefix + "pool"],
                names=tuple(spec["names"]),
                **{col: arrays[prefix + col] for col in COLUMNS},
            )
            priced = entry.get("priced")
            recordings[label] = Recording(
                name=entry["name"],
                machine=_machine_from_dict(entry["machine"]),
                via_config=_via_from_dict(entry["via"]),
                columnar=cols,
                output=_decode_output(entry["output"], arrays),
                priced=None if priced is None else PricedState.from_dict(priced),
            )
        return recordings, meta.get("extra", {})
    except RecordingError:
        raise
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise RecordingError(f"malformed recording artifact {path}: {exc}") from exc
