"""Set-associative write-back cache model with true LRU replacement.

The model tracks tags only (data values live in the functional layer); it
exists to classify each access as a hit or miss at every level and to count
write-backs, which is all the timing and energy models need.

Accesses are processed at cache-line granularity.  Batch helpers run-length
compress repeated consecutive lines — a vector load that touches one line
eight times is one line access, mirroring how a real LSQ coalesces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.config import CacheConfig


@dataclass
class CacheStats:
    """Hit/miss/write-back counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = self.writebacks = 0


class Cache:
    """One level of a write-back, write-allocate cache.

    Parameters
    ----------
    config:
        Geometry and latency of this level.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.line_bytes = config.line_bytes
        # One recency-ordered dict per set, mapping line id -> dirty bit.
        # Python dicts preserve insertion order and every touch re-inserts
        # the line at the back, so the first key is always the LRU line.
        # Access stamps are strictly increasing, which makes the recency
        # order total — this is exactly equivalent to the timestamp-argmin
        # formulation, without per-access array scans.
        self._sets: List[Dict[int, bool]] = [{} for _ in range(self.num_sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Invalidate all lines and zero the statistics."""
        for lru in self._sets:
            lru.clear()
        self.stats.reset()

    def access_line(self, line: int, write: bool) -> Tuple[bool, Optional[int]]:
        """Access one cache line.

        Returns
        -------
        (hit, victim):
            ``hit`` tells whether the line was present.  On a miss the line
            is allocated; ``victim`` is the line id of an evicted *dirty*
            line that must be written back (None otherwise).
        """
        stats = self.stats
        stats.accesses += 1
        lru = self._sets[line % self.num_sets]
        dirty = lru.pop(line, None)
        if dirty is not None:
            stats.hits += 1
            lru[line] = dirty or bool(write)
            return True, None

        stats.misses += 1
        victim: Optional[int] = None
        if len(lru) >= self.ways:
            victim_line = next(iter(lru))
            if lru.pop(victim_line):
                stats.writebacks += 1
                victim = victim_line
        lru[line] = bool(write)
        return False, victim

    def probe(self, line: int) -> bool:
        """Check presence without touching LRU state or statistics."""
        return line in self._sets[line % self.num_sets]

    def occupancy(self) -> float:
        """Fraction of lines currently valid."""
        filled = sum(len(lru) for lru in self._sets)
        return filled / float(self.num_sets * self.ways)


def compress_lines(addresses: np.ndarray, line_bytes: int) -> Tuple[np.ndarray, np.ndarray]:
    """Convert byte addresses to run-length-compressed line ids.

    Consecutive accesses to the same line collapse into one (they would be
    merged in the load-store queue).  Returns ``(lines, counts)`` where
    ``counts[i]`` is the number of raw accesses the run represents.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    lines = addresses // line_bytes
    boundary = np.empty(lines.size, dtype=bool)
    boundary[0] = True
    np.not_equal(lines[1:], lines[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    counts = np.diff(np.append(starts, lines.size))
    return lines[starts], counts


def stream_lines(base: int, nbytes: int, line_bytes: int) -> np.ndarray:
    """Line ids touched by a contiguous ``[base, base+nbytes)`` stream."""
    if nbytes <= 0:
        return np.zeros(0, dtype=np.int64)
    first = base // line_bytes
    last = (base + nbytes - 1) // line_bytes
    return np.arange(first, last + 1, dtype=np.int64)
