"""Set-associative write-back cache model with true LRU replacement.

The model tracks tags only (data values live in the functional layer); it
exists to classify each access as a hit or miss at every level and to count
write-backs, which is all the timing and energy models need.

Accesses are processed at cache-line granularity.  Batch helpers run-length
compress repeated consecutive lines — a vector load that touches one line
eight times is one line access, mirroring how a real LSQ coalesces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.sim.config import CacheConfig


@dataclass
class CacheStats:
    """Hit/miss/write-back counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = self.writebacks = 0


class Cache:
    """One level of a write-back, write-allocate cache.

    Parameters
    ----------
    config:
        Geometry and latency of this level.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.line_bytes = config.line_bytes
        self._tags = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self._dirty = np.zeros((self.num_sets, self.ways), dtype=bool)
        self._stamp = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Invalidate all lines and zero the statistics."""
        self._tags.fill(-1)
        self._dirty.fill(False)
        self._stamp.fill(0)
        self._clock = 0
        self.stats.reset()

    def access_line(self, line: int, write: bool) -> Tuple[bool, Optional[int]]:
        """Access one cache line.

        Returns
        -------
        (hit, victim):
            ``hit`` tells whether the line was present.  On a miss the line
            is allocated; ``victim`` is the line id of an evicted *dirty*
            line that must be written back (None otherwise).
        """
        self._clock += 1
        self.stats.accesses += 1
        s = line % self.num_sets
        tags = self._tags[s]
        ways = np.flatnonzero(tags == line)
        if ways.size:
            w = int(ways[0])
            self.stats.hits += 1
            self._stamp[s, w] = self._clock
            if write:
                self._dirty[s, w] = True
            return True, None

        self.stats.misses += 1
        empty = np.flatnonzero(tags == -1)
        if empty.size:
            w = int(empty[0])
            victim = None
        else:
            w = int(np.argmin(self._stamp[s]))
            victim = int(tags[w]) if self._dirty[s, w] else None
            if victim is not None:
                self.stats.writebacks += 1
        self._tags[s, w] = line
        self._dirty[s, w] = bool(write)
        self._stamp[s, w] = self._clock
        return False, victim

    def probe(self, line: int) -> bool:
        """Check presence without touching LRU state or statistics."""
        s = line % self.num_sets
        return bool(np.any(self._tags[s] == line))

    def occupancy(self) -> float:
        """Fraction of lines currently valid."""
        return float((self._tags != -1).mean())


def compress_lines(addresses: np.ndarray, line_bytes: int) -> Tuple[np.ndarray, np.ndarray]:
    """Convert byte addresses to run-length-compressed line ids.

    Consecutive accesses to the same line collapse into one (they would be
    merged in the load-store queue).  Returns ``(lines, counts)`` where
    ``counts[i]`` is the number of raw accesses the run represents.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    lines = addresses // line_bytes
    boundary = np.empty(lines.size, dtype=bool)
    boundary[0] = True
    np.not_equal(lines[1:], lines[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    counts = np.diff(np.append(starts, lines.size))
    return lines[starts], counts


def stream_lines(base: int, nbytes: int, line_bytes: int) -> np.ndarray:
    """Line ids touched by a contiguous ``[base, base+nbytes)`` stream."""
    if nbytes <= 0:
        return np.zeros(0, dtype=np.int64)
    first = base // line_bytes
    last = (base + nbytes - 1) // line_bytes
    return np.arange(first, last + 1, dtype=np.int64)
