"""Machine configuration — the reproduction's Table I.

:class:`MachineConfig` captures the simulated single-core out-of-order
processor (pipeline widths, vector unit, cache hierarchy, DRAM) and
:func:`table1` renders the same parameter table the paper prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.sim import calibration as cal


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    size_kb: int
    ways: int
    latency: int
    line_bytes: int = cal.CACHE_LINE_BYTES

    def __post_init__(self):
        if self.size_kb <= 0 or self.ways <= 0 or self.latency <= 0:
            raise ConfigError(f"invalid cache config: {self}")
        size_bytes = self.size_kb * 1024
        if size_bytes % (self.ways * self.line_bytes):
            raise ConfigError(
                f"cache size {self.size_kb} KB not divisible into "
                f"{self.ways} ways of {self.line_bytes}-byte lines"
            )

    @property
    def num_sets(self) -> int:
        return self.size_kb * 1024 // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class MachineConfig:
    """Single-core OoO machine model parameters (paper Table I class)."""

    clock_ghz: float = cal.CLOCK_GHZ
    issue_width: int = cal.ISSUE_WIDTH
    rob_entries: int = cal.ROB_ENTRIES
    mshrs: int = cal.MSHRS

    vector_lanes: int = cal.VECTOR_LANES_F64
    vfu_fma_latency: int = cal.VFU_FMA_LATENCY
    gather_base_latency: int = cal.GATHER_BASE_LATENCY
    scatter_base_latency: int = cal.SCATTER_BASE_LATENCY

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(cal.L1_KB, cal.L1_WAYS, cal.L1_LATENCY)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(cal.L2_KB, cal.L2_WAYS, cal.L2_LATENCY)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(cal.L3_KB, cal.L3_WAYS, cal.L3_LATENCY)
    )
    dram_latency: int = cal.DRAM_LATENCY
    dram_bw_bytes_per_cycle: float = cal.DRAM_BW_BYTES_PER_CYCLE

    mlp_stream: float = cal.MLP_STREAM
    mlp_dependent: float = cal.MLP_DEPENDENT

    def __post_init__(self):
        if self.clock_ghz <= 0:
            raise ConfigError(f"clock must be positive, got {self.clock_ghz}")
        if self.issue_width <= 0 or self.rob_entries <= 0 or self.mshrs <= 0:
            raise ConfigError("pipeline widths must be positive")
        if self.vector_lanes <= 0:
            raise ConfigError("vector_lanes must be positive")
        if self.dram_bw_bytes_per_cycle <= 0:
            raise ConfigError("DRAM bandwidth must be positive")

    @property
    def vl(self) -> int:
        """Vector length in 64-bit elements (paper: AVX2 = 4 doubles)."""
        return self.vector_lanes

    @property
    def vl32(self) -> int:
        """Vector length in 32-bit elements (AVX2 = 8 ints/floats)."""
        return 2 * self.vector_lanes

    def with_lanes(self, lanes: int) -> "MachineConfig":
        """A copy with a different vector width (for sensitivity studies)."""
        return replace(self, vector_lanes=lanes)

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9)


DEFAULT_MACHINE = MachineConfig()


def table1(machine: MachineConfig = DEFAULT_MACHINE) -> str:
    """Render the simulation-parameter table (paper Table I substitute)."""
    rows = [
        ("Core", f"out-of-order, {machine.issue_width}-wide issue, "
                 f"{machine.rob_entries}-entry ROB, {machine.clock_ghz:.1f} GHz"),
        ("Vector unit", f"{machine.vector_lanes * 64}-bit (AVX2-class), "
                        f"{machine.vector_lanes} x f64 lanes, "
                        f"FMA latency {machine.vfu_fma_latency}"),
        ("Gather/scatter", f"{machine.gather_base_latency}/"
                           f"{machine.scatter_base_latency} cycles base latency"),
        ("L1D", f"{machine.l1.size_kb} KB, {machine.l1.ways}-way, "
                f"{machine.l1.latency} cycles"),
        ("L2", f"{machine.l2.size_kb} KB, {machine.l2.ways}-way, "
               f"{machine.l2.latency} cycles"),
        ("L3", f"{machine.l3.size_kb // 1024} MB, {machine.l3.ways}-way, "
               f"{machine.l3.latency} cycles"),
        ("DRAM", f"{machine.dram_latency} cycles, "
                 f"{machine.dram_bw_bytes_per_cycle * machine.clock_ghz:.1f} GB/s"),
        ("MSHRs", f"{machine.mshrs} outstanding misses"),
    ]
    width = max(len(k) for k, _ in rows)
    lines = ["Table I — simulated machine parameters", "-" * 60]
    lines += [f"{k.ljust(width)}  {v}" for k, v in rows]
    return "\n".join(lines)
