"""Columnar (struct-of-arrays) op streams and the vectorized pricing engine.

The scalar pricing path walks a recorded stream one :class:`~repro.sim.ops.Op`
object at a time.  This module re-expresses the same stream as per-field
NumPy columns — mirroring the ``.npz`` artifact layout — and re-prices whole
streams as array arithmetic:

* :func:`columnar_via_totals` prices every :class:`~repro.sim.ops.ViaOpRecord`
  of a stream in one vectorized pass (the port-dependent side of replay);
* :func:`price_columnar` is the cross-machine memory pass: allocation bases
  from a cumulative sum, per-op counters from masked reductions, cache-level
  latencies from an ``np.take`` over the machine's latency table, and hit /
  mispredict attribution from per-kind masks;
* :func:`check_columnar_invariants` re-expresses the PR-3
  :class:`~repro.sim.backends.InvariantBackend` conservation laws as
  whole-array assertions, including SSPM occupancy as a running prefix
  maximum;
* :class:`ColumnarBuilder` / :func:`price_flush` run the same kernels on
  the *record* path: a batched :class:`~repro.sim.core.Core` appends one
  row per narration call (no ``Op`` object on the hot path) and flushes
  batches through the pricing helpers against its live cache hierarchy —
  op streams are born columnar and :func:`concat_columnar` stitches the
  flushed batches back into one stream for the recorder.

Bit-identity contract
---------------------

Columnar replay is bit-identical to scalar replay because nothing about the
arithmetic is reordered where order could matter:

* integer counters commute exactly under any summation order;
* the three float counters that accumulate op by op
  (``sspm_busy_cycles``, ``branch_mispredicts``,
  ``dependency_stall_cycles``) are summed with ``np.cumsum``, whose running
  accumulation performs the same left-to-right float64 additions as the
  scalar loop;
* miss-latency sums stay exact under any order because cache and DRAM
  latencies are integers (``CacheConfig.latency`` / ``dram_latency``), so
  every per-line latency is an integer-valued float64.  When a machine
  carries a non-integral latency, :func:`repro.sim.backends.replay_recording`
  falls back to the scalar engine rather than risk reordered float error;
* the stateful cache walk itself reuses the scalar model's
  :class:`~repro.sim.cache.Cache` objects in recorded op order — only the
  *attribution* of its outcomes is vectorized.

Column layout (one row per op; roles depend on the ``kinds`` discriminator)
---------------------------------------------------------------------------

===============  =========  =====================  ==========  ==================  ==========
kind             ``count``  ``aux``                ``misc``    ``extra``/``fval``  pool window
===============  =========  =====================  ==========  ==================  ==========
alloc            num_elems  elem_bytes             —           —                   —
scalar_ops       count      —                      —           —                   —
vector_op        count      op-kind id             —           —                   —
branches         count      —                      —           fval=rate           —
dependency_stall —          —                      —           fval=cycles         —
load/store_stream count     start                  —           —                   —
gather/scatter   n_instr    —                      —           —                   indices
*_serial         n_instr    elements_per_instr     —           —                   —
load_windows     width      —                      —           —                   starts
scalar_load/store —         dependent flag         —           —                   indices
bulk_stream      passes     write flag             —           —                   —
record_via_op    count      sspm_elements          cam_search  extra=port_passes   —
                                                               fval=port_cycles
===============  =========  =====================  ==========  ==================  ==========

``array_id`` indexes the ``names`` table for ops naming a simulated array
(−1 otherwise); ``off``/``num`` reference a window of the shared ``pool``
of int64 indices.  ``port_passes`` uses −1 for "not recorded",
``port_cycles`` uses NaN.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple, cast

import numpy as np
import numpy.typing as npt

from repro.errors import InvariantError, RecordingError, SimulationError
from repro.sim import calibration as cal
from repro.sim.cache import Cache, compress_lines, stream_lines
from repro.sim.config import MachineConfig
from repro.sim.core import stream_uop_count
from repro.sim.dram import DRAMModel
from repro.sim.ops import (
    VECTOR_OP_KINDS,
    AllocOp,
    BranchesOp,
    BulkStreamOp,
    DependencyStallOp,
    GatherOp,
    GatherSerialOp,
    LoadStreamOp,
    LoadWindowsOp,
    Op,
    ScalarLoadOp,
    ScalarOpsOp,
    ScalarStoreOp,
    ScatterOp,
    ScatterSerialOp,
    StoreStreamOp,
    VectorOpOp,
    ViaOpRecord,
)
from repro.sim.stats import OpCounters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Array, Core
    from repro.via.config import ViaConfig

__all__ = [
    "COLUMNS",
    "KIND_IDS",
    "KIND_ORDER",
    "ColumnarBuilder",
    "ColumnarOps",
    "ColumnarPriced",
    "EngineFallbackWarning",
    "FlushBatch",
    "check_columnar_invariants",
    "columnar_via_totals",
    "concat_columnar",
    "engine_fallback_count",
    "machine_latency_table",
    "machine_latencies_integral",
    "note_engine_fallback",
    "price_columnar",
    "price_flush",
]

_LINE = cal.CACHE_LINE_BYTES
_ALLOC_BASE = 0x1000_0000

#: op-kind discriminator values, in schema order — stable across sessions
#: because the artifact format depends on it (``kinds`` stores these ids)
KIND_ORDER: Tuple[str, ...] = (
    "alloc",
    "scalar_ops",
    "vector_op",
    "branches",
    "dependency_stall",
    "load_stream",
    "store_stream",
    "gather",
    "scatter",
    "gather_serial",
    "scatter_serial",
    "load_windows",
    "scalar_load",
    "scalar_store",
    "bulk_stream",
    "record_via_op",
)

KIND_IDS: Dict[str, int] = {kind: i for i, kind in enumerate(KIND_ORDER)}

_ALLOC = KIND_IDS["alloc"]
_SCALAR_OPS = KIND_IDS["scalar_ops"]
_VECTOR_OP = KIND_IDS["vector_op"]
_BRANCHES = KIND_IDS["branches"]
_DEP_STALL = KIND_IDS["dependency_stall"]
_LOAD_STREAM = KIND_IDS["load_stream"]
_STORE_STREAM = KIND_IDS["store_stream"]
_GATHER = KIND_IDS["gather"]
_SCATTER = KIND_IDS["scatter"]
_GATHER_SERIAL = KIND_IDS["gather_serial"]
_SCATTER_SERIAL = KIND_IDS["scatter_serial"]
_LOAD_WINDOWS = KIND_IDS["load_windows"]
_SCALAR_LOAD = KIND_IDS["scalar_load"]
_SCALAR_STORE = KIND_IDS["scalar_store"]
_BULK_STREAM = KIND_IDS["bulk_stream"]
_VIA = KIND_IDS["record_via_op"]

#: kinds that name a simulated array (``array_id`` must be valid)
_ARRAY_KINDS = (
    _ALLOC,
    _LOAD_STREAM,
    _STORE_STREAM,
    _GATHER,
    _SCATTER,
    _LOAD_WINDOWS,
    _SCALAR_LOAD,
    _SCALAR_STORE,
    _BULK_STREAM,
)

#: kinds that reference a window of the index pool
_POOL_KINDS = (_GATHER, _SCATTER, _LOAD_WINDOWS, _SCALAR_LOAD, _SCALAR_STORE)

#: serialized column names (the ``pool`` array and ``names`` table ride
#: alongside; see :func:`repro.sim.ops.save_recordings`)
COLUMNS: Tuple[str, ...] = (
    "kinds",
    "count",
    "aux",
    "misc",
    "extra",
    "fval",
    "array_id",
    "off",
    "num",
)

_IntArray = npt.NDArray[np.int64]
_FloatArray = npt.NDArray[np.float64]


def _as_column(
    name: str, values: object, dtype: "np.dtype[np.generic]"
) -> npt.NDArray[np.generic]:
    try:
        arr = np.asarray(values, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise RecordingError(f"columnar field {name!r} is malformed: {exc}") from exc
    if arr.ndim != 1:
        raise RecordingError(
            f"columnar field {name!r} must be one-dimensional, got shape {arr.shape}"
        )
    return arr


@dataclass
class ColumnarOps:
    """A recorded op stream as struct-of-arrays columns.

    Construction validates the structural contract — equal column lengths,
    known kind ids, in-bounds name-table and index-pool references — and
    raises :class:`~repro.errors.RecordingError` on any violation, so a
    truncated or tampered column can never silently broadcast into a
    wrong-but-plausible pricing result.
    """

    kinds: npt.NDArray[np.uint8]
    count: _IntArray
    aux: _IntArray
    misc: _IntArray
    extra: _IntArray
    fval: _FloatArray
    array_id: _IntArray
    off: _IntArray
    num: _IntArray
    pool: _IntArray
    names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.kinds = cast(
            npt.NDArray[np.uint8], _as_column("kinds", self.kinds, np.dtype(np.uint8))
        )
        for name in ("count", "aux", "misc", "extra", "array_id", "off", "num"):
            setattr(
                self,
                name,
                _as_column(name, getattr(self, name), np.dtype(np.int64)),
            )
        self.fval = cast(
            _FloatArray, _as_column("fval", self.fval, np.dtype(np.float64))
        )
        self.pool = cast(
            _IntArray, _as_column("pool", self.pool, np.dtype(np.int64))
        )
        self.names = tuple(str(n) for n in self.names)
        n = int(self.kinds.size)
        for name in COLUMNS[1:]:
            col = getattr(self, name)
            if int(col.size) != n:
                raise RecordingError(
                    f"columnar stream is ragged: column {name!r} has "
                    f"{int(col.size)} rows, kinds has {n}"
                )
        if n and int(self.kinds.max()) >= len(KIND_ORDER):
            raise RecordingError(
                f"columnar stream carries unknown op-kind id "
                f"{int(self.kinds.max())} (schema knows {len(KIND_ORDER)})"
            )
        needs_array = np.isin(self.kinds, np.asarray(_ARRAY_KINDS, dtype=np.uint8))
        if needs_array.any():
            ids = self.array_id[needs_array]
            if int(ids.min()) < 0 or int(ids.max()) >= len(self.names):
                raise RecordingError(
                    "columnar stream references an array name outside its "
                    f"name table (ids in [{int(ids.min())}, {int(ids.max())}], "
                    f"{len(self.names)} names)"
                )
        pooled = np.isin(self.kinds, np.asarray(_POOL_KINDS, dtype=np.uint8))
        if pooled.any():
            off = self.off[pooled]
            num = self.num[pooled]
            if int(off.min()) < 0 or int(num.min()) < 0:
                raise RecordingError(
                    "columnar stream carries a negative index-pool reference"
                )
            end = off + num
            if int(end.max(initial=0)) > int(self.pool.size):
                raise RecordingError(
                    f"columnar stream references pool slice ending at "
                    f"{int(end.max(initial=0))} but the pool holds only "
                    f"{int(self.pool.size)} indices (truncated artifact?)"
                )

    def __len__(self) -> int:
        return int(self.kinds.size)

    # ------------------------------------------------------------------
    @classmethod
    def from_ops(cls, ops: List[Op]) -> "ColumnarOps":
        """Convert a list of op records into columns (one pass)."""
        n = len(ops)
        kinds = np.zeros(n, dtype=np.uint8)
        count = np.zeros(n, dtype=np.int64)
        aux = np.zeros(n, dtype=np.int64)
        misc = np.zeros(n, dtype=np.int64)
        extra = np.full(n, -1, dtype=np.int64)
        fval = np.full(n, np.nan, dtype=np.float64)
        array_id = np.full(n, -1, dtype=np.int64)
        off = np.zeros(n, dtype=np.int64)
        num = np.zeros(n, dtype=np.int64)
        name_ids: Dict[str, int] = {}
        chunks: List[_IntArray] = []
        pool_size = 0

        def intern(name: str) -> int:
            return name_ids.setdefault(name, len(name_ids))

        def pooled(i: int, arr: npt.NDArray[np.int64]) -> None:
            nonlocal pool_size
            data = np.ascontiguousarray(arr, dtype=np.int64)
            off[i] = pool_size
            num[i] = int(data.size)
            chunks.append(data)
            pool_size += int(data.size)

        for i, op in enumerate(ops):
            kinds[i] = KIND_IDS[op.kind]
            if isinstance(op, AllocOp):
                count[i] = op.num_elems
                aux[i] = op.elem_bytes
                array_id[i] = intern(op.name)
            elif isinstance(op, ScalarOpsOp):
                count[i] = op.count
            elif isinstance(op, VectorOpOp):
                count[i] = op.count
                aux[i] = VECTOR_OP_KINDS.index(op.op_kind)
            elif isinstance(op, BranchesOp):
                count[i] = op.count
                fval[i] = op.mispredict_rate
            elif isinstance(op, DependencyStallOp):
                fval[i] = op.cycles
            elif isinstance(op, (LoadStreamOp, StoreStreamOp)):
                count[i] = op.count
                aux[i] = op.start
                array_id[i] = intern(op.array)
            elif isinstance(op, (GatherOp, ScatterOp)):
                count[i] = op.n_instr
                array_id[i] = intern(op.array)
                pooled(i, op.indices)
            elif isinstance(op, (GatherSerialOp, ScatterSerialOp)):
                count[i] = op.n_instr
                aux[i] = op.elements_per_instr
            elif isinstance(op, LoadWindowsOp):
                count[i] = op.width
                array_id[i] = intern(op.array)
                pooled(i, op.starts)
            elif isinstance(op, (ScalarLoadOp, ScalarStoreOp)):
                aux[i] = int(op.dependent)
                array_id[i] = intern(op.array)
                pooled(i, op.indices)
            elif isinstance(op, BulkStreamOp):
                count[i] = op.passes
                aux[i] = int(op.write)
                array_id[i] = intern(op.array)
            elif isinstance(op, ViaOpRecord):
                count[i] = op.count
                aux[i] = op.sspm_elements
                misc[i] = op.cam_searches
                extra[i] = -1 if op.port_passes is None else op.port_passes
                fval[i] = np.nan if op.port_cycles is None else op.port_cycles
            else:  # pragma: no cover - new op kinds must extend this table
                raise RecordingError(
                    f"no columnar encoding for op kind {op.kind!r}"
                )
        pool = (
            np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
        )
        return cls(
            kinds=kinds,
            count=count,
            aux=aux,
            misc=misc,
            extra=extra,
            fval=fval,
            array_id=array_id,
            off=off,
            num=num,
            pool=pool,
            names=tuple(name_ids),
        )

    def to_ops(self) -> List[Op]:
        """Materialize the columns back into op records (scalar engine)."""
        ops: List[Op] = []
        names = self.names
        pool = self.pool
        for i in range(len(self)):
            k = int(self.kinds[i])
            if k == _ALLOC:
                ops.append(
                    AllocOp(
                        names[int(self.array_id[i])],
                        int(self.count[i]),
                        int(self.aux[i]),
                    )
                )
            elif k == _SCALAR_OPS:
                ops.append(ScalarOpsOp(int(self.count[i])))
            elif k == _VECTOR_OP:
                ops.append(
                    VectorOpOp(
                        VECTOR_OP_KINDS[int(self.aux[i])], int(self.count[i])
                    )
                )
            elif k == _BRANCHES:
                ops.append(
                    BranchesOp(int(self.count[i]), float(self.fval[i]))
                )
            elif k == _DEP_STALL:
                ops.append(DependencyStallOp(float(self.fval[i])))
            elif k in (_LOAD_STREAM, _STORE_STREAM):
                cls = LoadStreamOp if k == _LOAD_STREAM else StoreStreamOp
                ops.append(
                    cls(
                        names[int(self.array_id[i])],
                        int(self.aux[i]),
                        int(self.count[i]),
                    )
                )
            elif k in (_GATHER, _SCATTER):
                icls = GatherOp if k == _GATHER else ScatterOp
                window = pool[int(self.off[i]) : int(self.off[i] + self.num[i])]
                ops.append(
                    icls(
                        names[int(self.array_id[i])],
                        window,
                        int(self.count[i]),
                    )
                )
            elif k in (_GATHER_SERIAL, _SCATTER_SERIAL):
                scls = GatherSerialOp if k == _GATHER_SERIAL else ScatterSerialOp
                ops.append(scls(int(self.count[i]), int(self.aux[i])))
            elif k == _LOAD_WINDOWS:
                window = pool[int(self.off[i]) : int(self.off[i] + self.num[i])]
                ops.append(
                    LoadWindowsOp(
                        names[int(self.array_id[i])],
                        window,
                        int(self.count[i]),
                    )
                )
            elif k in (_SCALAR_LOAD, _SCALAR_STORE):
                mcls = ScalarLoadOp if k == _SCALAR_LOAD else ScalarStoreOp
                window = pool[int(self.off[i]) : int(self.off[i] + self.num[i])]
                ops.append(
                    mcls(
                        names[int(self.array_id[i])],
                        window,
                        bool(self.aux[i]),
                    )
                )
            elif k == _BULK_STREAM:
                ops.append(
                    BulkStreamOp(
                        names[int(self.array_id[i])],
                        int(self.count[i]),
                        bool(self.aux[i]),
                    )
                )
            else:
                pp = int(self.extra[i])
                pc = float(self.fval[i])
                ops.append(
                    ViaOpRecord(
                        sspm_elements=int(self.aux[i]),
                        cam_searches=int(self.misc[i]),
                        count=int(self.count[i]),
                        port_passes=None if pp < 0 else pp,
                        port_cycles=None if np.isnan(pc) else pc,
                    )
                )
        return ops


# ---------------------------------------------------------------------------
# VIA-op pricing (the port-dependent side of every replay)
# ---------------------------------------------------------------------------
def _port_cycles_vec(
    sspm_elements: _IntArray, port_passes: _IntArray, ports: int
) -> _IntArray:
    """Vectorized :meth:`repro.via.fivu.FivuTiming.port_cycles`."""
    per_pass = np.maximum(
        1, sspm_elements // np.maximum(port_passes, 1)
    )
    cycles = port_passes * -(-per_pass // ports)
    return cast(_IntArray, np.where(sspm_elements == 0, 0, cycles))


def columnar_via_totals(
    cols: ColumnarOps, via_config: Optional["ViaConfig"]
) -> OpCounters:
    """Vectorized twin of :func:`repro.sim.ops.via_totals`.

    The integer counters are plain masked sums (exact under any order);
    ``sspm_busy_cycles`` is the last element of an ``np.cumsum`` over the
    per-op busy terms, which performs the identical left-to-right float64
    additions as the scalar accumulation loop — bit-identical, not merely
    close.
    """
    totals = OpCounters()
    mask = cols.kinds == _VIA
    if not mask.any():
        return totals
    cnt = cols.count[mask]
    se = cols.aux[mask]
    cs = cols.misc[mask]
    pp = cols.extra[mask]
    pc = cols.fval[mask]
    derive = np.isnan(pc)
    if derive.any():
        if via_config is None:
            raise SimulationError(
                "cannot price a VIA op without a VIA configuration"
            )
        derived = _port_cycles_vec(se, pp, via_config.ports)
        pc = np.where(derive, derived.astype(np.float64), pc)
    terms = (pc + float(cal.COMMIT_ISSUE_OVERHEAD)) * cnt
    totals.via_instructions = int(cnt.sum())
    totals.vector_uops = int(cnt.sum())
    totals.sspm_accesses = int((se * cnt).sum())
    totals.cam_searches = int((cs * cnt).sum())
    totals.sspm_busy_cycles = float(np.cumsum(terms)[-1])
    return totals


# ---------------------------------------------------------------------------
# Cross-machine memory pricing
# ---------------------------------------------------------------------------
def machine_latency_table(machine: MachineConfig) -> _FloatArray:
    """Cumulative hit latency per service level (L1, L2, L3, DRAM).

    Indexed by the level an access was served at; ``np.take`` over this
    table prices a whole trace of classified accesses at once.
    """
    m = machine
    return np.asarray(
        [
            float(m.l1.latency),
            float(m.l1.latency + m.l2.latency),
            float(m.l1.latency + m.l2.latency + m.l3.latency),
            float(m.l1.latency + m.l2.latency + m.l3.latency + m.dram_latency),
        ],
        dtype=np.float64,
    )


def machine_latencies_integral(machine: MachineConfig) -> bool:
    """Whether every memory latency is a whole number of cycles.

    The columnar engine's miss-latency sums are order-free only because
    per-line latencies are integer-valued; a machine configured with a
    fractional latency must be priced by the scalar engine instead (see
    the module docstring's bit-identity contract).
    """
    values = (
        machine.l1.latency,
        machine.l2.latency,
        machine.l3.latency,
        machine.dram_latency,
    )
    return all(float(v) == float(int(v)) for v in values)


@dataclass
class ColumnarPriced:
    """Output of :func:`price_columnar`: the machine-dependent pricing state.

    The exact shape :func:`repro.sim.core.build_result` consumes — the VIA
    side (:func:`columnar_via_totals`) is added on top by the replay
    driver, mirroring the scalar memory-pass split.
    """

    counters: OpCounters = field(default_factory=OpCounters)
    dram_occupancy_cycles: float = 0.0
    dram_traffic_bytes: int = 0
    dram_lines: int = 0
    cache_stats: Dict[str, Dict[str, object]] = field(default_factory=dict)


def _alloc_tables(
    cols: ColumnarOps,
) -> Tuple[_IntArray, _IntArray, _IntArray, _IntArray]:
    """Vectorized bump allocation: per-alloc-row base/elem_bytes/nbytes.

    Returns ``(alloc_rows, bases, elem_bytes, nbytes)`` in stream order —
    the cumulative sum over line-aligned sizes reproduces the scalar
    :class:`~repro.sim.core.AddressSpace` bases exactly.
    """
    alloc_rows = np.flatnonzero(cols.kinds == _ALLOC)
    num_elems = cols.count[alloc_rows]
    elem_bytes = cols.aux[alloc_rows]
    if alloc_rows.size and int(elem_bytes.min()) <= 0:
        raise SimulationError("alloc: elem_bytes must be > 0")
    nbytes = np.maximum(num_elems, 1) * elem_bytes
    aligned = (nbytes + _LINE - 1) // _LINE * _LINE
    bases = _ALLOC_BASE + np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(aligned)[:-1]]
    )
    return alloc_rows, bases, elem_bytes, nbytes


def _governing_alloc(
    cols: ColumnarOps, alloc_rows: _IntArray, mem_rows: _IntArray
) -> _IntArray:
    """For each memory row, the index (into ``alloc_rows``) of the
    allocation in effect at that point of the stream (last one wins,
    mirroring the scalar address-space dict)."""
    out = np.full(mem_rows.size, -1, dtype=np.int64)
    if mem_rows.size == 0:
        return out
    mem_ids = cols.array_id[mem_rows]
    alloc_ids = cols.array_id[alloc_rows]
    for aid in np.unique(mem_ids):
        a_pos = np.flatnonzero(alloc_ids == aid)
        m_pos = np.flatnonzero(mem_ids == aid)
        if a_pos.size == 0:
            raise SimulationError(
                f"columnar stream accesses array "
                f"{cols.names[int(aid)]!r} before allocating it"
            )
        slot = np.searchsorted(alloc_rows[a_pos], mem_rows[m_pos], side="left") - 1
        if int(slot.min()) < 0:
            raise SimulationError(
                f"columnar stream accesses array "
                f"{cols.names[int(aid)]!r} before allocating it"
            )
        out[m_pos] = a_pos[slot]
    return out


#: kinds whose rows touch the memory hierarchy (the sequential trace)
_MEM_KINDS = (
    _LOAD_STREAM,
    _STORE_STREAM,
    _GATHER,
    _SCATTER,
    _LOAD_WINDOWS,
    _SCALAR_LOAD,
    _SCALAR_STORE,
    _BULK_STREAM,
)


def _seeded_cumsum(start: float, terms: _FloatArray) -> float:
    """Left-to-right float64 accumulation of ``terms`` on top of ``start``.

    ``np.cumsum`` over ``[start, t0, t1, ...]`` performs the identical
    addition sequence as ``for t in terms: start += t``, so order-sensitive
    float counters stay bit-identical to the scalar per-op walk even when
    a stream is priced in several flush batches.
    """
    seeded = np.concatenate(
        (np.asarray([start], dtype=np.float64), np.asarray(terms, dtype=np.float64))
    )
    return float(np.cumsum(seeded)[-1])


def _accumulate_compute(cols: ColumnarOps, counters: OpCounters) -> None:
    """Fold a stream's compute-side counters into ``counters``.

    Masked integer sums (order-free and exact) plus order-preserving
    float accumulation for branch mispredicts and dependency stalls.
    Adds on top of whatever ``counters`` already holds, so a stream
    priced flush-by-flush lands on the same totals as one whole pass.
    """
    kinds = cols.kinds

    def ksum(kind: int, col: _IntArray) -> int:
        return int(col[kinds == kind].sum())

    counters.scalar_uops += (
        ksum(_SCALAR_OPS, cols.count)
        + ksum(_BRANCHES, cols.count)
        + ksum(_SCALAR_LOAD, cols.num)
        + ksum(_SCALAR_STORE, cols.num)
    )
    counters.branches += ksum(_BRANCHES, cols.count)
    vec_mask = kinds == _VECTOR_OP
    counters.vector_uops += (
        int(cols.count[vec_mask].sum())
        + ksum(_GATHER, cols.count)
        + ksum(_SCATTER, cols.count)
        + ksum(_GATHER_SERIAL, cols.count)
        + ksum(_SCATTER_SERIAL, cols.count)
        + ksum(_LOAD_WINDOWS, cols.num)
    )
    for name, op_kind in (
        ("vector_fma", "fma"),
        ("vector_reduce", "reduce"),
        ("vector_permute", "permute"),
        ("vector_conflict", "conflict"),
    ):
        sub = vec_mask & (cols.aux == VECTOR_OP_KINDS.index(op_kind))
        setattr(
            counters, name, getattr(counters, name) + int(cols.count[sub].sum())
        )
    counters.gathers += ksum(_GATHER, cols.count) + ksum(_GATHER_SERIAL, cols.count)
    counters.scatters += ksum(_SCATTER, cols.count) + ksum(
        _SCATTER_SERIAL, cols.count
    )
    gs_mask = kinds == _GATHER_SERIAL
    ss_mask = kinds == _SCATTER_SERIAL
    counters.gather_elements += ksum(_GATHER, cols.num) + int(
        (cols.count[gs_mask] * cols.aux[gs_mask]).sum()
    )
    counters.scatter_elements += ksum(_SCATTER, cols.num) + int(
        (cols.count[ss_mask] * cols.aux[ss_mask]).sum()
    )
    br_mask = kinds == _BRANCHES
    if br_mask.any():
        terms = cols.count[br_mask] * cols.fval[br_mask]
        counters.branch_mispredicts = _seeded_cumsum(
            counters.branch_mispredicts, terms
        )
    stall_mask = kinds == _DEP_STALL
    if stall_mask.any():
        counters.dependency_stall_cycles = _seeded_cumsum(
            counters.dependency_stall_cycles, cols.fval[stall_mask]
        )


def _price_memory_rows(
    cols: ColumnarOps,
    mem_rows: _IntArray,
    row_base: _IntArray,
    row_eb: _IntArray,
    row_nbytes: _IntArray,
    machine: MachineConfig,
    l1: Cache,
    l2: Cache,
    l3: Cache,
    dram: DRAMModel,
    counters: OpCounters,
) -> None:
    """Walk a stream's memory rows through live caches, attribute the costs.

    The only sequential work in the engine — LRU state makes the per-line
    hit/miss classification order-dependent, so the walk drives the passed
    :class:`~repro.sim.cache.Cache` / :class:`~repro.sim.dram.DRAMModel`
    objects in recorded op order.  Everything around it is whole-array:
    latency by ``np.take`` over the machine's table, per-op latency sums by
    ``np.bincount`` segments, hit counters by level masks.

    ``row_base`` / ``row_eb`` / ``row_nbytes`` carry the governing
    allocation per memory row (cross-machine replay derives them from the
    stream's alloc rows; the record path captures them live from the
    core's address space).  Counter updates add on top of existing values
    so flush batches compose against a long-lived hierarchy.
    """
    kinds = cols.kinds

    def walk_line(line: int, write: bool) -> int:
        """One demand access; returns the service level (0=L1 .. 3=DRAM).

        Replicates :meth:`repro.sim.hierarchy.MemoryHierarchy.access_line`
        call for call — including mid-miss dirty-victim write-backs, which
        perturb lower-level LRU state and therefore must stay in sequence.
        """
        hit, victim = l1.access_line(line, write)
        if victim is not None:
            _h, v2 = l2.access_line(victim, True)
            if v2 is not None:
                _h, v3 = l3.access_line(v2, True)
                if v3 is not None:
                    dram.write_line()
        if hit:
            return 0
        hit, victim = l2.access_line(line, False)
        if victim is not None:
            _h, v3 = l3.access_line(victim, True)
            if v3 is not None:
                dram.write_line()
        if hit:
            return 1
        hit, victim = l3.access_line(line, False)
        if victim is not None:
            dram.write_line()
        if hit:
            return 2
        dram.read_line()
        return 3

    line_bytes = machine.l1.line_bytes
    levels_per_op: List[npt.NDArray[np.int8]] = []
    nlines = np.zeros(mem_rows.size, dtype=np.int64)
    dependent = np.zeros(mem_rows.size, dtype=bool)
    stream_extra_latency = np.zeros(mem_rows.size, dtype=np.float64)
    stream_uops_total = 0
    bulk_extra_lines = {"l1": 0, "l2": 0, "l3": 0, "dram": 0}
    l1_cap = machine.l1.size_kb * 1024
    l2_cap = machine.l2.size_kb * 1024
    l3_cap = machine.l3.size_kb * 1024

    for j, row in enumerate(mem_rows):
        k = int(kinds[row])
        base = int(row_base[j])
        eb = int(row_eb[j])
        write = False
        if k in (_LOAD_STREAM, _STORE_STREAM):
            start = int(cols.aux[row])
            count = int(cols.count[row])
            lines = stream_lines(base + start * eb, count * eb, line_bytes)
            write = k == _STORE_STREAM
            stream_uops_total += stream_uop_count(machine, count, eb)
        elif k == _BULK_STREAM:
            nb = int(row_nbytes[j])
            num_elems = nb // eb
            write = bool(cols.aux[row])
            lines = stream_lines(base, nb, line_bytes)
            stream_uops_total += stream_uop_count(machine, num_elems, eb)
            extra = int(cols.count[row]) - 1
            if extra > 0:
                blines = -(-nb // _LINE)
                if nb <= l1_cap:
                    level_latency, level = 0.0, "l1"
                elif nb <= l2_cap:
                    level_latency, level = float(machine.l2.latency), "l2"
                elif nb <= l3_cap:
                    level_latency, level = (
                        float(machine.l2.latency + machine.l3.latency),
                        "l3",
                    )
                else:
                    level_latency, level = (
                        float(
                            machine.l2.latency
                            + machine.l3.latency
                            + machine.dram_latency
                        ),
                        "dram",
                    )
                bulk_extra_lines[level] += extra * blines
                stream_extra_latency[j] = extra * blines * level_latency
                stream_uops_total += stream_uop_count(
                    machine, num_elems * extra, eb
                )
        else:
            window = cols.pool[int(cols.off[row]) : int(cols.off[row] + cols.num[row])]
            if k == _LOAD_WINDOWS:
                width = int(cols.count[row])
                offsets = np.arange(width, dtype=np.int64)
                addrs = (window[:, None] + offsets[None, :]).ravel() * eb + base
            else:
                addrs = base + window * eb
            lines, _counts = compress_lines(addrs, line_bytes)
            write = k in (_SCATTER, _SCALAR_STORE)
            dependent[j] = k in (_GATHER, _SCATTER, _LOAD_WINDOWS) or (
                k in (_SCALAR_LOAD, _SCALAR_STORE) and bool(cols.aux[row])
            )
        lv = np.fromiter(
            (walk_line(line, write) for line in lines.tolist()),
            dtype=np.int8,
            count=lines.size,
        )
        levels_per_op.append(lv)
        nlines[j] = lines.size

    levels = (
        np.concatenate(levels_per_op)
        if levels_per_op
        else np.zeros(0, dtype=np.int8)
    )
    counters.vector_uops += stream_uops_total

    # vectorized attribution: latency-table lookup + per-op segments
    table = machine_latency_table(machine)
    lat = np.take(table, levels)
    seg = np.repeat(np.arange(mem_rows.size, dtype=np.int64), nlines)
    latsum = np.bincount(seg, weights=lat, minlength=mem_rows.size)
    miss = np.maximum(latsum - nlines * float(machine.l1.latency), 0.0)
    stream_terms = np.where(dependent, 0.0, miss) + stream_extra_latency
    dep_terms = np.where(dependent, miss, 0.0)
    if mem_rows.size:
        counters.stream_miss_latency = _seeded_cumsum(
            counters.stream_miss_latency, stream_terms
        )
        counters.dependent_miss_latency = _seeded_cumsum(
            counters.dependent_miss_latency, dep_terms
        )
    counters.mem_line_accesses += int(levels.size) + sum(bulk_extra_lines.values())
    counters.l1_hits += int((levels == 0).sum()) + bulk_extra_lines["l1"]
    counters.l2_hits += int((levels == 1).sum()) + bulk_extra_lines["l2"]
    counters.l3_hits += int((levels == 2).sum()) + bulk_extra_lines["l3"]
    counters.dram_fills += int((levels == 3).sum()) + bulk_extra_lines["dram"]
    if bulk_extra_lines["dram"]:
        dram.read_lines(bulk_extra_lines["dram"])


def _cache_stats(
    l1: Cache, l2: Cache, l3: Cache, dram: DRAMModel
) -> Dict[str, Dict[str, object]]:
    """Per-level statistics in the shape ``build_result`` consumes."""
    cache_stats: Dict[str, Dict[str, object]] = {}
    for name, cache in (("l1", l1), ("l2", l2), ("l3", l3)):
        s = cache.stats
        cache_stats[name] = {
            "accesses": s.accesses,
            "hits": s.hits,
            "misses": s.misses,
            "writebacks": s.writebacks,
            "hit_rate": s.hit_rate,
        }
    cache_stats["dram"] = {
        "reads": dram.stats.reads,
        "writes": dram.stats.writes,
        "traffic_bytes": dram.traffic_bytes,
    }
    return cache_stats


def price_columnar(
    cols: ColumnarOps, machine: MachineConfig, *, validate: bool = False
) -> ColumnarPriced:
    """Price a stream's non-VIA side on a fresh machine (cross-machine replay).

    The only sequential work is the cache walk itself — LRU state makes the
    per-line hit/miss classification order-dependent, so the walk drives
    the scalar model's own :class:`~repro.sim.cache.Cache` objects in
    recorded op order (identical call sequence, identical state).  Every
    attribution step around it is whole-array: allocation bases by
    cumulative sum, per-access latency by ``np.take`` over the machine's
    latency table, per-op latency sums by ``np.bincount`` segments, hit
    counters by level masks, and the order-sensitive float counters by
    ``np.cumsum`` in op order.

    With ``validate=True`` the stream and the finished counters are run
    through :func:`check_columnar_invariants` (the whole-array twin of the
    per-op :class:`~repro.sim.backends.InvariantBackend`).
    """
    if not machine_latencies_integral(machine):
        raise SimulationError(
            "columnar pricing requires integer cache/DRAM latencies "
            "(use the scalar engine for fractional-latency machines)"
        )
    counters = OpCounters()
    _accumulate_compute(cols, counters)

    # ---- memory trace: sequential cache walk, vectorized attribution ----
    alloc_rows, bases, a_eb, a_nbytes = _alloc_tables(cols)
    mem_rows = np.flatnonzero(
        np.isin(cols.kinds, np.asarray(_MEM_KINDS, dtype=np.uint8))
    )
    governing = _governing_alloc(cols, alloc_rows, mem_rows)
    l1 = Cache(machine.l1)
    l2 = Cache(machine.l2)
    l3 = Cache(machine.l3)
    dram = DRAMModel(
        machine.dram_latency,
        machine.dram_bw_bytes_per_cycle,
        machine.l1.line_bytes,
    )

    _price_memory_rows(
        cols,
        mem_rows,
        bases[governing],
        a_eb[governing],
        a_nbytes[governing],
        machine,
        l1,
        l2,
        l3,
        dram,
        counters,
    )
    priced = ColumnarPriced(
        counters=counters,
        dram_occupancy_cycles=dram.occupancy_cycles(),
        dram_traffic_bytes=dram.traffic_bytes,
        dram_lines=dram.stats.lines,
        cache_stats=_cache_stats(l1, l2, l3, dram),
    )
    if validate:
        check_columnar_invariants(cols, counters=counters)
    return priced


# ---------------------------------------------------------------------------
# Batched narration: the record-path builder and flush pricing
# ---------------------------------------------------------------------------
@dataclass
class FlushBatch:
    """One detached builder batch: columns plus live allocation context.

    ``base`` / ``elem_bytes`` / ``nbytes`` are row-aligned with ``cols``
    and carry the governing allocation captured when each row was
    appended — the record-path equivalent of the replay engine's
    :func:`_alloc_tables` + :func:`_governing_alloc` derivation (which
    cannot run per batch, because the governing alloc row may live in an
    earlier flush).
    """

    cols: ColumnarOps
    base: _IntArray
    elem_bytes: _IntArray
    nbytes: _IntArray


#: vector-op kind -> aux code, precomputed for the per-op append path
_VEC_KIND_CODE: Dict[str, int] = {k: i for i, k in enumerate(VECTOR_OP_KINDS)}

#: builder column storage and the default each slot is re-armed with
_BUILDER_FILLS: Tuple[Tuple[str, float], ...] = (
    ("_kinds", 0),
    ("_count", 0),
    ("_aux", 0),
    ("_misc", 0),
    ("_extra", -1),
    ("_fval", np.nan),
    ("_array_id", -1),
    ("_off", 0),
    ("_num", 0),
    ("_base", 0),
    ("_eb", 0),
    ("_nb", 0),
)


class ColumnarBuilder:
    """Append-only struct-of-arrays narration buffer (the record path).

    A preallocated, geometrically-grown row set mirroring the
    :class:`ColumnarOps` column layout, plus per-row side arrays capturing
    the governing allocation (base / elem_bytes / nbytes) live from the
    core's address space, so :func:`price_flush` can price memory rows
    without re-deriving allocation tables.  Append methods validate
    exactly like the corresponding :class:`~repro.sim.ops.Op`
    constructors — verbatim messages — so batched narration faults on the
    same bad operands the scalar path would, just without ever building
    the object.  The name-intern table persists across :meth:`take` calls;
    batch pool offsets restart at zero each flush and
    :func:`concat_columnar` re-bases them when stitching.
    """

    #: rows buffered since the last :meth:`take` (plain attribute — it is
    #: read once per narrated op by the core's flush check)
    rows: int

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError(
                f"builder capacity must be positive, got {capacity}"
            )
        self._cap = capacity
        self.rows = 0
        self._kinds = np.zeros(capacity, dtype=np.uint8)
        self._count = np.zeros(capacity, dtype=np.int64)
        self._aux = np.zeros(capacity, dtype=np.int64)
        self._misc = np.zeros(capacity, dtype=np.int64)
        self._extra = np.full(capacity, -1, dtype=np.int64)
        self._fval = np.full(capacity, np.nan, dtype=np.float64)
        self._array_id = np.full(capacity, -1, dtype=np.int64)
        self._off = np.zeros(capacity, dtype=np.int64)
        self._num = np.zeros(capacity, dtype=np.int64)
        self._base = np.zeros(capacity, dtype=np.int64)
        self._eb = np.zeros(capacity, dtype=np.int64)
        self._nb = np.zeros(capacity, dtype=np.int64)
        self._pool_chunks: List[_IntArray] = []
        self._pool_n = 0
        self._names: Dict[str, int] = {}

    def _grow(self) -> None:
        cap = self._cap * 2
        for name, fill in _BUILDER_FILLS:
            old = getattr(self, name)
            grown = np.full(cap, fill, dtype=old.dtype)
            grown[: self._cap] = old
            setattr(self, name, grown)
        self._cap = cap

    def _row(self, kind: int) -> int:
        i = self.rows
        if i == self._cap:
            self._grow()
        self._kinds[i] = kind
        self.rows = i + 1
        return i

    def _set_array(self, i: int, arr: "Array") -> None:
        self._array_id[i] = self._names.setdefault(arr.name, len(self._names))
        self._base[i] = arr.base
        self._eb[i] = arr.elem_bytes
        self._nb[i] = arr.nbytes

    def _pooled(self, i: int, data: _IntArray) -> None:
        window = np.ascontiguousarray(data, dtype=np.int64)
        self._off[i] = self._pool_n
        self._num[i] = int(window.size)
        self._pool_chunks.append(window)
        self._pool_n += int(window.size)

    # -- one append method per op kind (validation mirrors the Op ctor;
    #    checks are inlined with verbatim messages — this path runs once
    #    per narrated op, so no kwargs-dict guard helper) --
    def alloc(self, arr: "Array", num_elems: int, elem_bytes: int) -> None:
        if num_elems < 0:
            raise SimulationError(
                f"alloc: num_elems must be >= 0, got {num_elems!r}"
            )
        if elem_bytes <= 0:
            raise SimulationError(
                f"alloc: elem_bytes must be > 0, got {elem_bytes!r}"
            )
        i = self._row(_ALLOC)
        self._count[i] = num_elems
        self._aux[i] = elem_bytes
        self._set_array(i, arr)

    def scalar_ops(self, count: int) -> None:
        if count < 0:
            raise SimulationError(
                f"scalar_ops: count must be >= 0, got {count!r}"
            )
        i = self._row(_SCALAR_OPS)
        self._count[i] = count

    def vector_op(self, op_kind: str, count: int) -> None:
        code = _VEC_KIND_CODE.get(op_kind)
        if code is None:
            raise SimulationError(f"unknown vector op kind {op_kind!r}")
        if count < 0:
            raise SimulationError(
                f"vector_op: count must be >= 0, got {count!r}"
            )
        i = self._row(_VECTOR_OP)
        self._count[i] = count
        self._aux[i] = code

    def branches(self, count: int, mispredict_rate: float) -> None:
        if not (0.0 <= mispredict_rate <= 1.0):
            raise SimulationError(
                f"mispredict_rate must be in [0, 1], got {mispredict_rate}"
            )
        if count < 0:
            raise SimulationError(
                f"branches: count must be >= 0, got {count!r}"
            )
        i = self._row(_BRANCHES)
        self._count[i] = count
        self._fval[i] = mispredict_rate

    def dependency_stall(self, cycles: float) -> None:
        if cycles < 0:
            raise SimulationError(
                f"stall cycles must be >= 0, got {cycles}"
            )
        i = self._row(_DEP_STALL)
        self._fval[i] = cycles

    def load_stream(self, arr: "Array", start: int, count: int) -> None:
        if start < 0:
            raise SimulationError(
                f"load_stream: start must be >= 0, got {start!r}"
            )
        if count < 0:
            raise SimulationError(
                f"load_stream: count must be >= 0, got {count!r}"
            )
        i = self._row(_LOAD_STREAM)
        self._count[i] = count
        self._aux[i] = start
        self._set_array(i, arr)

    def store_stream(self, arr: "Array", start: int, count: int) -> None:
        if start < 0:
            raise SimulationError(
                f"store_stream: start must be >= 0, got {start!r}"
            )
        if count < 0:
            raise SimulationError(
                f"store_stream: count must be >= 0, got {count!r}"
            )
        i = self._row(_STORE_STREAM)
        self._count[i] = count
        self._aux[i] = start
        self._set_array(i, arr)

    def gather(self, arr: "Array", indices: _IntArray, n_instr: int) -> None:
        if n_instr < 0:
            raise SimulationError(
                f"gather: n_instr must be >= 0, got {n_instr!r}"
            )
        i = self._row(_GATHER)
        self._count[i] = n_instr
        self._set_array(i, arr)
        self._pooled(i, indices)

    def scatter(self, arr: "Array", indices: _IntArray, n_instr: int) -> None:
        if n_instr < 0:
            raise SimulationError(
                f"scatter: n_instr must be >= 0, got {n_instr!r}"
            )
        i = self._row(_SCATTER)
        self._count[i] = n_instr
        self._set_array(i, arr)
        self._pooled(i, indices)

    def gather_serial(self, n_instr: int, elements_per_instr: int) -> None:
        if n_instr < 0:
            raise SimulationError(
                f"gather_serial: n_instr must be >= 0, got {n_instr!r}"
            )
        if elements_per_instr < 0:
            raise SimulationError(
                "gather_serial: elements_per_instr must be >= 0, "
                f"got {elements_per_instr!r}"
            )
        i = self._row(_GATHER_SERIAL)
        self._count[i] = n_instr
        self._aux[i] = elements_per_instr

    def scatter_serial(self, n_instr: int, elements_per_instr: int) -> None:
        if n_instr < 0:
            raise SimulationError(
                f"scatter_serial: n_instr must be >= 0, got {n_instr!r}"
            )
        if elements_per_instr < 0:
            raise SimulationError(
                "scatter_serial: elements_per_instr must be >= 0, "
                f"got {elements_per_instr!r}"
            )
        i = self._row(_SCATTER_SERIAL)
        self._count[i] = n_instr
        self._aux[i] = elements_per_instr

    def load_windows(self, arr: "Array", starts: _IntArray, width: int) -> None:
        if width < 0:
            raise SimulationError(
                f"load_windows: width must be >= 0, got {width!r}"
            )
        i = self._row(_LOAD_WINDOWS)
        self._count[i] = width
        self._set_array(i, arr)
        self._pooled(i, starts)

    def scalar_load(
        self, arr: "Array", indices: _IntArray, dependent: bool
    ) -> None:
        i = self._row(_SCALAR_LOAD)
        self._aux[i] = int(dependent)
        self._set_array(i, arr)
        self._pooled(i, indices)

    def scalar_store(
        self, arr: "Array", indices: _IntArray, dependent: bool
    ) -> None:
        i = self._row(_SCALAR_STORE)
        self._aux[i] = int(dependent)
        self._set_array(i, arr)
        self._pooled(i, indices)

    def bulk_stream(self, arr: "Array", passes: int, write: bool) -> None:
        if passes < 0:
            raise SimulationError(
                f"bulk_stream: passes must be >= 0, got {passes!r}"
            )
        i = self._row(_BULK_STREAM)
        self._count[i] = passes
        self._aux[i] = int(write)
        self._set_array(i, arr)

    def record_via_op(
        self,
        *,
        sspm_elements: int,
        cam_searches: int,
        count: int,
        port_passes: Optional[int],
        port_cycles: Optional[float],
    ) -> None:
        if port_passes is None and port_cycles is None:
            raise SimulationError(
                "record_via_op needs port_passes (FIVU profile) or "
                "port_cycles (pre-computed cost)"
            )
        if sspm_elements < 0:
            raise SimulationError(
                f"record_via_op: sspm_elements must be >= 0, got {sspm_elements!r}"
            )
        if cam_searches < 0:
            raise SimulationError(
                f"record_via_op: cam_searches must be >= 0, got {cam_searches!r}"
            )
        if count < 0:
            raise SimulationError(
                f"record_via_op: count must be >= 0, got {count!r}"
            )
        if port_passes is not None and port_passes < 0:
            raise SimulationError(
                f"record_via_op: port_passes must be >= 0, got {port_passes!r}"
            )
        if port_cycles is not None and port_cycles < 0:
            raise SimulationError(
                f"record_via_op: port_cycles must be >= 0, got {port_cycles!r}"
            )
        i = self._row(_VIA)
        self._count[i] = count
        self._aux[i] = sspm_elements
        self._misc[i] = cam_searches
        if port_passes is not None:
            self._extra[i] = port_passes
        if port_cycles is not None:
            self._fval[i] = port_cycles

    # ------------------------------------------------------------------
    def take(self) -> FlushBatch:
        """Detach the buffered rows as a flush batch and reset the buffer.

        The used prefix is copied out and re-armed with column defaults in
        place, so the preallocated storage is immediately reusable and a
        later grow can never alias a batch already handed out.
        """
        n = self.rows
        cols = ColumnarOps(
            kinds=self._kinds[:n].copy(),
            count=self._count[:n].copy(),
            aux=self._aux[:n].copy(),
            misc=self._misc[:n].copy(),
            extra=self._extra[:n].copy(),
            fval=self._fval[:n].copy(),
            array_id=self._array_id[:n].copy(),
            off=self._off[:n].copy(),
            num=self._num[:n].copy(),
            pool=(
                np.concatenate(self._pool_chunks)
                if self._pool_chunks
                else np.zeros(0, dtype=np.int64)
            ),
            names=tuple(self._names),
        )
        batch = FlushBatch(
            cols=cols,
            base=self._base[:n].copy(),
            elem_bytes=self._eb[:n].copy(),
            nbytes=self._nb[:n].copy(),
        )
        for name, fill in _BUILDER_FILLS:
            getattr(self, name)[:n] = fill
        self._pool_chunks = []
        self._pool_n = 0
        self.rows = 0
        return batch


def price_flush(batch: FlushBatch, core: "Core") -> None:
    """Price one flushed narration batch against a live core.

    The batch-mode twin of walking ``Op.apply`` over the same ops:
    compute counters through :func:`_accumulate_compute`, memory rows
    through :func:`_price_memory_rows` against the core's *own* cache
    hierarchy (LRU and DRAM state persist across flushes), VIA rows with
    port cycles derived from the core's attached device.  Alloc rows are
    skipped — the batched core allocates eagerly at narration time so
    kernels can keep using the returned handles.
    """
    cols = batch.cols
    counters = core.counters
    _accumulate_compute(cols, counters)
    mem_rows = np.flatnonzero(
        np.isin(cols.kinds, np.asarray(_MEM_KINDS, dtype=np.uint8))
    )
    if mem_rows.size:
        mh = core.memory
        _price_memory_rows(
            cols,
            mem_rows,
            batch.base[mem_rows],
            batch.elem_bytes[mem_rows],
            batch.nbytes[mem_rows],
            core.machine,
            mh.l1,
            mh.l2,
            mh.l3,
            mh.dram,
            counters,
        )
    via_mask = cols.kinds == _VIA
    if via_mask.any():
        cnt = cols.count[via_mask]
        se = cols.aux[via_mask]
        cs = cols.misc[via_mask]
        pp = cols.extra[via_mask]
        pc = cols.fval[via_mask]
        derive = np.isnan(pc)
        if derive.any():
            if core.via is None:
                raise SimulationError(
                    "cannot price a VIA op on a core without a VIA device"
                )
            derived = _port_cycles_vec(se, pp, core.via.config.ports)
            pc = np.where(derive, derived.astype(np.float64), pc)
        counters.via_instructions += int(cnt.sum())
        counters.vector_uops += int(cnt.sum())
        counters.sspm_accesses += int((se * cnt).sum())
        counters.cam_searches += int((cs * cnt).sum())
        terms = (pc + float(cal.COMMIT_ISSUE_OVERHEAD)) * cnt
        counters.sspm_busy_cycles = _seeded_cumsum(
            counters.sspm_busy_cycles, terms
        )


def concat_columnar(chunks: Sequence[ColumnarOps]) -> ColumnarOps:
    """Stitch flushed batches back into one stream (recorder capture).

    Name tables are merged by string (each batch may have interned a
    different prefix of the final table) and pooled rows' ``off`` values
    are re-based by the running pool length; the result carries exactly
    the columns :meth:`ColumnarOps.from_ops` would produce for the
    concatenated op list.
    """
    if not chunks:
        return ColumnarOps(
            kinds=np.zeros(0, dtype=np.uint8),
            count=np.zeros(0, dtype=np.int64),
            aux=np.zeros(0, dtype=np.int64),
            misc=np.zeros(0, dtype=np.int64),
            extra=np.zeros(0, dtype=np.int64),
            fval=np.zeros(0, dtype=np.float64),
            array_id=np.zeros(0, dtype=np.int64),
            off=np.zeros(0, dtype=np.int64),
            num=np.zeros(0, dtype=np.int64),
            pool=np.zeros(0, dtype=np.int64),
            names=(),
        )
    if len(chunks) == 1:
        return chunks[0]
    merged: Dict[str, int] = {}
    array_ids: List[_IntArray] = []
    offs: List[_IntArray] = []
    pool_base = 0
    for chunk in chunks:
        remap = np.asarray(
            [merged.setdefault(name, len(merged)) for name in chunk.names],
            dtype=np.int64,
        )
        aid = chunk.array_id.copy()
        mask = aid >= 0
        if mask.any():
            aid[mask] = remap[aid[mask]]
        array_ids.append(aid)
        off = chunk.off.copy()
        pooled = np.isin(chunk.kinds, np.asarray(_POOL_KINDS, dtype=np.uint8))
        off[pooled] += pool_base
        offs.append(off)
        pool_base += int(chunk.pool.size)
    return ColumnarOps(
        kinds=np.concatenate([c.kinds for c in chunks]),
        count=np.concatenate([c.count for c in chunks]),
        aux=np.concatenate([c.aux for c in chunks]),
        misc=np.concatenate([c.misc for c in chunks]),
        extra=np.concatenate([c.extra for c in chunks]),
        fval=np.concatenate([c.fval for c in chunks]),
        array_id=np.concatenate(array_ids),
        off=np.concatenate(offs),
        num=np.concatenate([c.num for c in chunks]),
        pool=np.concatenate([c.pool for c in chunks]),
        names=tuple(merged),
    )


# ---------------------------------------------------------------------------
# Engine-fallback accounting (the loud scalar fallback)
# ---------------------------------------------------------------------------
class EngineFallbackWarning(UserWarning):
    """A record or replay path fell back to the scalar ``Op.apply`` engine."""


_FALLBACK_LOCK = threading.Lock()
_FALLBACK_WARNED: Set[Tuple[str, float, float, float, float]] = set()
_FALLBACK_COUNT = 0


def note_engine_fallback(machine: MachineConfig, *, context: str) -> None:
    """Record (and warn once per configuration) a scalar-engine fallback.

    The columnar engine refuses machines with fractional cache/DRAM
    latencies (see the module docstring's bit-identity contract), so both
    batched narration and columnar replay price such machines with the
    scalar walk instead.  Every occurrence bumps a process-wide counter —
    surfaced as ``engine_fallback`` in sweep counters and serve metrics —
    and the first occurrence per (context, latency profile) emits an
    :class:`EngineFallbackWarning` so users can tell which engine priced
    their sweep.
    """
    global _FALLBACK_COUNT
    key = (
        context,
        float(machine.l1.latency),
        float(machine.l2.latency),
        float(machine.l3.latency),
        float(machine.dram_latency),
    )
    with _FALLBACK_LOCK:
        _FALLBACK_COUNT += 1
        first = key not in _FALLBACK_WARNED
        if first:
            _FALLBACK_WARNED.add(key)
    if first:
        warnings.warn(
            f"non-integral cache/DRAM latency on {context}: pricing with "
            "the scalar engine (columnar bit-identity requires integer "
            "latencies); results are identical, just slower",
            EngineFallbackWarning,
            stacklevel=3,
        )


def engine_fallback_count() -> int:
    """Process-wide count of scalar-engine fallback events (monotone)."""
    with _FALLBACK_LOCK:
        return _FALLBACK_COUNT


# ---------------------------------------------------------------------------
# Whole-array invariant checking (the PR-3 laws, vectorized)
# ---------------------------------------------------------------------------
_FLOAT_SLACK = 1e-9

#: multiplicity columns that must be non-negative, per kind
_NON_NEGATIVE_ROLES: Tuple[Tuple[int, str], ...] = (
    (_ALLOC, "count"),
    (_SCALAR_OPS, "count"),
    (_VECTOR_OP, "count"),
    (_BRANCHES, "count"),
    (_LOAD_STREAM, "count"),
    (_LOAD_STREAM, "aux"),
    (_STORE_STREAM, "count"),
    (_STORE_STREAM, "aux"),
    (_GATHER, "count"),
    (_SCATTER, "count"),
    (_GATHER_SERIAL, "count"),
    (_GATHER_SERIAL, "aux"),
    (_SCATTER_SERIAL, "count"),
    (_SCATTER_SERIAL, "aux"),
    (_LOAD_WINDOWS, "count"),
    (_BULK_STREAM, "count"),
    (_VIA, "count"),
    (_VIA, "aux"),
    (_VIA, "misc"),
)


def check_columnar_invariants(
    cols: ColumnarOps,
    *,
    counters: Optional[OpCounters] = None,
    capacity: Optional[int] = None,
) -> None:
    """Assert the model's conservation laws over whole columns at once.

    The vectorized twin of the per-op
    :class:`~repro.sim.backends.InvariantBackend` checks:

    * every multiplicity column is non-negative and every float operand is
      finite, so no op can ever *decrease* a monotone counter;
    * per-op branch mispredict rates stay within [0, 1] (mispredicts can
      never exceed the branches that produced them);
    * with ``capacity`` given, the SSPM footprint law: the running prefix
      maximum (``np.maximum.accumulate``) of per-pass element counts never
      exceeds the scratchpad capacity — the whole-stream expression of the
      live occupancy bound (checked only when a capacity is known,
      mirroring how the scalar checker needs an attached VIA device);
    * with ``counters`` given, the finished totals obey the zero-to-final
      delta laws: finite non-negative counters, cache-hit conservation
      (every line access served by exactly one level), and total
      mispredicts bounded by total branches.

    Raises :class:`~repro.errors.InvariantError` on the first violated law.
    """
    kinds = cols.kinds
    for kind, col_name in _NON_NEGATIVE_ROLES:
        col = getattr(cols, col_name)[kinds == kind]
        if col.size and int(col.min()) < 0:
            raise InvariantError(
                f"op kind {KIND_ORDER[kind]!r} carries a negative "
                f"{col_name!r} multiplicity ({int(col.min())})"
            )
    br = cols.fval[kinds == _BRANCHES]
    if br.size and (
        not np.isfinite(br).all() or float(br.min()) < 0.0 or float(br.max()) > 1.0
    ):
        raise InvariantError(
            "branch mispredict rates must lie in [0, 1] "
            "(mispredicts cannot exceed branches)"
        )
    stalls = cols.fval[kinds == _DEP_STALL]
    if stalls.size and (not np.isfinite(stalls).all() or float(stalls.min()) < 0.0):
        raise InvariantError("dependency stalls must be finite and >= 0")
    via = kinds == _VIA
    if via.any():
        pp = cols.extra[via]
        pc = cols.fval[via]
        missing = (pp < 0) & np.isnan(pc)
        if missing.any():
            raise InvariantError(
                "VIA op carries neither port_passes nor port_cycles"
            )
        has_pc = ~np.isnan(pc)
        if has_pc.any() and float(pc[has_pc].min()) < 0.0:
            raise InvariantError("VIA port_cycles must be >= 0")
    if capacity is not None and via.any():
        se = cols.aux[via]
        pp = np.maximum(cols.extra[via], 1)
        footprint = np.maximum(1, se // pp)
        footprint = np.where(se == 0, 0, footprint)
        running = np.maximum.accumulate(footprint)
        if int(running[-1]) > capacity:
            peak = int(running[-1])
            raise InvariantError(
                f"SSPM footprint {peak} exceeds capacity {capacity} "
                "(occupancy prefix maximum out of bounds)"
            )
    if counters is None:
        return
    values = counters.as_dict()
    arr = np.asarray([float(v) for v in values.values()], dtype=np.float64)
    if not np.isfinite(arr).all():
        bad = [k for k, v in values.items() if not np.isfinite(float(v))]
        raise InvariantError(f"counter(s) {bad} became non-finite")
    if float(arr.min()) < -_FLOAT_SLACK:
        bad = [k for k, v in values.items() if float(v) < -_FLOAT_SLACK]
        raise InvariantError(f"counter(s) {bad} are negative")
    served = (
        counters.l1_hits + counters.l2_hits + counters.l3_hits + counters.dram_fills
    )
    if served != counters.mem_line_accesses:
        raise InvariantError(
            f"cache conservation broken: {counters.mem_line_accesses} line "
            f"accesses but {served} served (l1+l2+l3+dram)"
        )
    if counters.branch_mispredicts > counters.branches + _FLOAT_SLACK:
        raise InvariantError(
            f"{counters.branch_mispredicts} branch mispredicts exceed "
            f"{counters.branches} branches"
        )
