"""Pricing backends for the op-stream IR.

Narration reaches a backend in one of two shapes.  Batch-capable backends
(:attr:`Backend.batch_capable`) receive whole
:class:`~repro.sim.columnar.FlushBatch` column blocks from the core's
narration buffer via :meth:`Backend.flush` — the hot path, no per-op
objects.  Batch-incapable backends (tracing) and directly-injected ops
arrive one :class:`~repro.sim.ops.Op` at a time through
:meth:`Backend.handle`, priced by :meth:`Op.apply` — the scalar reference
engine.  Both shapes mutate the same core counters and are bit-identical.

* :class:`DirectBackend` — price immediately and retain nothing (the
  default);
* :class:`RecorderBackend` — capture the stream *and* price it, so a
  recording run produces both the artifact and the baseline result in one
  pass.  Batched narration is captured as the column blocks themselves:
  the recording is born columnar, with no ``from_ops`` conversion and no
  per-op materialization;
* :class:`TraceBackend` — log a :class:`~repro.sim.trace.TraceEvent` per
  op and delegate to an inner backend (installed by
  :class:`~repro.sim.trace.TracedCore`; not batch-capable, which is what
  keeps the trace op-by-op);
* :class:`InvariantBackend` — delegate, then assert the model's
  conservation laws (gem5-style runtime self-checking): monotone
  non-negative counters, cache hit totals that account for every line
  access, bounded branch mispredicts, SSPM occupancy within capacity.
  Per-op deltas are checked on the scalar path; flushes are validated at
  batch granularity — structurally via
  :func:`~repro.sim.columnar.check_columnar_invariants` plus the same
  counter-delta laws over the whole batch.

Replay is not a backend but a driver: :func:`replay_recording` re-prices a
recorded stream on a *fresh* core configured with the target machine/VIA
pair, through either pricing engine.  Because direct execution prices ops
through the very same kernels, replayed results are bit-identical by
construction.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from typing import TYPE_CHECKING, List, Optional, Union, cast

from repro.errors import InvariantError, SimulationError
from repro.sim.config import MachineConfig
from repro.sim.ops import (
    AllocOp,
    Op,
    PricedState,
    Recording,
    ReplayMismatchError,
    ViaOpRecord,
    stream_shape_key,
    via_totals,
)
from repro.sim.stats import OpCounters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.columnar import ColumnarOps, FlushBatch
    from repro.sim.core import Core
    from repro.sim.stats import KernelResult
    from repro.sim.trace import Trace
    from repro.via.config import ViaConfig


class Backend:
    """Base backend: price each op as it is narrated.

    Subclasses advertising :attr:`batch_capable` receive buffered
    narration as :meth:`flush` calls instead of per-op :meth:`handle`
    calls; the base :meth:`flush` is a reference implementation that
    materializes the batch back into ops and handles them one by one
    (alloc rows excepted — a batched core allocates eagerly at narration
    time, so re-applying the op would corrupt the address space).
    """

    #: whether this backend accepts whole flush batches; cores only build
    #: a narration buffer for backends that do
    batch_capable: bool = False

    def handle(self, op: Op, core: "Core") -> None:
        op.apply(core)

    def flush(self, batch: "FlushBatch", core: "Core") -> None:
        """Price one narration batch (reference implementation: per-op)."""
        for op in batch.cols.to_ops():
            if isinstance(op, AllocOp):
                continue
            self.handle(op, core)

    def on_finalize(self, core: "Core", name: str, output: object) -> None:
        """Called by :meth:`Core.finalize` before the result is built."""


class DirectBackend(Backend):
    """Price immediately, retain nothing; flushes go through the columnar
    kernels (:func:`~repro.sim.columnar.price_flush`)."""

    batch_capable = True

    def flush(self, batch: "FlushBatch", core: "Core") -> None:
        from repro.sim.columnar import price_flush

        price_flush(batch, core)


class RecorderBackend(Backend):
    """Capture the op stream while pricing it.

    After the kernel calls ``finalize``, :attr:`recording` holds the
    complete :class:`~repro.sim.ops.Recording` (stream + configurations +
    functional output), ready for :func:`~repro.sim.ops.save_recordings`.

    Batched narration is captured as the flushed column blocks and
    stitched with :func:`~repro.sim.columnar.concat_columnar` at finalize,
    so the recording carries native struct-of-arrays columns end to end —
    no ``Op`` object is ever built on this path.  Ops injected directly
    (scalar mode, traced cores, tests) are captured per-op; a mixed stream
    falls back to an op-list recording, preserving order.
    """

    def __init__(self) -> None:
        self._events: List[Union[Op, "ColumnarOps"]] = []
        self.recording: Optional[Recording] = None

    batch_capable = True

    def handle(self, op: Op, core: "Core") -> None:
        self._events.append(op)
        op.apply(core)

    def flush(self, batch: "FlushBatch", core: "Core") -> None:
        from repro.sim.columnar import price_flush

        self._events.append(batch.cols)
        price_flush(batch, core)

    def on_finalize(self, core: "Core", name: str, output: object) -> None:
        from repro.sim.columnar import ColumnarOps, concat_columnar

        via_cfg = core.via.config if core.via is not None else None
        events = self._events
        cols_arg: Optional["ColumnarOps"] = None
        ops_arg: Optional[List[Op]] = None
        if events and all(isinstance(e, ColumnarOps) for e in events):
            cols_arg = concat_columnar(cast("List[ColumnarOps]", events))
        else:
            ops_arg = []
            for event in events:
                if isinstance(event, ColumnarOps):
                    ops_arg.extend(event.to_ops())
                else:
                    ops_arg.append(event)
        self.recording = Recording(
            name=name,
            machine=core.machine,
            via_config=via_cfg,
            ops=ops_arg,
            columnar=cols_arg,
            output=output,
            priced=PricedState(
                counters=dataclasses.replace(core.counters),
                dram_occupancy_cycles=core.memory.dram.occupancy_cycles(),
                dram_traffic_bytes=core.memory.dram.traffic_bytes,
                dram_lines=core.memory.dram.stats.lines,
                cache_stats=core.memory.level_stats(),
            ),
        )


class TraceBackend(Backend):
    """Log every op to a :class:`~repro.sim.trace.Trace`, then delegate.

    Deliberately not batch-capable: installing it flips the core back to
    per-op narration, which is what keeps the trace a faithful op-by-op
    log (DESIGN.md §10 — tracing is when ``Op`` objects still materialize).
    """

    def __init__(self, trace: "Trace", inner: Optional[Backend] = None) -> None:
        self.trace = trace
        self.inner = inner if inner is not None else DirectBackend()

    def handle(self, op: Op, core: "Core") -> None:
        self.trace.add(op.kind, op.describe(), op.trace_count)
        self.inner.handle(op, core)

    def on_finalize(self, core: "Core", name: str, output: object) -> None:
        self.inner.on_finalize(core, name, output)


#: integer counters that classify where each line access was served; their
#: deltas must sum to the delta of ``mem_line_accesses`` on every op
_CACHE_LEVEL_FIELDS = ("l1_hits", "l2_hits", "l3_hits", "dram_fills")

#: slack for float-accumulated counters (mispredicts, latencies)
_FLOAT_SLACK = 1e-9


def _counters_violation(before: OpCounters, after: OpCounters) -> Optional[str]:
    """First conservation-law violation in a counter delta, or ``None``.

    The laws checked are the ones every op must preserve regardless of its
    kind — they are how :func:`repro.sim.core.build_result` prices results:

    * every counter is monotone (ops only ever add work) and finite;
    * cache accounting conserves lines: each new line access is served by
      exactly one of L1/L2/L3/DRAM;
    * branch mispredicts cannot exceed the branches that produced them.
    """
    for name in before.__dataclass_fields__:
        b, a = getattr(before, name), getattr(after, name)
        if not math.isfinite(a):
            return f"counter {name} became non-finite ({a!r})"
        if a < b - _FLOAT_SLACK:
            return f"counter {name} decreased from {b!r} to {a!r}"
    d_lines = after.mem_line_accesses - before.mem_line_accesses
    d_served = sum(
        getattr(after, f) - getattr(before, f) for f in _CACHE_LEVEL_FIELDS
    )
    if d_served != d_lines:
        return (
            f"cache conservation broken: {d_lines} new line accesses but "
            f"{d_served} served (l1+l2+l3+dram)"
        )
    d_branches = after.branches - before.branches
    d_mispredicts = after.branch_mispredicts - before.branch_mispredicts
    if d_mispredicts > d_branches + _FLOAT_SLACK:
        return (
            f"{d_mispredicts} new branch mispredicts exceed "
            f"{d_branches} new branches"
        )
    return None


def _sspm_violation(core: "Core") -> Optional[str]:
    """SSPM occupancy bound, when a VIA device is attached."""
    via = core.via
    if via is None:
        return None
    occupancy = via.sspm.element_count
    capacity = via.config.cam_entries
    if not (0 <= occupancy <= capacity):
        return (
            f"SSPM occupancy {occupancy} outside [0, {capacity}] "
            f"({via.config.name})"
        )
    return None


def check_result_invariants(result: "KernelResult") -> "KernelResult":
    """Validate a finished :class:`~repro.sim.stats.KernelResult`.

    Used by validating replays (whose fast path is pure arithmetic over a
    stored :class:`~repro.sim.ops.PricedState`, so there are no per-op
    deltas to check) and by :meth:`InvariantBackend.on_finalize`: the
    cycle breakdown's priced components must all be finite and
    non-negative, and the total must dominate every component — the
    model's cycle-conservation law.
    """
    zero = OpCounters()
    problem = _counters_violation(zero, result.counters)
    if problem is not None:
        raise InvariantError(f"{result.name}: {problem}")
    breakdown = result.breakdown.as_dict()
    total = result.breakdown.total_cycles
    for name, value in breakdown.items():
        if name == "bottleneck":
            continue
        if not math.isfinite(value):
            raise InvariantError(
                f"{result.name}: cycle component {name} is non-finite ({value!r})"
            )
        if value < 0:
            raise InvariantError(
                f"{result.name}: cycle component {name} is negative ({value!r})"
            )
        if name not in ("total_cycles",) and value > total + _FLOAT_SLACK * max(
            1.0, total
        ):
            raise InvariantError(
                f"{result.name}: cycle component {name}={value!r} exceeds "
                f"total_cycles={total!r}"
            )
    if not math.isfinite(result.energy_pj) or result.energy_pj < 0:
        raise InvariantError(
            f"{result.name}: energy {result.energy_pj!r} is not a "
            "finite non-negative number"
        )
    return result


class InvariantBackend(Backend):
    """Delegate to ``inner``, then assert the model's conservation laws.

    Stateless between ops: each :meth:`handle` snapshots the counters,
    prices the op through the inner backend, and checks the delta — so the
    first op that corrupts the model raises
    :class:`~repro.errors.InvariantError` with itself attached, not some
    later observer.  Batched narration validates at flush granularity:
    :meth:`flush` first runs
    :func:`~repro.sim.columnar.check_columnar_invariants` over the batch's
    columns (structural laws, SSPM footprint vs capacity), then checks the
    same counter-delta laws over the whole batch.  Wrap any backend:
    ``InvariantBackend()`` validates direct pricing,
    ``InvariantBackend(RecorderBackend())`` validates while recording.
    """

    def __init__(self, inner: Optional[Backend] = None) -> None:
        self.inner = inner if inner is not None else DirectBackend()
        # validate in whatever shape the inner backend consumes
        self.batch_capable = self.inner.batch_capable

    def handle(self, op: Op, core: "Core") -> None:
        before = dataclasses.replace(core.counters)
        self.inner.handle(op, core)
        problem = _counters_violation(before, core.counters)
        if problem is None:
            problem = _sspm_violation(core)
        if problem is not None:
            raise InvariantError(
                f"op {op.kind!r} violated a model invariant: {problem}",
                op=op,
            )

    def flush(self, batch: "FlushBatch", core: "Core") -> None:
        from repro.sim.columnar import check_columnar_invariants

        n = len(batch.cols)
        try:
            capacity = (
                core.via.config.cam_entries if core.via is not None else None
            )
            check_columnar_invariants(batch.cols, capacity=capacity)
        except InvariantError as exc:
            raise InvariantError(
                f"flush of {n} narrated ops violated a model invariant: {exc}"
            ) from exc
        before = dataclasses.replace(core.counters)
        self.inner.flush(batch, core)
        problem = _counters_violation(before, core.counters)
        if problem is None:
            problem = _sspm_violation(core)
        if problem is not None:
            raise InvariantError(
                f"flush of {n} narrated ops violated a model invariant: "
                f"{problem}"
            )

    def on_finalize(self, core: "Core", name: str, output: object) -> None:
        self.inner.on_finalize(core, name, output)
        problem = _counters_violation(OpCounters(), core.counters)
        if problem is None:
            problem = _sspm_violation(core)
        if problem is not None:
            raise InvariantError(f"finalize({name!r}): {problem}")


#: guards every Recording's ``_machine_memo``: the recording store's load
#: memo hands the *same* Recording object to concurrent serve executor
#: threads, so the per-machine pricing memo is cross-thread shared state
_MEMO_LOCK = threading.Lock()

#: replay pricing engines: ``scalar`` walks :meth:`Op.apply` one record at
#: a time; ``columnar`` prices whole streams as array arithmetic
#: (:mod:`repro.sim.columnar`), bit-identical per its integral-latency
#: contract
REPLAY_ENGINES = ("scalar", "columnar")

#: engine used when callers do not choose one; flipping this to
#: ``columnar`` is gated on the differential CI matrix staying green
DEFAULT_REPLAY_ENGINE = "scalar"


def replay_recording(
    recording: Recording,
    *,
    machine: Optional[MachineConfig] = None,
    via_config: Optional["ViaConfig"] = None,
    engine: Optional[str] = None,
    validate: bool = False,
) -> "KernelResult":
    """Re-price a recorded op stream under a target configuration.

    No functional numpy runs: a fresh core (cold caches, same bump-allocated
    address space) prices the recorded ops in order, and the recorded
    functional output is attached to the result.  The target must be
    stream-shape compatible with the recording (same vector lanes, L1
    latency, and SSPM capacity — see :func:`~repro.sim.ops.stream_shape_key`);
    anything else, notably SSPM *port* counts and all pure-pricing machine
    knobs, may differ freely.

    Raises :class:`~repro.sim.ops.ReplayMismatchError` if the target would
    have produced a different op stream.

    Two cost tiers, both bit-identical to direct execution:

    * **same machine** (the Fig. 9 port sweep): the record run's stored
      :class:`~repro.sim.ops.PricedState` already holds every counter the
      ports cannot touch, so only the VIA ops are re-priced — pure
      arithmetic, no cache simulation;
    * **different machine**: the machine-dependent ops replay through the
      detailed model on a fresh core (memoized per target machine on the
      recording), and the VIA-op totals are added on top — VIA ops never
      touch the memory hierarchy, so the split is exact.

    With ``validate=True`` the replay self-checks: a cross-machine memory
    pass prices ops through an :class:`InvariantBackend` (scalar engine) or
    :func:`repro.sim.columnar.check_columnar_invariants` (columnar engine),
    and every path runs :func:`check_result_invariants` over the finished
    result — so a corrupt or mis-priced artifact raises
    :class:`~repro.errors.InvariantError` instead of producing a silently
    wrong number.  Validation never changes the result.

    ``engine`` selects the pricing implementation (default
    :data:`DEFAULT_REPLAY_ENGINE`): ``columnar`` re-prices the stream as
    whole-array NumPy kernels, bit-identical to ``scalar`` under the
    integral-latency contract — a machine carrying fractional cache/DRAM
    latencies falls back to the scalar engine *loudly*, via
    :class:`~repro.sim.columnar.EngineFallbackWarning` (once per config)
    and the process-wide
    :func:`~repro.sim.columnar.engine_fallback_count` counter surfaced in
    sweep and serve metrics (see DESIGN.md §9).
    """
    from repro.sim.core import Core, build_result

    if machine is None:
        machine = recording.machine
    if via_config is None:
        via_config = recording.via_config
    if engine is None:
        engine = DEFAULT_REPLAY_ENGINE
    if engine not in REPLAY_ENGINES:
        raise SimulationError(
            f"unknown replay engine {engine!r}; expected one of {REPLAY_ENGINES}"
        )
    if engine == "columnar":
        from repro.sim.columnar import (
            machine_latencies_integral,
            note_engine_fallback,
        )

        if not machine_latencies_integral(machine):
            # the bit-identity contract only covers integer cycle
            # arithmetic; fractional latencies reorder float sums
            note_engine_fallback(machine, context="replay")
            engine = "scalar"
    target_key = stream_shape_key(machine, via_config)
    if target_key != recording.shape_key:
        raise ReplayMismatchError(
            f"cannot replay {recording.name!r}: recorded stream shape "
            f"{recording.shape_key} != target {target_key}"
        )
    name = recording.name
    if (
        recording.via_config is not None
        and via_config is not None
        and via_config.name != recording.via_config.name
    ):
        # kernel names embed the config they ran under; retarget the label
        name = name.replace(recording.via_config.name, via_config.name)
    if via_config is not None:
        from repro.via import area

        via_leak = area.leakage_mw(via_config)
    else:
        via_leak = 0.0
    if engine == "columnar":
        from repro.sim.columnar import (
            check_columnar_invariants,
            columnar_via_totals,
        )

        cols = recording.columnar()
        via_side = columnar_via_totals(cols, via_config)
        if validate:
            check_columnar_invariants(cols)
    else:
        via_side = via_totals(recording.ops, via_config)
    if recording.priced is not None and machine == recording.machine:
        p = recording.priced
        counters = dataclasses.replace(p.counters)
        counters.sspm_busy_cycles = via_side.sspm_busy_cycles
        result = build_result(
            name=name,
            machine=machine,
            counters=counters,
            dram_occupancy_cycles=p.dram_occupancy_cycles,
            dram_traffic_bytes=p.dram_traffic_bytes,
            dram_lines=p.dram_lines,
            cache_stats={k: dict(v) for k, v in p.cache_stats.items()},
            via_leakage_mw=via_leak,
            output=recording.output,
        )
        return check_result_invariants(result) if validate else result
    if engine == "columnar":
        from repro.sim.columnar import price_columnar

        memo_key = ("columnar", machine)
        with _MEMO_LOCK:
            cp = recording._machine_memo.get(memo_key)
        if cp is None:
            cp = price_columnar(cols, machine, validate=validate)
            with _MEMO_LOCK:
                # same first-writer-wins discipline as the scalar core memo
                cp = recording._machine_memo.setdefault(memo_key, cp)
        counters = dataclasses.replace(cp.counters)
        counters.via_instructions += via_side.via_instructions
        counters.vector_uops += via_side.vector_uops
        counters.sspm_accesses += via_side.sspm_accesses
        counters.cam_searches += via_side.cam_searches
        counters.sspm_busy_cycles += via_side.sspm_busy_cycles
        result = build_result(
            name=name,
            machine=machine,
            counters=counters,
            dram_occupancy_cycles=cp.dram_occupancy_cycles,
            dram_traffic_bytes=cp.dram_traffic_bytes,
            dram_lines=cp.dram_lines,
            cache_stats={k: dict(v) for k, v in cp.cache_stats.items()},
            via_leakage_mw=via_leak,
            output=recording.output,
        )
        return check_result_invariants(result) if validate else result
    with _MEMO_LOCK:
        core = recording._machine_memo.get(machine)
    if core is None:
        backend = InvariantBackend() if validate else DirectBackend()
        core = Core(machine, backend=backend)
        for op in recording.ops:
            if not isinstance(op, ViaOpRecord):
                backend.handle(op, core)
        with _MEMO_LOCK:
            # recordings are shared across serve executor threads via the
            # store's load memo; a concurrent pricer may have won the race
            # to populate this machine's entry — keep the first core so
            # every thread reads the same one
            core = recording._machine_memo.setdefault(machine, core)
    counters = dataclasses.replace(core.counters)
    counters.via_instructions += via_side.via_instructions
    counters.vector_uops += via_side.vector_uops
    counters.sspm_accesses += via_side.sspm_accesses
    counters.cam_searches += via_side.cam_searches
    counters.sspm_busy_cycles += via_side.sspm_busy_cycles
    result = build_result(
        name=name,
        machine=machine,
        counters=counters,
        dram_occupancy_cycles=core.memory.dram.occupancy_cycles(),
        dram_traffic_bytes=core.memory.dram.traffic_bytes,
        dram_lines=core.memory.dram.stats.lines,
        cache_stats=core.memory.level_stats(),
        via_leakage_mw=via_leak,
        output=recording.output,
    )
    return check_result_invariants(result) if validate else result
