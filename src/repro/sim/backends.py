"""Pricing backends for the op-stream IR.

Every narration call a kernel makes reaches :meth:`repro.sim.core.Core._emit`
as an :class:`~repro.sim.ops.Op`, and the core's backend decides what happens
to it:

* :class:`DirectBackend` — price immediately (the historical behavior, and
  the default: zero overhead, zero regression);
* :class:`RecorderBackend` — append the op to a stream *and* price it, so a
  recording run produces both the artifact and the baseline result in one
  pass;
* :class:`TraceBackend` — log a :class:`~repro.sim.trace.TraceEvent` and
  delegate to an inner backend (this is what :class:`~repro.sim.trace.TracedCore`
  installs).

Replay is not a backend but a driver: :func:`replay_recording` feeds a
recorded stream through :meth:`Op.apply` on a *fresh* core configured with
the target machine/VIA pair.  Because direct execution prices ops through
the very same ``apply`` path, replayed results are bit-identical by
construction.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, List, Optional

from repro.sim.config import MachineConfig
from repro.sim.ops import (
    Op,
    PricedState,
    Recording,
    ReplayMismatchError,
    ViaOpRecord,
    stream_shape_key,
    via_totals,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Core
    from repro.sim.stats import KernelResult
    from repro.sim.trace import Trace
    from repro.via.config import ViaConfig


class Backend:
    """Base backend: price each op as it is narrated."""

    def handle(self, op: Op, core: "Core") -> None:
        op.apply(core)

    def on_finalize(self, core: "Core", name: str, output: object) -> None:
        """Called by :meth:`Core.finalize` before the result is built."""


class DirectBackend(Backend):
    """Today's behavior: ops are priced immediately and not retained."""


class RecorderBackend(Backend):
    """Capture the op stream while pricing it.

    After the kernel calls ``finalize``, :attr:`recording` holds the
    complete :class:`~repro.sim.ops.Recording` (stream + configurations +
    functional output), ready for :func:`~repro.sim.ops.save_recordings`.
    """

    def __init__(self) -> None:
        self.ops: List[Op] = []
        self.recording: Optional[Recording] = None

    def handle(self, op: Op, core: "Core") -> None:
        self.ops.append(op)
        op.apply(core)

    def on_finalize(self, core: "Core", name: str, output: object) -> None:
        via_cfg = core.via.config if core.via is not None else None
        self.recording = Recording(
            name=name,
            machine=core.machine,
            via_config=via_cfg,
            ops=list(self.ops),
            output=output,
            priced=PricedState(
                counters=dataclasses.replace(core.counters),
                dram_occupancy_cycles=core.memory.dram.occupancy_cycles(),
                dram_traffic_bytes=core.memory.dram.traffic_bytes,
                dram_lines=core.memory.dram.stats.lines,
                cache_stats=core.memory.level_stats(),
            ),
        )


class TraceBackend(Backend):
    """Log every op to a :class:`~repro.sim.trace.Trace`, then delegate."""

    def __init__(self, trace: "Trace", inner: Optional[Backend] = None) -> None:
        self.trace = trace
        self.inner = inner if inner is not None else DirectBackend()

    def handle(self, op: Op, core: "Core") -> None:
        self.trace.add(op.kind, op.describe(), op.trace_count)
        self.inner.handle(op, core)

    def on_finalize(self, core: "Core", name: str, output: object) -> None:
        self.inner.on_finalize(core, name, output)


def replay_recording(
    recording: Recording,
    *,
    machine: Optional[MachineConfig] = None,
    via_config: Optional["ViaConfig"] = None,
) -> "KernelResult":
    """Re-price a recorded op stream under a target configuration.

    No functional numpy runs: a fresh core (cold caches, same bump-allocated
    address space) prices the recorded ops in order, and the recorded
    functional output is attached to the result.  The target must be
    stream-shape compatible with the recording (same vector lanes, L1
    latency, and SSPM capacity — see :func:`~repro.sim.ops.stream_shape_key`);
    anything else, notably SSPM *port* counts and all pure-pricing machine
    knobs, may differ freely.

    Raises :class:`~repro.sim.ops.ReplayMismatchError` if the target would
    have produced a different op stream.

    Two cost tiers, both bit-identical to direct execution:

    * **same machine** (the Fig. 9 port sweep): the record run's stored
      :class:`~repro.sim.ops.PricedState` already holds every counter the
      ports cannot touch, so only the VIA ops are re-priced — pure
      arithmetic, no cache simulation;
    * **different machine**: the machine-dependent ops replay through the
      detailed model on a fresh core (memoized per target machine on the
      recording), and the VIA-op totals are added on top — VIA ops never
      touch the memory hierarchy, so the split is exact.
    """
    from repro.sim.core import Core, build_result

    if machine is None:
        machine = recording.machine
    if via_config is None:
        via_config = recording.via_config
    target_key = stream_shape_key(machine, via_config)
    if target_key != recording.shape_key:
        raise ReplayMismatchError(
            f"cannot replay {recording.name!r}: recorded stream shape "
            f"{recording.shape_key} != target {target_key}"
        )
    name = recording.name
    if (
        recording.via_config is not None
        and via_config is not None
        and via_config.name != recording.via_config.name
    ):
        # kernel names embed the config they ran under; retarget the label
        name = name.replace(recording.via_config.name, via_config.name)
    if via_config is not None:
        from repro.via import area

        via_leak = area.leakage_mw(via_config)
    else:
        via_leak = 0.0
    via_side = via_totals(recording.ops, via_config)
    if recording.priced is not None and machine == recording.machine:
        p = recording.priced
        counters = dataclasses.replace(p.counters)
        counters.sspm_busy_cycles = via_side.sspm_busy_cycles
        return build_result(
            name=name,
            machine=machine,
            counters=counters,
            dram_occupancy_cycles=p.dram_occupancy_cycles,
            dram_traffic_bytes=p.dram_traffic_bytes,
            dram_lines=p.dram_lines,
            cache_stats={k: dict(v) for k, v in p.cache_stats.items()},
            via_leakage_mw=via_leak,
            output=recording.output,
        )
    core = recording._machine_memo.get(machine)
    if core is None:
        core = Core(machine)
        for op in recording.ops:
            if not isinstance(op, ViaOpRecord):
                op.apply(core)
        recording._machine_memo[machine] = core
    counters = dataclasses.replace(core.counters)
    counters.via_instructions += via_side.via_instructions
    counters.vector_uops += via_side.vector_uops
    counters.sspm_accesses += via_side.sspm_accesses
    counters.cam_searches += via_side.cam_searches
    counters.sspm_busy_cycles += via_side.sspm_busy_cycles
    return build_result(
        name=name,
        machine=machine,
        counters=counters,
        dram_occupancy_cycles=core.memory.dram.occupancy_cycles(),
        dram_traffic_bytes=core.memory.dram.traffic_bytes,
        dram_lines=core.memory.dram.stats.lines,
        cache_stats=core.memory.level_stats(),
        via_leakage_mw=via_leak,
        output=recording.output,
    )
