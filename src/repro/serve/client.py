"""Blocking client library for the simulation service.

:class:`ServeClient` speaks the JSON-lines protocol of
:mod:`repro.serve.server` over a plain socket — stdlib only, safe to use
from scripts, tests, and the load generator.  One client holds one
connection and issues one request at a time (the server multiplexes
concurrent clients, not concurrent requests per client object; open more
clients for parallel load).

Server-side rejections and failures raise :class:`ServeRequestError`
carrying the structured error triple (``code`` / ``reason`` /
``retry_after_s``); transport problems raise
:class:`~repro.errors.ServeError` with code ``transport``.

**Shed handling**: the server sheds overload with a structured
``queue_full`` error carrying a ``retry_after_s`` hint.  ``submit``
honours the hint — it backs off and retries up to ``shed_retries`` times
before surfacing the error, so a short admission burst is absorbed
client-side instead of failing the caller on first shed.  ``draining``
is terminal for this server instance (it carries no retry hint — the
process is going away) and is never retried.
"""

from __future__ import annotations

import itertools
import json
import socket
import time
from typing import Any, Dict, Optional

from repro.errors import ServeError

#: client-side backoff cap between shed retries (seconds)
MAX_SHED_BACKOFF_S = 5.0


class ServeRequestError(ServeError):
    """The server answered with a structured error payload."""

    def __init__(self, error: Dict[str, Any]):
        reason = error.get("reason", "unknown server error")
        super().__init__(
            reason,
            code=error.get("code", "internal"),
            retry_after_s=error.get("retry_after_s"),
        )
        self.payload = dict(error)


class ServeClient:
    """One connection to a running :class:`~repro.serve.server.ViaServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7341,
        *,
        timeout_s: float = 60.0,
        shed_retries: int = 4,
        shed_backoff_s: float = 0.05,
    ):
        if shed_retries < 0:
            raise ServeError(
                f"shed_retries must be >= 0, got {shed_retries}",
                code="bad_request",
            )
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.shed_retries = shed_retries
        self.shed_backoff_s = shed_backoff_s
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    def connect(self) -> "ServeClient":
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout_s
                )
            except OSError as exc:
                raise ServeError(
                    f"cannot connect to {self.host}:{self.port}: {exc}",
                    code="transport",
                ) from exc
            self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One raw request/response round trip.

        Returns the response dict on ``ok``; raises
        :class:`ServeRequestError` on a structured server error and
        :class:`~repro.errors.ServeError` (code ``transport``) when the
        connection breaks — which only happens outside the protocol,
        e.g. if the server process is killed uncleanly.
        """
        self.connect()
        assert self._file is not None
        req = dict(payload)
        req.setdefault("id", next(self._ids))
        try:
            self._file.write((json.dumps(req) + "\n").encode("utf-8"))
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            self.close()
            raise ServeError(
                f"connection to {self.host}:{self.port} failed: {exc}",
                code="transport",
            ) from exc
        if not line:
            self.close()
            raise ServeError(
                f"server {self.host}:{self.port} closed the connection",
                code="transport",
            )
        response = json.loads(line.decode("utf-8"))
        if not response.get("ok", False):
            raise ServeRequestError(response.get("error", {}))
        return response

    # ------------------------------------------------------------------
    # convenience verbs

    def ping(self) -> Dict[str, Any]:
        return self.request({"type": "ping"})

    def submit(
        self,
        spec: Dict[str, Any],
        *,
        wait: bool = False,
        wait_timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit a job spec; returns the job payload.

        With ``wait=True`` the job payload is terminal (state ``done``,
        ``failed``, or ``cancelled``) — one round trip for small jobs.

        A ``queue_full`` shed is retried up to ``shed_retries`` times,
        sleeping the server's ``retry_after_s`` hint (falling back to a
        capped exponential backoff when the hint is missing) between
        attempts.  Construct the client with ``shed_retries=0`` to
        surface the first shed unchanged.
        """
        req: Dict[str, Any] = {"type": "submit", "spec": spec}
        if wait:
            req["wait"] = True
            if wait_timeout_s is not None:
                req["wait_timeout_s"] = wait_timeout_s
        attempt = 0
        while True:
            try:
                return self.request(req)["job"]
            except ServeRequestError as exc:
                if exc.code != "queue_full" or attempt >= self.shed_retries:
                    raise
                attempt += 1
                hint = exc.retry_after_s
                delay = (
                    float(hint)
                    if hint is not None and hint > 0
                    else self.shed_backoff_s * (2 ** (attempt - 1))
                )
                time.sleep(min(delay, MAX_SHED_BACKOFF_S))

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request({"type": "status", "job_id": job_id})["job"]

    def result(
        self, job_id: str, *, timeout_s: Optional[float] = None
    ) -> Dict[str, Any]:
        req: Dict[str, Any] = {"type": "result", "job_id": job_id}
        if timeout_s is not None:
            req["timeout_s"] = timeout_s
        return self.request(req)["job"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request({"type": "cancel", "job_id": job_id})["job"]

    def metrics(self) -> Dict[str, Any]:
        return self.request({"type": "metrics"})["metrics"]

    def metrics_text(self) -> str:
        return self.request({"type": "metrics", "format": "text"})["text"]

    def stats(self) -> Dict[str, Any]:
        return self.request({"type": "stats"})["stats"]

    def drain(self) -> Dict[str, Any]:
        return self.request({"type": "drain"})


def read_ready_file(path: str) -> Dict[str, Any]:
    """Parse the server's ``--ready-file`` into ``{"host", "port"}``."""
    with open(path, "r", encoding="utf-8") as fh:
        host, port = fh.read().split()
    return {"host": host, "port": int(port)}
