"""Live service metrics: counters, gauges, and latency histograms.

A deliberately small, stdlib-only observability layer for
:mod:`repro.serve` — the serving analogue of the sweep runner's
:class:`~repro.sim.stats.SweepCounters`.  Three instrument kinds:

* :class:`Counter` — monotone event totals (jobs submitted, shed, batches
  executed, replay hits);
* :class:`Gauge` — point-in-time levels (queue depth, jobs in flight);
* :class:`Histogram` — latency/size distributions over a bounded
  reservoir of the most recent observations, summarized as
  count/sum/min/max plus p50/p95/p99.

All instruments are thread-safe: the scheduler's executor threads observe
service latencies while the asyncio loop reads snapshots.  The registry
renders either a JSON-safe :meth:`MetricsRegistry.snapshot` (served by the
``metrics`` request) or a Prometheus-flavoured text dump
(:meth:`MetricsRegistry.render_text`) for humans and scrapers.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple, Union

#: histograms keep the most recent N observations for percentile math;
#: count/sum/min/max remain exact over the full lifetime
DEFAULT_RESERVOIR = 4096

#: the quantiles every histogram summarizes
QUANTILES = (0.5, 0.95, 0.99)


class Counter:
    """Monotonically non-decreasing event count."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            # a negative inc() is a server-side bug; the catch-all
            # 'internal' wire code is exactly what it should surface as
            # via: ignore[VIA601] -- API-misuse guard, not a wire error
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time level; can move both ways."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: Union[int, float]) -> None:
        with self._lock:
            self._value += delta

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.add(amount)

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.add(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return float("nan")
    rank = min(len(sorted_values), max(1, math.ceil(q * len(sorted_values))))
    return sorted_values[rank - 1]


class Histogram:
    """Distribution summary over a bounded reservoir of observations.

    The reservoir holds the most recent ``max_samples`` values (a ring
    buffer), so percentiles reflect recent behaviour under long uptimes
    while ``count``/``sum``/``min``/``max`` stay exact for the lifetime.
    """

    def __init__(
        self, name: str, help: str = "", max_samples: int = DEFAULT_RESERVOIR
    ):
        if max_samples < 1:
            # via: ignore[VIA601] -- constructor guard, unreachable from a request
            raise ValueError("max_samples must be >= 1")
        self.name = name
        self.help = help
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._next = 0  # ring-buffer write cursor once full
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if len(self._samples) < self.max_samples:
                self._samples.append(value)
            else:
                self._samples[self._next] = value
                self._next = (self._next + 1) % self.max_samples

    def quantiles(self) -> Dict[float, float]:
        with self._lock:
            ordered = sorted(self._samples)
        return {q: percentile(ordered, q) for q in QUANTILES}

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            ordered = sorted(self._samples)
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        out: Dict[str, float] = {
            "count": count,
            "sum": total,
            "min": lo if count else float("nan"),
            "max": hi if count else float("nan"),
        }
        for q in QUANTILES:
            out[f"p{int(q * 100)}"] = percentile(ordered, q)
        return out

    @property
    def count(self) -> int:
        with self._lock:
            return self._count


class MetricsRegistry:
    """Named instruments plus snapshot/text rendering.

    ``counter``/``gauge``/``histogram`` are get-or-create and idempotent;
    asking for an existing name with a different instrument kind raises,
    because silently aliasing two meanings under one name is how metrics
    lie.
    """

    def __init__(self, prefix: str = "serve"):
        self.prefix = prefix
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    # two call sites disagreeing on a metric's kind is a
                    # server bug, so the 'internal' code is the honest one
                    # via: ignore[VIA601] -- registry-misuse guard
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            metric = kind(name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(
        self, name: str, help: str = "", max_samples: int = DEFAULT_RESERVOIR
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, help=help, max_samples=max_samples
        )

    def _items(self) -> List[Tuple[str, Union[Counter, Gauge, Histogram]]]:
        with self._lock:
            return sorted(self._metrics.items())

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe dump of every instrument (served by ``metrics``)."""
        out: Dict[str, object] = {}
        for name, metric in self._items():
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot()
            else:
                out[name] = metric.value
        return out

    def render_text(self) -> str:
        """Prometheus-flavoured text dump (one scrape-able page)."""
        lines: List[str] = []
        for name, metric in self._items():
            full = f"{self.prefix}_{name}"
            if metric.help:
                lines.append(f"# HELP {full} {metric.help}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {full} counter")
                lines.append(f"{full} {metric.value:g}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {full} gauge")
                lines.append(f"{full} {metric.value:g}")
            else:
                snap = metric.snapshot()
                lines.append(f"# TYPE {full} summary")
                for q in QUANTILES:
                    lines.append(
                        f'{full}{{quantile="{q}"}} {snap[f"p{int(q * 100)}"]:g}'
                    )
                lines.append(f"{full}_count {snap['count']:g}")
                lines.append(f"{full}_sum {snap['sum']:g}")
        return "\n".join(lines) + "\n"


def timed(histogram: Histogram):
    """Context manager observing a block's wall time into ``histogram``."""
    import contextlib
    import time

    @contextlib.contextmanager
    def _timer():
        start = time.perf_counter()
        try:
            yield
        finally:
            histogram.observe(time.perf_counter() - start)

    return _timer()
