"""JSON-lines-over-TCP front end for the simulation service.

Wire protocol: one JSON object per line in each direction.  Every request
carries a ``type`` and an optional client-chosen ``id``; the response
echoes the ``id`` and carries ``ok`` plus either result fields or a
structured ``error`` object (``code`` / ``reason`` / ``retry_after_s``).
Request types:

========  ==============================================================
type      behaviour
========  ==============================================================
ping      liveness + server version
submit    admit a job spec; ``wait: true`` blocks until the job is
          terminal and returns its full payload in one round trip
status    snapshot of one job (state, timings, result/error if terminal)
result    block until a job is terminal (optional ``timeout_s``)
cancel    cancel a job (a running job's pool worker is killed and its
          slot respawned; the job resolves ``cancelled`` promptly)
metrics   the metrics registry — JSON snapshot or ``format: "text"`` dump
stats     cheap scheduler stats (queue depth, in-flight, uptime)
drain     begin graceful shutdown (same path as SIGTERM)
========  ==============================================================

Requests on one connection are served concurrently (a slow ``result``
wait never blocks a ``metrics`` scrape on the same socket); writes are
serialized per connection and responses carry the request ``id`` so
clients can match them.

**Graceful drain** (SIGTERM/SIGINT or a ``drain`` request): new
submissions are refused with code ``draining``, queued jobs are cancelled
with structured payloads, in-flight jobs run to completion, every blocked
waiter receives its response, and only then do the sockets close and the
worker pool's subprocesses get reaped.  No response is ever dropped on
the floor, and no worker process outlives the server.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from typing import Any, Dict, Optional

import repro
from repro.errors import ServeError
from repro.serve.jobs import JobSpec, error_payload
from repro.serve.scheduler import Scheduler

#: protocol revision, echoed by ``ping``
PROTOCOL_VERSION = 1

#: default cap on one request line (a malformed client must not OOM us)
MAX_LINE_BYTES = 1 << 20


def _error_response(req_id, exc: BaseException) -> Dict[str, Any]:
    return {"id": req_id, "ok": False, "error": error_payload(exc)}


class ViaServer:
    """Asyncio TCP server wrapping one :class:`Scheduler`."""

    def __init__(
        self,
        scheduler: Scheduler,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        ready_file: Optional[str] = None,
    ):
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.ready_file = ready_file
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()
        self._shutdown = asyncio.Event()
        self._drain_started = False

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the scheduler's batching stage."""
        await self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.ready_file:
            # written atomically so a watcher never reads a torn address
            import os
            from pathlib import Path

            ready = Path(self.ready_file)
            ready.parent.mkdir(parents=True, exist_ok=True)
            tmp = ready.with_name(ready.name + ".tmp")
            tmp.write_text(f"{self.host} {self.port}\n")
            os.replace(tmp, ready)

    async def serve_forever(self, *, install_signal_handlers: bool = True) -> None:
        """Serve until SIGTERM/SIGINT (or a ``drain`` request), then drain."""
        if self._server is None:
            await self.start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(
                        sig, lambda s=sig: self.request_shutdown(f"signal {s}")
                    )
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # non-POSIX loop: rely on the drain request
        await self._shutdown.wait()
        await self.shutdown()

    def request_shutdown(self, reason: str = "requested") -> None:
        """Flip the shutdown latch (idempotent, signal-handler safe)."""
        if not self._shutdown.is_set():
            print(f"serve: shutdown requested ({reason}); draining",
                  file=sys.stderr, flush=True)
            self._shutdown.set()

    async def shutdown(self) -> None:
        """Drain the scheduler, flush every waiter, close the sockets."""
        if self._drain_started:
            return
        self._drain_started = True
        summary = await self.scheduler.drain()
        # every job is now terminal, so blocked waiters resolve promptly;
        # give their handlers a bounded window to write responses
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        await self.scheduler.stop()
        print(
            f"serve: drained (cancelled {summary['cancelled']} queued, "
            f"waited on {summary['completed_inflight']} in-flight); bye",
            file=sys.stderr,
            flush=True,
        )

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        write_lock = asyncio.Lock()
        request_tasks: set = set()

        async def respond(payload: Dict[str, Any]) -> None:
            data = (json.dumps(payload) + "\n").encode("utf-8")
            async with write_lock:
                writer.write(data)
                try:
                    await writer.drain()
                except (ConnectionError, RuntimeError):  # client went away
                    raise ConnectionResetError from None

        async def serve_one(line: bytes) -> None:
            req_id = None
            try:
                request = json.loads(line.decode("utf-8"))
                if not isinstance(request, dict):
                    raise ServeError(
                        "request must be a JSON object", code="bad_request"
                    )
                req_id = request.get("id")
                response = await self._dispatch(request)
                response.setdefault("id", req_id)
                response.setdefault("ok", True)
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                response = _error_response(
                    req_id,
                    ServeError(f"undecodable request: {exc}", code="bad_request"),
                )
            except Exception as exc:
                response = _error_response(req_id, exc)
            try:
                await respond(response)
            except ConnectionResetError:
                pass

        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                sub = asyncio.create_task(serve_one(line))
                request_tasks.add(sub)
                sub.add_done_callback(request_tasks.discard)
        except asyncio.CancelledError:
            pass
        finally:
            if request_tasks:
                # let in-flight requests (e.g. result waits during drain)
                # finish writing before the socket closes under them
                await asyncio.gather(*request_tasks, return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        rtype = request.get("type")
        if rtype == "ping":
            return {
                "pong": True,
                "version": repro.__version__,
                "protocol": PROTOCOL_VERSION,
                "draining": self.scheduler.draining,
            }
        if rtype == "submit":
            spec = JobSpec.from_payload(request.get("spec", {}))
            job = self.scheduler.submit(spec)  # raises AdmissionError to shed
            if request.get("wait"):
                timeout = request.get("wait_timeout_s")
                try:
                    job = await self.scheduler.wait(job.job_id, timeout)
                except asyncio.TimeoutError:
                    raise ServeError(
                        f"job {job.job_id} still {job.state.value} after "
                        f"wait_timeout_s={timeout}; poll 'result' later",
                        code="wait_timeout",
                        retry_after_s=1.0,
                    ) from None
            return {"job": job.to_payload()}
        if rtype == "status":
            job = self.scheduler.get(self._job_id(request))
            return {"job": job.to_payload()}
        if rtype == "result":
            timeout = request.get("timeout_s")
            job_id = self._job_id(request)
            try:
                job = await self.scheduler.wait(job_id, timeout)
            except asyncio.TimeoutError:
                raise ServeError(
                    f"job {job_id} did not finish within timeout_s={timeout}",
                    code="wait_timeout",
                    retry_after_s=1.0,
                ) from None
            return {"job": job.to_payload()}
        if rtype == "cancel":
            job = self.scheduler.cancel(self._job_id(request))
            return {"job": job.to_payload()}
        if rtype == "metrics":
            if request.get("format") == "text":
                return {"text": self.scheduler.metrics.render_text()}
            return {"metrics": self.scheduler.metrics.snapshot()}
        if rtype == "stats":
            return {"stats": self.scheduler.stats()}
        if rtype == "drain":
            self.request_shutdown("drain request")
            return {"draining": True}
        raise ServeError(
            f"unknown request type {rtype!r}", code="bad_request"
        )

    @staticmethod
    def _job_id(request: Dict[str, Any]) -> str:
        job_id = request.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise ServeError(
                "request needs a string 'job_id'", code="bad_request"
            )
        return job_id
