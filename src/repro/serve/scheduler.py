"""Asyncio job scheduler: admission control, batching, execution.

The scheduler is the service's brain.  Requests flow through four stages:

1. **admission** — a bounded queue.  A submit that would exceed
   ``max_queue`` is *shed immediately* with a structured ``queue_full``
   error carrying ``retry_after_s`` (backpressure the client can act on);
   once the service drains, submits are refused with ``draining``.
2. **batching** — a short ``batch_window_s`` collects concurrently-arriving
   jobs, orders them by priority, and groups jobs whose
   :meth:`~repro.serve.jobs.JobSpec.batch_key` matches.  Replay-family keys
   exclude SSPM ports, so an entire port sweep lands in one batch and is
   served by **one** op-stream recording: the first job records (replay
   units self-heal on a store miss), every later job re-prices the stored
   streams.
3. **execution** — each batch runs on a thread pool via the existing
   :func:`repro.eval.runner.run_units`, inheriting the PR-1 result cache,
   the PR-2 :class:`~repro.eval.recordings.RecordingStore`, per-unit fault
   capture, and invariant checking.  Per-job ``timeout_s`` is enforced
   with :func:`asyncio.wait_for`; a timed-out job is failed (code
   ``timeout``) and its executor thread abandoned — the late result is
   discarded, never reported.
4. **completion** — deadlines are re-checked at dispatch
   (``deadline_exceeded``), cancellations are honoured for queued jobs,
   and every terminal transition feeds the metrics registry: queue-wait /
   service-time histograms, shed/cancel counters, replay and result-cache
   hit counters, queue-depth and in-flight gauges.

The scheduler owns no sockets — :mod:`repro.serve.server` is one frontend;
tests drive the scheduler directly.
"""

from __future__ import annotations

import asyncio
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import AdmissionError, JobCancelled, ServeError
from repro.serve.jobs import (
    Job,
    JobSpec,
    JobState,
    error_payload,
    expand_sweep,
)
from repro.serve.metrics import MetricsRegistry


@dataclass(frozen=True)
class ServiceConfig:
    """Operating envelope of one scheduler instance.

    ``max_queue`` bounds *queued* (admitted but not dispatched) jobs —
    the knob that turns overload into fast structured shedding instead of
    unbounded latency.  ``batch_window_s`` trades a little latency for
    batching opportunity; ``executor_workers`` bounds concurrent batches.
    ``cache_dir``/``record_dir`` plug the service into the result cache
    and recording store (both default to per-instance temp directories).
    """

    max_queue: int = 64
    batch_window_s: float = 0.02
    max_batch: int = 16
    executor_workers: int = 2
    default_timeout_s: float = 120.0
    drain_timeout_s: float = 30.0
    retry_after_s: float = 0.25
    cache_dir: Optional[str] = None
    record_dir: Optional[str] = None
    validate: bool = False

    def __post_init__(self):
        if self.max_queue < 1:
            raise ServeError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.executor_workers < 1:
            raise ServeError(
                f"executor_workers must be >= 1, got {self.executor_workers}"
            )
        if self.batch_window_s < 0:
            raise ServeError(
                f"batch_window_s must be >= 0, got {self.batch_window_s}"
            )
        if self.default_timeout_s <= 0:
            raise ServeError(
                f"default_timeout_s must be > 0, got {self.default_timeout_s}"
            )


class Scheduler:
    """Admission queue + batcher + executor; see the module docstring."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if self.config.cache_dir is None or self.config.record_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
        base = self._tmp.name if self._tmp is not None else ""
        self.cache_dir = self.config.cache_dir or f"{base}/cache"
        self.record_dir = self.config.record_dir or f"{base}/recordings"
        self.jobs: Dict[str, Job] = {}
        self._queue: List[Tuple[int, int, Job]] = []  # (-priority, seq, job)
        self._seq = 0
        self._wakeup: Optional[asyncio.Event] = None
        self._done_events: Dict[str, asyncio.Event] = {}
        self._batcher: Optional[asyncio.Task] = None
        self._inflight: set = set()
        self._executor: Optional[ThreadPoolExecutor] = None
        #: guards the job flags that cross the loop↔executor boundary
        #: (``abandoned``, ``cancel_requested``): the loop sets them, the
        #: executor's sleep/poll loops read them mid-run
        self._lock = threading.Lock()
        self._draining = False
        self._stopped = False
        self.started_at = time.monotonic()
        m = self.metrics
        self._m_submitted = m.counter("jobs_submitted", "jobs admitted")
        self._m_shed = m.counter("jobs_shed", "submissions rejected at admission")
        self._m_done = m.counter("jobs_completed", "jobs finished successfully")
        self._m_failed = m.counter("jobs_failed", "jobs finished with an error")
        self._m_cancelled = m.counter("jobs_cancelled", "jobs cancelled before completion")
        self._m_batches = m.counter("batches_executed", "scheduler batches dispatched")
        self._m_batched_jobs = m.counter(
            "jobs_batched", "jobs that shared a batch with at least one other job"
        )
        self._m_replay_hits = m.counter(
            "replay_hits", "replay units served from an existing recording"
        )
        self._m_replay_misses = m.counter(
            "replay_misses", "replay units that had to record first"
        )
        self._m_cache_hits = m.counter(
            "cache_hits", "work units served from the result cache"
        )
        self._m_cache_misses = m.counter(
            "cache_misses", "work units that missed the result cache"
        )
        self._m_units = m.counter("units_executed", "work units run to completion")
        self._m_engine_fallback = m.counter(
            "engine_fallback",
            "pricing fell back to the scalar engine (non-integral latency)",
        )
        self._m_narration_flushes = m.counter(
            "narration_flushes",
            "columnar builder flushes on the batched record path",
        )
        self._m_depth = m.gauge("queue_depth", "jobs admitted and waiting")
        self._m_inflight = m.gauge("jobs_inflight", "jobs currently executing")
        self._m_queue_wait = m.histogram(
            "queue_wait_seconds", "admission-to-dispatch wait"
        )
        self._m_service = m.histogram(
            "service_seconds", "dispatch-to-completion time"
        )
        self._m_batch_size = m.histogram("batch_size", "jobs per executed batch")

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        """Start the batching stage (must run inside the event loop)."""
        if self._batcher is not None:
            return
        self._wakeup = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="repro-serve",
        )
        self._batcher = asyncio.create_task(self._batch_loop(), name="serve-batcher")
        if self._queue:  # jobs admitted before the batcher existed
            self._wakeup.set()

    async def stop(self) -> None:
        """Hard stop: cancel the batcher, release the executor."""
        self._stopped = True
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    async def drain(self) -> Dict[str, int]:
        """Graceful shutdown of the work stages.

        New submissions are already refused (``draining``); every queued
        job is cancelled with a structured payload, in-flight batches are
        awaited (bounded by ``drain_timeout_s``), and waiters are
        released.  Returns a small summary for the server's log line.
        """
        self._draining = True
        cancelled = 0
        for _, _, job in self._queue:
            if not job.terminal:
                self._finish(
                    job,
                    JobState.CANCELLED,
                    error=error_payload(
                        JobCancelled(
                            "service drained before the job was dispatched",
                            code="drained",
                        )
                    ),
                )
                cancelled += 1
        self._queue.clear()
        self._m_depth.set(0)
        if self._wakeup is not None:
            self._wakeup.set()
        waited = list(self._inflight)
        if waited:
            done, pending = await asyncio.wait(
                waited, timeout=self.config.drain_timeout_s
            )
            for task in pending:  # pragma: no cover - drain timeout
                task.cancel()
        return {"cancelled": cancelled, "completed_inflight": len(waited)}

    # ------------------------------------------------------------------
    # admission

    def submit(self, spec: JobSpec) -> Job:
        """Admit one job or shed it with a structured admission error."""
        if self._draining or self._stopped:
            self._m_shed.inc()
            raise AdmissionError(
                "service is draining and no longer admits jobs",
                code="draining",
            )
        if len(self._queue) >= self.config.max_queue:
            self._m_shed.inc()
            raise AdmissionError(
                f"admission queue is full ({self.config.max_queue} jobs); "
                "retry after the suggested backoff",
                code="queue_full",
                retry_after_s=self.config.retry_after_s,
            )
        job = Job(spec=spec)
        self.jobs[job.job_id] = job
        self._done_events[job.job_id] = asyncio.Event()
        self._seq += 1
        self._queue.append((-spec.priority, self._seq, job))
        self._m_submitted.inc()
        self._m_depth.set(len(self._queue))
        if self._wakeup is not None:
            self._wakeup.set()
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise ServeError(
                f"unknown job id {job_id!r}", code="not_found"
            ) from None

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job; a running job only gets the flag set."""
        job = self.get(job_id)
        if job.terminal:
            return job
        with self._lock:
            job.cancel_requested = True
        if job.state == JobState.PENDING:
            self._queue = [entry for entry in self._queue if entry[2] is not job]
            self._m_depth.set(len(self._queue))
            self._finish(
                job,
                JobState.CANCELLED,
                error=error_payload(JobCancelled("cancelled by client request")),
            )
        return job

    async def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until a job reaches a terminal state (or raise timeout)."""
        job = self.get(job_id)
        event = self._done_events.get(job_id)
        if job.terminal or event is None:
            return job
        await asyncio.wait_for(event.wait(), timeout)
        return job

    # ------------------------------------------------------------------
    # batching stage

    async def _batch_loop(self) -> None:
        assert self._wakeup is not None
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if not self._queue:
                continue
            if self.config.batch_window_s > 0:
                # let concurrently-arriving compatible jobs join the batch
                await asyncio.sleep(self.config.batch_window_s)
            batch_entries = sorted(self._queue)  # priority, then arrival
            self._queue.clear()
            self._m_depth.set(0)
            groups: List[Tuple[str, List[Job]]] = []
            open_group: Dict[str, List[Job]] = {}
            for _, _, job in batch_entries:
                if job.terminal:  # cancelled while queued
                    continue
                key = job.spec.batch_key()
                bucket = open_group.get(key)
                if bucket is None or len(bucket) >= self.config.max_batch:
                    bucket = []
                    open_group[key] = bucket
                    groups.append((key, bucket))
                bucket.append(job)
            for key, group in groups:
                task = asyncio.create_task(
                    self._run_batch(group), name=f"serve-batch-{key[:8]}"
                )
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)

    # ------------------------------------------------------------------
    # execution stage

    async def _run_batch(self, group: List[Job]) -> None:
        loop = asyncio.get_running_loop()
        self._m_batches.inc()
        self._m_batch_size.observe(len(group))
        if len(group) > 1:
            self._m_batched_jobs.inc(len(group))
        for job in group:
            if job.terminal:
                continue
            if job.cancel_requested:
                self._finish(
                    job,
                    JobState.CANCELLED,
                    error=error_payload(
                        JobCancelled("cancelled before dispatch")
                    ),
                )
                continue
            if job.deadline_exceeded():
                self._finish(
                    job,
                    JobState.FAILED,
                    error=error_payload(
                        ServeError(
                            f"deadline of {job.spec.deadline_s}s expired "
                            "while the job was queued",
                            code="deadline_exceeded",
                            retry_after_s=self.config.retry_after_s,
                        )
                    ),
                )
                continue
            job.state = JobState.RUNNING
            job.started_at = time.monotonic()
            job.batch_size = len(group)
            self._m_inflight.add(1)
            self._m_queue_wait.observe(job.queue_wait_s())
            timeout = (
                job.spec.timeout_s
                if job.spec.timeout_s is not None
                else self.config.default_timeout_s
            )
            try:
                result = await asyncio.wait_for(
                    loop.run_in_executor(self._executor, self._execute_job, job),
                    timeout,
                )
                if not job.abandoned:
                    self._finish(job, JobState.DONE, result=result)
            except asyncio.TimeoutError:
                with self._lock:
                    job.abandoned = True  # discard the late executor result
                self._finish(
                    job,
                    JobState.FAILED,
                    error=error_payload(
                        ServeError(
                            f"job exceeded its {timeout:.4g}s execution "
                            "timeout",
                            code="timeout",
                            retry_after_s=self.config.retry_after_s,
                        )
                    ),
                )
            except Exception as exc:  # per-job fault isolation
                self._finish(job, JobState.FAILED, error=error_payload(exc))
            finally:
                self._m_inflight.add(-1)

    # -- executor-thread side ------------------------------------------

    def _execute_job(self, job: Job) -> Dict[str, Any]:
        """Run one job synchronously (thread pool); returns the payload."""
        spec = job.spec
        if spec.kind == "sleep":
            deadline = time.monotonic() + spec.duration_s
            while time.monotonic() < deadline:
                with self._lock:
                    stop = job.abandoned or job.cancel_requested
                if stop:
                    break
                time.sleep(min(0.01, max(0.0, deadline - time.monotonic())))
            return {"slept_s": spec.duration_s}
        if spec.kind == "report":
            from repro.sim import table1
            from repro.via import table2

            return {"text": table1() + "\n" + table2()}
        if spec.kind == "sweep":
            configs = expand_sweep(spec)
            per_config: Dict[str, Any] = {}
            for sub in configs:
                per_config[f"{sub.sram_kb}_{sub.ports}p"] = self._run_sim(job, sub)
            return {"configs": per_config}
        return self._run_sim(job, spec)

    def _run_sim(self, job: Job, spec: JobSpec) -> Dict[str, Any]:
        """Execute a simulate/replay spec through the sweep runner."""
        from repro.eval.harness import geomean
        from repro.eval.runner import RunnerConfig, run_units

        units = self._build_units(spec)
        if spec.kind == "replay":
            self._count_replay_hits(units)
        config = RunnerConfig(
            workers=1,
            cache_dir=self.cache_dir,
            capture_errors=True,
        )
        result = run_units(units, config)
        self._m_units.inc(len(units))
        self._m_cache_hits.inc(result.counters.cache_hits)
        self._m_cache_misses.inc(result.counters.cache_misses)
        if result.counters.engine_fallback:
            self._m_engine_fallback.inc(result.counters.engine_fallback)
        if result.counters.narration_flushes:
            self._m_narration_flushes.inc(result.counters.narration_flushes)
        if result.failures:
            first = result.failures[0]
            raise ServeError(
                f"{len(result.failures)} of {len(units)} work unit(s) "
                f"failed; first: {first.kind}/{first.name}: {first.error}",
                code="unit_failed",
            )
        records = [
            {"name": r.name, "n": r.n, "nnz": r.nnz, "speedup": dict(r.speedup)}
            for r in result.records
        ]
        fmts = sorted(result.records[0].speedup) if result.records else []
        summary = {
            fmt: geomean(
                (r.speedup[fmt] for r in result.records if fmt in r.speedup),
                warn_label=f"serve geomean {fmt}",
            )
            for fmt in fmts
        }
        return {
            "records": records,
            "geomean_speedup": summary,
            "counters": {
                "units_ok": result.counters.units_ok,
                "units_cached": result.counters.units_cached,
                "cache_hits": result.counters.cache_hits,
                "cache_misses": result.counters.cache_misses,
                "engine_fallback": result.counters.engine_fallback,
                "narration_flushes": result.counters.narration_flushes,
            },
        }

    def _build_units(self, spec: JobSpec):
        from repro.eval.units import (
            replay_units,
            spma_units,
            spmm_units,
            spmv_units,
        )
        from repro.matrices.collection import MatrixCollection
        from repro.via.config import ViaConfig

        collection = MatrixCollection(
            spec.count, seed=spec.seed, min_n=spec.min_n, max_n=spec.max_n
        )
        via = ViaConfig(spec.sram_kb, spec.ports)
        if spec.kernel == "spmv":
            units = spmv_units(
                collection,
                formats=spec.formats,
                via_config=via,
                validate=self.config.validate,
            )
        elif spec.kernel == "spma":
            units = spma_units(
                collection, via_config=via, validate=self.config.validate
            )
        else:
            units = spmm_units(
                collection,
                via_config=via,
                max_n=spec.max_n,
                validate=self.config.validate,
            )
        if spec.kind == "replay":
            units = replay_units(
                units, record_dir=self.record_dir, engine=spec.engine
            )
        return units

    def _count_replay_hits(self, units) -> None:
        """Score replay units against the store *before* execution.

        A unit whose recording artifact already exists is a replay hit —
        it will re-price stored streams instead of running the kernel;
        a miss records first (self-heal).  Counted here because the
        self-healing replay path hides the distinction downstream.
        """
        from repro.eval.recordings import RecordingStore, recording_key
        from repro.eval.runner import code_version

        store = RecordingStore(self.record_dir)
        code = code_version()
        for unit in units:
            if store.has(recording_key(unit, code, part="via")) and store.has(
                recording_key(unit, code, part="base")
            ):
                self._m_replay_hits.inc()
            else:
                self._m_replay_misses.inc()

    # ------------------------------------------------------------------
    # completion

    def _finish(
        self,
        job: Job,
        state: JobState,
        *,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[Dict[str, Any]] = None,
    ) -> None:
        if job.terminal:
            return
        job.state = state
        job.finished_at = time.monotonic()
        job.result = result
        job.error = error
        if job.started_at is not None:
            self._m_service.observe(job.finished_at - job.started_at)
        if state == JobState.DONE:
            self._m_done.inc()
        elif state == JobState.CANCELLED:
            self._m_cancelled.inc()
        else:
            self._m_failed.inc()
        event = self._done_events.get(job.job_id)
        if event is not None:
            event.set()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Cheap point-in-time service stats (the ``stats`` request)."""
        states: Dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state.value] = states.get(job.state.value, 0) + 1
        return {
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "queue_depth": self.queue_depth,
            "inflight": self.inflight,
            "draining": self._draining,
            "jobs_by_state": states,
            "cache_dir": self.cache_dir,
            "record_dir": self.record_dir,
        }
