"""Asyncio job scheduler: admission control, batching, pooled execution.

The scheduler is the service's brain.  Requests flow through four stages:

1. **admission** — a bounded queue.  A submit that would exceed
   ``max_queue`` is *shed immediately* with a structured ``queue_full``
   error carrying ``retry_after_s`` (backpressure the client can act on);
   once the service drains, submits are refused with ``draining``.
2. **batching** — a short ``batch_window_s`` collects concurrently-arriving
   jobs, orders them by priority, and groups jobs whose
   :meth:`~repro.serve.jobs.JobSpec.batch_key` matches.  Replay-family keys
   exclude SSPM ports, so an entire port sweep lands in one batch and is
   served by **one** op-stream recording: the first job records (replay
   units self-heal on a store miss), every later job re-prices the stored
   streams.
3. **execution** — each batch is dispatched job-by-job to the supervised
   subprocess :class:`~repro.serve.pool.WorkerPool`: long-lived workers
   with warm imports, futures-over-pipes, crash isolation.  A worker that
   segfaults or is OOM-killed loses only its own job (retried with
   backoff, then failed ``worker_crash``); a job past its ``timeout_s``
   gets its worker SIGKILLed and the slot respawned — the structured
   ``timeout`` error marks the job ``abandoned``; a job that keeps
   killing workers trips the per-key poison circuit breaker
   (``poison_job``).  Cancelling a *running* job kills its worker and
   reclaims the slot.  Results inherit the PR-1 result cache, the PR-2
   :class:`~repro.eval.recordings.RecordingStore`, per-unit fault capture,
   and invariant checking via :mod:`repro.serve.execution`.
4. **completion** — deadlines are re-checked at dispatch
   (``deadline_exceeded``), cancellations are honoured for queued jobs,
   and every terminal transition feeds the metrics registry: queue-wait /
   service-time histograms, shed/cancel counters, replay and result-cache
   hit counters, queue-depth / in-flight gauges, and the pool's own
   health instruments (restarts, poison count, respawn latency).

The scheduler owns no sockets — :mod:`repro.serve.server` is one frontend;
tests drive the scheduler directly.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import AdmissionError, JobCancelled, ServeError
from repro.serve.chaos import ChaosConfig
from repro.serve.jobs import (
    Job,
    JobSpec,
    JobState,
    error_payload,
)
from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import PoolConfig, PoolTask, WorkerPool


@dataclass(frozen=True)
class ServiceConfig:
    """Operating envelope of one scheduler instance.

    ``max_queue`` bounds *queued* (admitted but not dispatched) jobs —
    the knob that turns overload into fast structured shedding instead of
    unbounded latency.  ``batch_window_s`` trades a little latency for
    batching opportunity; ``executor_workers`` sizes the subprocess
    worker pool (concurrent jobs).  ``pool_retries``/``pool_backoff_s``
    govern retry of jobs whose worker died; ``poison_threshold`` is the
    per-key crash budget before the circuit breaker opens.
    ``cache_dir``/``record_dir`` plug the service into the result cache
    and recording store (both default to per-instance temp directories);
    ``chaos`` injects a deterministic fault plan into the workers.

    ``model_dir`` points at a :class:`~repro.model.store.ModelStore`
    whose LATEST artifact backs ``estimate`` jobs and cost-aware
    admission (absent/empty → the deterministic analytic fallback).
    ``max_queue_cost`` switches admission to predicted-cost accounting:
    on top of the ``max_queue`` slot bound, the sum of predicted cycles
    queued may not exceed it — a queue full of cheap report jobs admits
    many, one monster sweep fills it alone — and batches dispatch
    cheapest-first within a priority level.  ``None`` (the default)
    keeps the historical flat-slot behaviour exactly.
    """

    max_queue: int = 64
    batch_window_s: float = 0.02
    max_batch: int = 16
    executor_workers: int = 2
    default_timeout_s: float = 120.0
    drain_timeout_s: float = 30.0
    retry_after_s: float = 0.25
    pool_retries: int = 2
    pool_backoff_s: float = 0.05
    poison_threshold: int = 3
    spawn_timeout_s: float = 60.0
    mp_context: Optional[str] = None
    chaos: Optional[ChaosConfig] = None
    cache_dir: Optional[str] = None
    record_dir: Optional[str] = None
    validate: bool = False
    model_dir: Optional[str] = None
    max_queue_cost: Optional[float] = None

    def __post_init__(self):
        if self.max_queue_cost is not None and self.max_queue_cost <= 0:
            raise ServeError(
                f"max_queue_cost must be > 0, got {self.max_queue_cost}"
            )
        if self.max_queue < 1:
            raise ServeError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.executor_workers < 1:
            raise ServeError(
                f"executor_workers must be >= 1, got {self.executor_workers}"
            )
        if self.batch_window_s < 0:
            raise ServeError(
                f"batch_window_s must be >= 0, got {self.batch_window_s}"
            )
        if self.default_timeout_s <= 0:
            raise ServeError(
                f"default_timeout_s must be > 0, got {self.default_timeout_s}"
            )

    def pool_config(self) -> PoolConfig:
        """The worker-pool slice of this service configuration."""
        return PoolConfig(
            workers=self.executor_workers,
            retries=self.pool_retries,
            backoff_s=self.pool_backoff_s,
            poison_threshold=self.poison_threshold,
            spawn_timeout_s=self.spawn_timeout_s,
            mp_context=self.mp_context,
            chaos=self.chaos,
        )


class Scheduler:
    """Admission queue + batcher + worker pool; see the module docstring."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if self.config.cache_dir is None or self.config.record_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
        base = self._tmp.name if self._tmp is not None else ""
        self.cache_dir = self.config.cache_dir or f"{base}/cache"
        self.record_dir = self.config.record_dir or f"{base}/recordings"
        self.jobs: Dict[str, Job] = {}
        # (-priority, cost, seq, job); cost is 0.0 unless cost-aware
        # admission is on, so the default order is untouched
        self._queue: List[Tuple[int, float, int, Job]] = []
        self._seq = 0
        # the estimator always loads: with no model_dir (or an empty
        # store) it is the deterministic analytic fallback, so estimate
        # jobs and cost accounting work before any model is trained
        from repro.model.cost import JobCostEstimator

        self.estimator = JobCostEstimator.load(self.config.model_dir)
        self._queue_cost = 0.0
        self._job_cost: Dict[str, float] = {}
        self._wakeup: Optional[asyncio.Event] = None
        self._done_events: Dict[str, asyncio.Event] = {}
        self._batcher: Optional[asyncio.Task] = None
        self._inflight: set = set()
        self.pool = WorkerPool(
            self.config.pool_config(), metrics=self.metrics
        )
        self._pool_tasks: Dict[str, PoolTask] = {}
        self._draining = False
        self._stopped = False
        self.started_at = time.monotonic()
        m = self.metrics
        self._m_submitted = m.counter("jobs_submitted", "jobs admitted")
        self._m_shed = m.counter("jobs_shed", "submissions rejected at admission")
        self._m_done = m.counter("jobs_completed", "jobs finished successfully")
        self._m_failed = m.counter("jobs_failed", "jobs finished with an error")
        self._m_cancelled = m.counter("jobs_cancelled", "jobs cancelled before completion")
        self._m_batches = m.counter("batches_executed", "scheduler batches dispatched")
        self._m_batched_jobs = m.counter(
            "jobs_batched", "jobs that shared a batch with at least one other job"
        )
        self._m_replay_hits = m.counter(
            "replay_hits", "replay units served from an existing recording"
        )
        self._m_replay_misses = m.counter(
            "replay_misses", "replay units that had to record first"
        )
        self._m_cache_hits = m.counter(
            "cache_hits", "work units served from the result cache"
        )
        self._m_cache_misses = m.counter(
            "cache_misses", "work units that missed the result cache"
        )
        self._m_units = m.counter("units_executed", "work units run to completion")
        self._m_engine_fallback = m.counter(
            "engine_fallback",
            "pricing fell back to the scalar engine (non-integral latency)",
        )
        self._m_narration_flushes = m.counter(
            "narration_flushes",
            "columnar builder flushes on the batched record path",
        )
        self._m_depth = m.gauge("queue_depth", "jobs admitted and waiting")
        self._m_inflight = m.gauge("jobs_inflight", "jobs currently executing")
        self._m_queue_wait = m.histogram(
            "queue_wait_seconds", "admission-to-dispatch wait"
        )
        self._m_service = m.histogram(
            "service_seconds", "dispatch-to-completion time"
        )
        self._m_batch_size = m.histogram("batch_size", "jobs per executed batch")
        self._m_estimate_hits = m.counter(
            "model_estimate_hits",
            "estimate jobs answered synchronously at admission",
        )
        self._m_cost_admitted = m.counter(
            "model_cost_admissions",
            "jobs admitted under predicted-cost accounting",
        )
        self._m_cost_shed = m.counter(
            "model_cost_shed",
            "submissions shed because the queue cost budget was exhausted",
        )
        self._m_queue_cost = m.gauge(
            "model_queue_cost", "predicted cycles of all queued jobs"
        )
        self._m_predict = m.histogram(
            "model_predict_seconds",
            "cost-model prediction latency (estimates and admission)",
        )

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        """Spawn the worker pool and start the batching stage."""
        if self._batcher is not None:
            return
        self._wakeup = asyncio.Event()
        self.pool.start()
        self._batcher = asyncio.create_task(self._batch_loop(), name="serve-batcher")
        if self._queue:  # jobs admitted before the batcher existed
            self._wakeup.set()

    async def stop(self) -> None:
        """Hard stop: cancel the batcher, reap the worker pool.

        Every outstanding pool future is resolved (code ``stopped``) and
        every worker subprocess is killed and joined — a timed-out or
        wedged job cannot leak a process past this call.
        """
        self._stopped = True
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        # reap the pool first: it resolves in-flight futures, which lets
        # the gathered batch tasks below finish promptly
        self.pool.stop()
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    async def drain(self) -> Dict[str, int]:
        """Graceful shutdown of the work stages.

        New submissions are already refused (``draining``); every queued
        job is cancelled with a structured payload, in-flight batches are
        awaited (bounded by ``drain_timeout_s``), and waiters are
        released.  Returns a small summary for the server's log line.
        """
        self._draining = True
        cancelled = 0
        for _, _, _, job in self._queue:
            self._release_cost(job)
            if not job.terminal:
                self._finish(
                    job,
                    JobState.CANCELLED,
                    error=error_payload(
                        JobCancelled(
                            "service drained before the job was dispatched",
                            code="drained",
                        )
                    ),
                )
                cancelled += 1
        self._queue.clear()
        self._m_depth.set(0)
        if self._wakeup is not None:
            self._wakeup.set()
        waited = list(self._inflight)
        if waited:
            done, pending = await asyncio.wait(
                waited, timeout=self.config.drain_timeout_s
            )
            for task in pending:  # pragma: no cover - drain timeout
                task.cancel()
        return {"cancelled": cancelled, "completed_inflight": len(waited)}

    # ------------------------------------------------------------------
    # admission

    def submit(self, spec: JobSpec) -> Job:
        """Admit one job or shed it with a structured admission error.

        ``estimate`` jobs never queue: they are resolved synchronously
        right here through the cost model (microseconds warm), reaching
        a terminal state before this method returns.
        """
        if self._draining or self._stopped:
            self._m_shed.inc()
            raise AdmissionError(
                "service is draining and no longer admits jobs",
                code="draining",
            )
        if spec.kind == "estimate":
            return self._resolve_estimate(spec)
        if len(self._queue) >= self.config.max_queue:
            self._m_shed.inc()
            raise AdmissionError(
                f"admission queue is full ({self.config.max_queue} jobs); "
                "retry after the suggested backoff",
                code="queue_full",
                retry_after_s=self.config.retry_after_s,
            )
        cost = 0.0
        if self.config.max_queue_cost is not None:
            cost = self._predicted_cost(spec)
            # an over-budget job is only shed while other work is queued:
            # with an empty queue it must admit, or a job costing more
            # than the whole budget could never run at all
            if self._queue and self._queue_cost + cost > self.config.max_queue_cost:
                self._m_shed.inc()
                self._m_cost_shed.inc()
                raise AdmissionError(
                    f"queue cost budget is exhausted (predicted "
                    f"{self._queue_cost + cost:.0f} of "
                    f"{self.config.max_queue_cost:.0f} cycles); "
                    "retry after the suggested backoff",
                    code="queue_full",
                    retry_after_s=self.config.retry_after_s,
                )
        job = Job(spec=spec)
        self.jobs[job.job_id] = job
        self._done_events[job.job_id] = asyncio.Event()
        self._seq += 1
        self._queue.append((-spec.priority, cost, self._seq, job))
        if self.config.max_queue_cost is not None:
            self._job_cost[job.job_id] = cost
            self._queue_cost += cost
            self._m_queue_cost.set(self._queue_cost)
            self._m_cost_admitted.inc()
        self._m_submitted.inc()
        self._m_depth.set(len(self._queue))
        if self._wakeup is not None:
            self._wakeup.set()
        return job

    def _predicted_cost(self, spec: JobSpec) -> float:
        """Model-predicted cost of one job, with prediction timing."""
        t0 = time.perf_counter()
        cost = self.estimator.admission_cost(spec)
        self._m_predict.observe(time.perf_counter() - t0)
        return cost

    def _resolve_estimate(self, spec: JobSpec) -> Job:
        """Answer an estimate job inline — no queue, no worker pool."""
        job = Job(spec=spec)
        self.jobs[job.job_id] = job
        self._done_events[job.job_id] = asyncio.Event()
        self._m_submitted.inc()
        job.state = JobState.RUNNING
        job.started_at = time.monotonic()
        try:
            t0 = time.perf_counter()
            result = self.estimator.estimate_workload(
                kernel=spec.kernel,
                count=spec.count,
                seed=spec.seed,
                min_n=spec.min_n,
                max_n=spec.max_n,
                formats=spec.formats,
                sram_kb=spec.sram_kb,
                ports=spec.ports,
            )
            elapsed = time.perf_counter() - t0
            self._m_predict.observe(elapsed)
            result["predict_s"] = round(elapsed, 9)
            self._m_estimate_hits.inc()
            self._finish(job, JobState.DONE, result=result)
        except Exception as exc:  # malformed artifact, feature mismatch
            self._finish(job, JobState.FAILED, error=error_payload(exc))
        return job

    def _release_cost(self, job: Job) -> None:
        """Return a job's predicted cost to the queue budget."""
        cost = self._job_cost.pop(job.job_id, None)
        if cost is not None:
            self._queue_cost = max(0.0, self._queue_cost - cost)
            self._m_queue_cost.set(self._queue_cost)

    def get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise ServeError(
                f"unknown job id {job_id!r}", code="not_found"
            ) from None

    def cancel(self, job_id: str) -> Job:
        """Cancel a job.  Queued jobs resolve immediately; a *running*
        job's worker is SIGKILLed and its slot respawned — the job
        reaches ``cancelled`` promptly instead of running to completion.
        """
        job = self.get(job_id)
        if job.terminal:
            return job
        job.cancel_requested = True
        if job.state == JobState.PENDING:
            self._queue = [entry for entry in self._queue if entry[3] is not job]
            self._m_depth.set(len(self._queue))
            self._release_cost(job)
            self._finish(
                job,
                JobState.CANCELLED,
                error=error_payload(JobCancelled("cancelled by client request")),
            )
        elif job.state == JobState.RUNNING:
            task = self._pool_tasks.get(job_id)
            if task is not None:
                self.pool.cancel(task)  # kills the worker within a tick
        return job

    async def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until a job reaches a terminal state (or raise timeout)."""
        job = self.get(job_id)
        event = self._done_events.get(job_id)
        if job.terminal or event is None:
            return job
        await asyncio.wait_for(event.wait(), timeout)
        return job

    # ------------------------------------------------------------------
    # batching stage

    async def _batch_loop(self) -> None:
        assert self._wakeup is not None
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if not self._queue:
                continue
            if self.config.batch_window_s > 0:
                # let concurrently-arriving compatible jobs join the batch
                await asyncio.sleep(self.config.batch_window_s)
            # priority first; under cost-aware admission, cheapest next
            # (shortest-job-first within a priority level); arrival last
            batch_entries = sorted(self._queue)
            self._queue.clear()
            self._m_depth.set(0)
            groups: List[Tuple[str, List[Job]]] = []
            open_group: Dict[str, List[Job]] = {}
            for _, _, _, job in batch_entries:
                self._release_cost(job)
                if job.terminal:  # cancelled while queued
                    continue
                key = job.spec.batch_key()
                bucket = open_group.get(key)
                if bucket is None or len(bucket) >= self.config.max_batch:
                    bucket = []
                    open_group[key] = bucket
                    groups.append((key, bucket))
                bucket.append(job)
            for key, group in groups:
                task = asyncio.create_task(
                    self._run_batch(group), name=f"serve-batch-{key[:8]}"
                )
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)

    # ------------------------------------------------------------------
    # execution stage

    async def _run_batch(self, group: List[Job]) -> None:
        """Dispatch one batch to the pool: leader first, then the rest.

        The batch leader runs alone: for a replay-family batch it is the
        job that records the op streams, and every other member must
        *observe* that recording on disk to replay it.  Once the leader
        is terminal the followers are pure readers (replay/cache hits),
        so they dispatch concurrently across the pool's workers.
        """
        self._m_batches.inc()
        self._m_batch_size.observe(len(group))
        if len(group) > 1:
            self._m_batched_jobs.inc(len(group))
        rest = list(group)
        while rest:
            leader = rest.pop(0)
            if await self._run_one(leader, batch_size=len(group)):
                break  # a job actually ran; the artifacts now exist
        if rest:
            await asyncio.gather(
                *(self._run_one(job, batch_size=len(group)) for job in rest)
            )

    async def _run_one(self, job: Job, *, batch_size: int) -> bool:
        """Dispatch one job to the pool and finish it; True if it ran."""
        if job.terminal:
            return False
        if job.cancel_requested:
            self._finish(
                job,
                JobState.CANCELLED,
                error=error_payload(
                    JobCancelled("cancelled before dispatch")
                ),
            )
            return False
        if job.deadline_exceeded():
            self._finish(
                job,
                JobState.FAILED,
                error=error_payload(
                    ServeError(
                        f"deadline of {job.spec.deadline_s}s expired "
                        "while the job was queued",
                        code="deadline_exceeded",
                        retry_after_s=self.config.retry_after_s,
                    )
                ),
            )
            return False
        job.state = JobState.RUNNING
        job.started_at = time.monotonic()
        job.batch_size = batch_size
        self._m_inflight.add(1)
        self._m_queue_wait.observe(job.queue_wait_s())
        timeout = (
            job.spec.timeout_s
            if job.spec.timeout_s is not None
            else self.config.default_timeout_s
        )
        # cache/record dirs are read at dispatch time on purpose:
        # tests repoint them on a live scheduler to seed failures
        request = {
            "spec": job.spec.to_payload(),
            "cache_dir": self.cache_dir,
            "record_dir": self.record_dir,
            "validate": self.config.validate,
        }
        handle = self.pool.submit(
            request,
            timeout_s=timeout,
            poison_key=job.spec.poison_key(),
            kind=job.spec.kind,
        )
        self._pool_tasks[job.job_id] = handle
        try:
            outcome = await asyncio.wrap_future(handle.future)
            self._apply_exec_metrics(outcome["metrics"])
            self._finish(job, JobState.DONE, result=outcome["payload"])
        except JobCancelled as exc:
            self._finish(job, JobState.CANCELLED, error=error_payload(exc))
        except ServeError as exc:
            if exc.code == "timeout":
                # the worker was SIGKILLed and the slot respawned;
                # the flag records that the attempt was reclaimed
                job.abandoned = True
            self._finish(job, JobState.FAILED, error=error_payload(exc))
        except Exception as exc:  # per-job fault isolation
            self._finish(job, JobState.FAILED, error=error_payload(exc))
        finally:
            self._pool_tasks.pop(job.job_id, None)
            self._m_inflight.add(-1)
        return True

    def _apply_exec_metrics(self, deltas: Dict[str, int]) -> None:
        """Fold a worker's per-job counter deltas into the registry."""
        self._m_units.inc(deltas.get("units_executed", 0))
        self._m_cache_hits.inc(deltas.get("cache_hits", 0))
        self._m_cache_misses.inc(deltas.get("cache_misses", 0))
        self._m_engine_fallback.inc(deltas.get("engine_fallback", 0))
        self._m_narration_flushes.inc(deltas.get("narration_flushes", 0))
        self._m_replay_hits.inc(deltas.get("replay_hits", 0))
        self._m_replay_misses.inc(deltas.get("replay_misses", 0))

    # ------------------------------------------------------------------
    # completion

    def _finish(
        self,
        job: Job,
        state: JobState,
        *,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[Dict[str, Any]] = None,
    ) -> None:
        if job.terminal:
            return
        job.state = state
        job.finished_at = time.monotonic()
        job.result = result
        job.error = error
        if job.started_at is not None:
            self._m_service.observe(job.finished_at - job.started_at)
        if state == JobState.DONE:
            self._m_done.inc()
        elif state == JobState.CANCELLED:
            self._m_cancelled.inc()
        else:
            self._m_failed.inc()
        event = self._done_events.get(job.job_id)
        if event is not None:
            event.set()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Cheap point-in-time service stats (the ``stats`` request)."""
        states: Dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state.value] = states.get(job.state.value, 0) + 1
        return {
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "queue_depth": self.queue_depth,
            "inflight": self.inflight,
            "draining": self._draining,
            "jobs_by_state": states,
            "cache_dir": self.cache_dir,
            "record_dir": self.record_dir,
            "queue_cost": round(self._queue_cost, 3),
            "model": {
                "source": self.estimator.source,
                "key": self.estimator.model_key,
            },
            "pool": self.pool.health(),
        }
