"""Supervised subprocess worker pool: crash-isolated serve execution.

Through PR 4 the scheduler executed jobs on an in-process
``ThreadPoolExecutor``: a worker that segfaulted, was OOM-killed, or
wedged inside a NumPy kernel took the whole scheduler with it, and a
timed-out job merely *abandoned* its thread — the thread kept running
and the slot was lost.  This module is the serve-side analogue of the
sweep runner's :mod:`repro.eval.supervisor` watchdog: a pool of
long-lived worker **subprocesses**, each owning a private duplex pipe,
dispatched futures-over-pipes and supervised from one background thread.

The supervisor guarantees:

* **death detection** — a worker that exits or is killed is noticed via
  pipe EOF (no polling races); its job is retried or failed, never lost;
* **timeout reclamation** — a job past its ``timeout_s`` gets its worker
  SIGKILLed and a structured ``timeout`` error; the slot is respawned,
  not abandoned (timeouts are deterministic and are *not* retried);
* **replenishment** — the pool always respawns back to size, with
  exponential backoff on consecutive spawn failures so a broken
  environment cannot fork-bomb the host;
* **bounded retries** — a job whose worker died (crash, OOM kill,
  protocol corruption) is transient and re-queued with exponential
  backoff up to ``retries`` extra attempts;
* **poison quarantine** — a job key that keeps killing workers trips a
  per-key circuit breaker after ``poison_threshold`` crashes: the job
  (and every later submission with the same key) fails fast with a
  structured ``poison_job`` error instead of grinding the pool down;
* **graceful stop** — idle workers get a sentinel and a join; busy ones
  are killed; every outstanding future resolves (``stopped``), so no
  caller is left waiting and no process outlives :meth:`WorkerPool.stop`.

Workers run :func:`repro.serve.execution.execute_request` after warm
imports, and honour a :class:`repro.serve.chaos.ChaosConfig` fault plan
at two injection points (bootstrap, job dispatch) so the chaos suites and
``bench_serve`` can exercise every failure path deterministically.

Thread discipline: loop-side methods (``submit``/``cancel``/``stop``/
``health``) only flip state under ``self._lock``; *all* process
lifecycle — spawn, kill, pipe close — happens in the supervisor thread,
so no pipe fd is ever closed while another thread selects on it.  The
``repro.analysis`` locks family (VIA301-VIA303) checks this convention.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Deque, Dict, List, Optional

from repro.errors import JobCancelled, ServeError
from repro.serve.chaos import CHAOS_CRASH_EXIT, ChaosConfig, apply_start_fault
from repro.serve.metrics import MetricsRegistry

#: supervisor scheduling quantum (seconds): the longest the loop waits
#: before re-checking deadlines, retries, respawns, and the stop flag
_TICK = 0.05

#: retry backoff is capped so a long chain cannot stall the service
_BACKOFF_CAP = 30.0

#: consecutive-spawn-failure backoff cap (crash-loop protection)
_SPAWN_BACKOFF_CAP = 5.0

#: multiprocessing start-method override (``fork``/``spawn``/``forkserver``)
ENV_MP_CONTEXT = "REPRO_SERVE_MP_CONTEXT"


class WorkerCrashError(ServeError):
    """A job lost its worker (crash/OOM/corruption) on every attempt."""

    def __init__(self, message: str) -> None:
        super().__init__(message, code="worker_crash", retry_after_s=1.0)


class PoisonJobError(ServeError):
    """A job key crossed the crash threshold and is quarantined."""

    def __init__(self, message: str) -> None:
        super().__init__(message, code="poison_job")


class WorkerJobError(ServeError):
    """A job failed *inside* a worker; carries the worker's structured
    error payload (code + retry hint) across the pipe unchanged."""

    def __init__(self, payload: Dict[str, Any]) -> None:
        super().__init__(
            str(payload.get("reason", "job failed in worker")),
            code=str(payload.get("code", "internal")),
            retry_after_s=payload.get("retry_after_s"),
        )


@dataclass(frozen=True)
class PoolConfig:
    """Operating envelope of one worker pool.

    ``retries`` bounds extra attempts for transient (worker-death)
    failures; ``poison_threshold`` is the per-key crash budget before the
    circuit breaker opens; ``spawn_timeout_s`` bounds worker bootstrap
    (warm imports + ready handshake); ``mp_context`` picks the start
    method (default: ``fork`` where available, else ``spawn``; override
    with ``REPRO_SERVE_MP_CONTEXT``).
    """

    workers: int = 2
    retries: int = 2
    backoff_s: float = 0.05
    poison_threshold: int = 3
    spawn_timeout_s: float = 60.0
    mp_context: Optional[str] = None
    chaos: Optional[ChaosConfig] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServeError(f"workers must be >= 1, got {self.workers}")
        if self.retries < 0:
            raise ServeError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise ServeError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.poison_threshold < 1:
            raise ServeError(
                f"poison_threshold must be >= 1, got {self.poison_threshold}"
            )
        if self.spawn_timeout_s <= 0:
            raise ServeError(
                f"spawn_timeout_s must be > 0, got {self.spawn_timeout_s}"
            )


@dataclass
class PoolTask:
    """One job's dispatch state, carried across retries.

    ``future`` resolves exactly once with the worker's result dict
    (``{"payload", "metrics"}``) or an exception; callers bridge it into
    asyncio with :func:`asyncio.wrap_future`.
    """

    request: Dict[str, Any]
    future: "Future[Dict[str, Any]]"
    timeout_s: Optional[float] = None
    poison_key: Optional[str] = None
    kind: str = "job"
    attempt: int = 1
    ready_at: float = 0.0
    started_at: float = 0.0
    cancelled: bool = False
    history: List[str] = field(default_factory=list)


@dataclass
class _Worker:
    """Supervisor-side view of one worker subprocess."""

    slot: int
    proc: Any
    conn: Any
    spawned_at: float
    ready: bool = False
    task: Optional[PoolTask] = None
    deadline: Optional[float] = None
    jobs_done: int = 0


def _worker_main(conn: Any, chaos: Optional[ChaosConfig]) -> None:
    """Worker process: warm imports, ready handshake, one job at a time.

    SIGINT is ignored so a terminal Ctrl-C (delivered to the process
    group) cannot kill workers behind the supervisor's back — shutdown is
    always the supervisor's decision (sentinel, EOF, or SIGKILL).
    """
    try:
        import signal

        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ImportError, ValueError, OSError):  # pragma: no cover
        pass
    from repro.serve.execution import execute_request, warm_imports
    from repro.serve.jobs import error_payload

    warm_imports()
    apply_start_fault(chaos)
    try:
        conn.send(("ready", os.getpid()))
    except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
        return
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            conn.close()
            return
        request = msg
        if chaos is not None:
            kind = str(request.get("spec", {}).get("kind", ""))
            rule = chaos.job_fault(kind)
            if rule is not None:
                if rule.fault == "crash":
                    os._exit(CHAOS_CRASH_EXIT)
                elif rule.fault == "hang":
                    time.sleep(rule.delay_s)
                elif rule.fault == "corrupt":
                    try:
                        conn.send("chaos-corrupt-reply")
                    except (BrokenPipeError, OSError):
                        return
                    continue
        try:
            reply = ("ok", execute_request(request))
        except Exception as exc:  # per-job fault isolation
            reply = ("error", error_payload(exc))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # supervisor went away
            return


def _resolve_context(name: Optional[str]) -> Any:
    name = name or os.environ.get(ENV_MP_CONTEXT) or None
    if name is None:
        name = (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
    return mp.get_context(name)


class WorkerPool:
    """Supervised pool of long-lived worker subprocesses.

    See the module docstring for the policy.  Lifecycle:
    :meth:`start` → :meth:`submit`/:meth:`cancel` → :meth:`stop`.
    """

    def __init__(
        self,
        config: Optional[PoolConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config or PoolConfig()
        self.metrics = metrics or MetricsRegistry()
        self._ctx = _resolve_context(self.config.mp_context)
        self._chaos = self.config.chaos
        self._chaos_tmp: Optional[tempfile.TemporaryDirectory] = None
        if self._chaos is not None and self._chaos.state_dir is None:
            # the token directory must be shared by every worker process
            self._chaos_tmp = tempfile.TemporaryDirectory(
                prefix="repro-serve-chaos-"
            )
            self._chaos = self._chaos.with_state_dir(self._chaos_tmp.name)
        #: guards every piece of supervisor state shared between the
        #: asyncio loop (submit/cancel/stop/health) and the supervisor
        #: thread; re-entrant so helpers compose without hand-off rules
        self._lock = threading.RLock()
        self._workers: Dict[int, Optional[_Worker]] = {}
        self._respawn_at: Dict[int, float] = {}
        self._spawn_failures = 0
        self._queue: Deque[PoolTask] = deque()
        self._waiting: List[PoolTask] = []
        self._crash_counts: Dict[str, int] = {}
        self._quarantined: Dict[str, int] = {}
        self._started = False
        self._stopped = False
        self._thread: Optional[threading.Thread] = None
        m = self.metrics
        self._m_restarts = m.counter(
            "pool_worker_restarts",
            "pool workers respawned after death, kill, or spawn failure",
        )
        self._m_timeout_kills = m.counter(
            "pool_timeout_kills", "workers SIGKILLed on per-job timeout"
        )
        self._m_retries = m.counter(
            "pool_retries", "job attempts re-queued after worker death"
        )
        self._m_corrupt = m.counter(
            "pool_corrupt_replies",
            "protocol-violating worker replies (worker replaced)",
        )
        self._m_poison = m.counter(
            "pool_poison_jobs", "jobs refused by the poison circuit breaker"
        )
        self._m_alive = m.gauge(
            "pool_workers_alive", "workers past the ready handshake"
        )
        self._m_respawn = m.histogram(
            "pool_respawn_seconds", "worker spawn-to-ready latency"
        )
        self._g_inflight = [
            m.gauge(
                f"pool_worker_{slot}_inflight",
                f"jobs in flight on pool worker slot {slot}",
            )
            for slot in range(self.config.workers)
        ]

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        """Spawn the workers and the supervisor thread (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
            for slot in range(self.config.workers):
                self._spawn(slot)
            self._thread = threading.Thread(
                target=self._supervise, name="repro-serve-pool", daemon=True
            )
            self._thread.start()

    def stop(self, timeout_s: float = 10.0) -> None:
        """Stop the pool: resolve every outstanding future, reap every
        worker process.  Safe to call twice; blocks until the supervisor
        thread has torn everything down (bounded by ``timeout_s``)."""
        with self._lock:
            self._stopped = True
            thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout_s)
        with self._lock:
            if self._workers:  # never started, or the join timed out
                self._teardown()
            if self._chaos_tmp is not None:
                self._chaos_tmp.cleanup()
                self._chaos_tmp = None

    # ------------------------------------------------------------------
    # loop-side API

    def submit(
        self,
        request: Dict[str, Any],
        *,
        timeout_s: Optional[float] = None,
        poison_key: Optional[str] = None,
        kind: str = "job",
    ) -> PoolTask:
        """Queue one job; returns its :class:`PoolTask` immediately.

        The task's future may already be resolved on return: a stopped
        pool fails with ``stopped``, a quarantined key with
        ``poison_job`` (the circuit breaker rejecting without dispatch).
        """
        task = PoolTask(
            request=request,
            future=Future(),
            timeout_s=timeout_s,
            poison_key=poison_key,
            kind=kind,
        )
        with self._lock:
            if self._stopped or not self._started:
                task.future.set_exception(
                    ServeError(
                        "worker pool is not accepting jobs", code="stopped"
                    )
                )
                return task
            if poison_key is not None and poison_key in self._quarantined:
                self._m_poison.inc()
                task.future.set_exception(
                    PoisonJobError(
                        f"job key {poison_key} is quarantined after "
                        f"{self._quarantined[poison_key]} worker crash(es)"
                    )
                )
                return task
            self._queue.append(task)
        return task

    def cancel(self, task: PoolTask) -> bool:
        """Cancel a task: queued tasks resolve immediately; a running
        task's worker is killed by the supervisor within one tick.

        Returns ``False`` when the task already reached a terminal state.
        """
        with self._lock:
            if task.future.done():
                return False
            if task in self._queue:
                self._queue.remove(task)
            elif task in self._waiting:
                self._waiting.remove(task)
            task.cancelled = True
            task.future.set_exception(
                JobCancelled("job cancelled while in the worker pool")
            )
            return True

    def health(self) -> Dict[str, Any]:
        """Point-in-time worker table + supervisor state snapshot."""
        with self._lock:
            workers = []
            for slot in sorted(self._workers):
                worker = self._workers[slot]
                if worker is None:
                    workers.append({"slot": slot, "state": "respawning"})
                    continue
                if not worker.ready:
                    state = "spawning"
                elif worker.task is not None:
                    state = "busy"
                else:
                    state = "idle"
                workers.append(
                    {
                        "slot": slot,
                        "pid": worker.proc.pid,
                        "state": state,
                        "jobs_done": worker.jobs_done,
                    }
                )
            return {
                "workers": workers,
                "queued": len(self._queue),
                "retry_waiting": len(self._waiting),
                "restarts": int(self._m_restarts.value),
                "quarantined_keys": sorted(self._quarantined),
            }

    # ------------------------------------------------------------------
    # supervisor thread

    def _supervise(self) -> None:
        while not self._stop_requested():
            self._check_spawns()
            self._promote_retries()
            self._reap_cancelled()
            self._assign()
            conns = self._wait_set()
            if conns:
                try:
                    readable = mp_connection.wait(conns, timeout=_TICK)
                except OSError:  # pragma: no cover - fd raced a respawn
                    readable = []
                for conn in readable:
                    self._on_readable(conn)
            else:
                time.sleep(_TICK)
            self._enforce_deadlines()
        self._teardown()

    def _stop_requested(self) -> bool:
        with self._lock:
            return self._stopped

    def _wait_set(self) -> List[Any]:
        with self._lock:
            return [
                worker.conn
                for worker in self._workers.values()
                if worker is not None
            ]

    # -- spawning ------------------------------------------------------

    def _spawn(self, slot: int) -> None:
        """Start a fresh worker in ``slot`` (or schedule a retry)."""
        with self._lock:
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            try:
                proc = self._ctx.Process(
                    target=_worker_main,
                    args=(child_conn, self._chaos),
                    daemon=True,
                )
                proc.start()
            except OSError:
                # spawn failed (fd/process exhaustion): back off before
                # retrying so a broken environment cannot crash-loop
                parent_conn.close()
                child_conn.close()
                self._spawn_failures += 1
                backoff = min(
                    0.1 * (2 ** (self._spawn_failures - 1)),
                    _SPAWN_BACKOFF_CAP,
                )
                self._workers[slot] = None
                self._respawn_at[slot] = time.monotonic() + backoff
                return
            except BaseException:
                # anything else (pickling errors, interpreter shutdown) is
                # not retryable — propagate, but never strand the pipe fds
                parent_conn.close()
                child_conn.close()
                raise
            # close our copy of the child end or EOF detection never fires
            child_conn.close()
            self._workers[slot] = _Worker(
                slot=slot,
                proc=proc,
                conn=parent_conn,
                spawned_at=time.monotonic(),
            )
            self._respawn_at.pop(slot, None)

    def _check_spawns(self) -> None:
        """Respawn empty slots whose backoff expired; kill stuck spawns."""
        with self._lock:
            now = time.monotonic()
            for slot in list(self._respawn_at):
                if self._workers.get(slot) is None and now >= self._respawn_at[slot]:
                    self._spawn(slot)
            for slot, worker in list(self._workers.items()):
                if worker is None or worker.ready:
                    continue
                if now - worker.spawned_at > self.config.spawn_timeout_s:
                    # bootstrap wedged (import deadlock, chaos slow_start
                    # past the budget): reclaim the slot
                    self._replace(worker, reason="spawn timeout")

    # -- dispatch ------------------------------------------------------

    def _promote_retries(self) -> None:
        with self._lock:
            now = time.monotonic()
            ready = [t for t in self._waiting if t.ready_at <= now]
            if ready:
                self._waiting = [
                    t for t in self._waiting if t.ready_at > now
                ]
                self._queue.extend(ready)

    def _reap_cancelled(self) -> None:
        """Kill workers whose running task was cancelled loop-side."""
        with self._lock:
            for worker in self._workers.values():
                if (
                    worker is not None
                    and worker.task is not None
                    and worker.task.cancelled
                ):
                    self._replace(worker, reason="job cancelled")

    def _assign(self) -> None:
        with self._lock:
            for worker in self._workers.values():
                if (
                    worker is None
                    or not worker.ready
                    or worker.task is not None
                ):
                    continue
                task = self._next_task()
                if task is None:
                    return
                task.started_at = time.monotonic()
                try:
                    worker.conn.send(task.request)
                except (BrokenPipeError, OSError):
                    # the idle worker died between jobs; requeue + replace
                    self._queue.appendleft(task)
                    self._replace(worker, reason="idle worker died")
                    continue
                worker.task = task
                worker.deadline = (
                    task.started_at + task.timeout_s
                    if task.timeout_s is not None
                    else None
                )
                self._g_inflight[worker.slot].set(1)

    def _next_task(self) -> Optional[PoolTask]:
        with self._lock:
            while self._queue:
                task = self._queue.popleft()
                if not task.future.done():
                    return task
            return None

    # -- collection ----------------------------------------------------

    def _on_readable(self, conn: Any) -> None:
        with self._lock:
            worker = None
            for candidate in self._workers.values():
                if candidate is not None and candidate.conn is conn:
                    worker = candidate
                    break
            if worker is None:  # pragma: no cover - slot already respawned
                return
            try:
                msg = worker.conn.recv()
            except (EOFError, OSError):
                self._on_death(worker)
                return
            if not worker.ready:
                if (
                    isinstance(msg, tuple)
                    and len(msg) == 2
                    and msg[0] == "ready"
                ):
                    worker.ready = True
                    self._spawn_failures = 0
                    self._m_alive.add(1)
                    self._m_respawn.observe(
                        time.monotonic() - worker.spawned_at
                    )
                else:  # pragma: no cover - garbled handshake
                    self._replace(worker, reason="bad ready handshake")
                return
            task = worker.task
            if (
                not isinstance(msg, tuple)
                or len(msg) != 2
                or msg[0] not in ("ok", "error")
            ):
                # corrupted reply: the worker cannot be trusted any more —
                # replace it and retry the job as a transient failure
                self._m_corrupt.inc()
                self._replace(worker, reason="corrupt reply")
                if task is not None and not task.cancelled:
                    self._score_transient(
                        task,
                        reason=(
                            f"attempt {task.attempt}: worker returned a "
                            "corrupted reply"
                        ),
                    )
                return
            worker.task = None
            worker.deadline = None
            worker.jobs_done += 1
            self._g_inflight[worker.slot].set(0)
            if task is None or task.future.done():
                # cancelled while the result was in the pipe: the future
                # is already resolved; the late result is discarded
                return
            status, payload = msg
            if status == "ok":
                if task.poison_key is not None:
                    # an eventual success is not poison: forgive history
                    self._crash_counts.pop(task.poison_key, None)
                task.future.set_result(payload)
            else:
                # deterministic in-worker failure: no retry, pass the
                # structured payload through unchanged
                task.future.set_exception(WorkerJobError(payload))

    def _on_death(self, worker: _Worker) -> None:
        """A worker's pipe hit EOF — it exited or was killed externally."""
        with self._lock:
            task = worker.task
            pid = worker.proc.pid
            self._replace(worker, reason="worker died")
            if task is None or task.future.done():
                return
            exitcode = worker.proc.exitcode
            self._score_crash(
                task,
                reason=(
                    f"attempt {task.attempt}: worker {pid} died mid-job "
                    f"(exitcode {exitcode})"
                ),
            )

    def _enforce_deadlines(self) -> None:
        with self._lock:
            now = time.monotonic()
            for worker in self._workers.values():
                if (
                    worker is None
                    or worker.task is None
                    or worker.deadline is None
                    or now < worker.deadline
                ):
                    continue
                if worker.conn.poll():  # result raced the deadline
                    continue
                task = worker.task
                pid = worker.proc.pid
                self._m_timeout_kills.inc()
                self._replace(worker, reason="job timeout")
                if task.future.done():
                    continue
                # a timeout is deterministic (the job would time out
                # again); fail it now instead of burning retries
                task.future.set_exception(
                    ServeError(
                        f"job exceeded its {task.timeout_s:.4g}s execution "
                        f"timeout (worker {pid} killed)",
                        code="timeout",
                        retry_after_s=1.0,
                    )
                )

    # -- failure scoring -----------------------------------------------

    def _score_crash(self, task: PoolTask, *, reason: str) -> None:
        """A worker died under ``task``: poison-check, then retry."""
        with self._lock:
            if task.poison_key is not None:
                crashes = self._crash_counts.get(task.poison_key, 0) + 1
                self._crash_counts[task.poison_key] = crashes
                if crashes >= self.config.poison_threshold:
                    # circuit breaker: this job reliably kills workers
                    self._quarantined[task.poison_key] = crashes
                    self._m_poison.inc()
                    task.history.append(reason)
                    task.future.set_exception(
                        PoisonJobError(
                            f"job quarantined after {crashes} worker "
                            f"crash(es): {'; '.join(task.history)}"
                        )
                    )
                    return
            self._score_transient(task, reason=reason)

    def _score_transient(self, task: PoolTask, *, reason: str) -> None:
        """Retry a transiently-failed task, or fail it for good."""
        with self._lock:
            task.history.append(reason)
            if task.attempt <= self.config.retries:
                backoff = min(
                    self.config.backoff_s * (2 ** (task.attempt - 1)),
                    _BACKOFF_CAP,
                )
                task.attempt += 1
                task.ready_at = time.monotonic() + backoff
                self._waiting.append(task)
                self._m_retries.inc()
                return
            task.future.set_exception(
                WorkerCrashError(
                    f"job lost its worker on all {task.attempt} "
                    f"attempt(s): {'; '.join(task.history)}"
                )
            )

    # -- worker replacement --------------------------------------------

    def _replace(self, worker: _Worker, *, reason: str) -> None:
        """Kill + reap ``worker`` and spawn a successor in its slot."""
        with self._lock:
            if worker.ready:
                self._m_alive.add(-1)
            worker.task = None
            worker.deadline = None
            self._g_inflight[worker.slot].set(0)
            self._m_restarts.inc()
            try:
                worker.proc.kill()
            except (OSError, ValueError):  # pragma: no cover - already gone
                pass
            worker.proc.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
            self._spawn(worker.slot)

    # -- teardown ------------------------------------------------------

    def _teardown(self) -> None:
        """Resolve every outstanding future; reap every worker process."""
        with self._lock:
            stopped = ServeError("worker pool stopped", code="stopped")
            for task in list(self._queue) + list(self._waiting):
                if not task.future.done():
                    task.future.set_exception(stopped)
            self._queue.clear()
            self._waiting.clear()
            for worker in self._workers.values():
                if worker is None:
                    continue
                task = worker.task
                if task is not None and not task.future.done():
                    task.future.set_exception(stopped)
                if worker.task is not None or not worker.ready:
                    # busy or mid-bootstrap: no point being gentle
                    try:
                        worker.proc.kill()
                    except (OSError, ValueError):  # pragma: no cover
                        pass
                else:
                    try:
                        worker.conn.send(None)  # idle: polite sentinel
                    except (BrokenPipeError, OSError):
                        pass
                worker.proc.join(timeout=2.0)
                if worker.proc.is_alive():  # pragma: no cover - stuck
                    try:
                        worker.proc.kill()
                    except (OSError, ValueError):
                        pass
                    worker.proc.join(timeout=2.0)
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover
                    pass
            self._workers.clear()
            self._respawn_at.clear()
            self._m_alive.set(0)
            for gauge in self._g_inflight:
                gauge.set(0)
