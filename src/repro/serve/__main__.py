"""``python -m repro.serve`` — run or talk to the simulation service.

Server::

    python -m repro.serve serve --port 7341 --max-queue 64 --workers 2

Client verbs (all take ``--host``/``--port``)::

    python -m repro.serve ping
    python -m repro.serve submit --kind simulate --kernel spmv --count 2 --wait
    python -m repro.serve submit --kind sweep --port-sweep 1,2,4,8
    python -m repro.serve status  <job-id>
    python -m repro.serve result  <job-id> --timeout 120
    python -m repro.serve cancel  <job-id>
    python -m repro.serve metrics --text
    python -m repro.serve drain
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

import repro
from repro.errors import ServeError
from repro.serve.chaos import ChaosConfig
from repro.serve.client import ServeClient, ServeRequestError
from repro.serve.scheduler import Scheduler, ServiceConfig
from repro.serve.server import ViaServer

DEFAULT_PORT = 7341


def _add_client_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Async simulation service: server and client verbs.",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {repro.__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help="TCP port (0 = ephemeral; see --ready-file)")
    serve.add_argument("--ready-file", default=None,
                       help="write 'host port' here once listening "
                       "(atomically; lets scripts use --port 0)")
    serve.add_argument("--max-queue", type=int, default=64)
    serve.add_argument("--batch-window", type=float, default=0.02,
                       help="seconds to wait for compatible requests to "
                       "join a batch")
    serve.add_argument("--max-batch", type=int, default=16)
    serve.add_argument("--workers", type=int, default=2,
                       help="subprocess pool workers (concurrent jobs)")
    serve.add_argument("--default-timeout", type=float, default=120.0,
                       help="per-job execution timeout (seconds)")
    serve.add_argument("--pool-retries", type=int, default=2,
                       help="extra attempts for jobs whose worker died")
    serve.add_argument("--pool-backoff", type=float, default=0.05,
                       help="base retry backoff after a worker crash "
                       "(seconds, doubles per attempt)")
    serve.add_argument("--poison-threshold", type=int, default=3,
                       help="worker crashes per job key before the "
                       "poison circuit breaker opens")
    serve.add_argument("--spawn-timeout", type=float, default=60.0,
                       help="worker bootstrap (spawn-to-ready) budget "
                       "(seconds)")
    serve.add_argument("--mp-context", default=None,
                       choices=("fork", "spawn", "forkserver"),
                       help="worker start method (default: fork where "
                       "available; env REPRO_SERVE_MP_CONTEXT)")
    serve.add_argument("--chaos", default=None,
                       help="fault-injection plan for the worker pool, "
                       "e.g. 'crash:kind=replay:times=2;hang:delay=60' "
                       "(env REPRO_SERVE_CHAOS)")
    serve.add_argument("--chaos-dir", default=None,
                       help="shared chaos token directory (default: "
                       "per-pool temp; env REPRO_SERVE_CHAOS_DIR)")
    serve.add_argument("--cache-dir", default=None,
                       help="result cache directory (default: per-run temp)")
    serve.add_argument("--record-dir", default=None,
                       help="op-stream recording store (default: per-run temp)")
    serve.add_argument("--validate", action="store_true",
                       help="run op-stream invariant checks on every unit")
    serve.add_argument("--model-dir", default=None,
                       help="cost-model store backing estimate jobs and "
                       "cost-aware admission (default: analytic fallback)")
    serve.add_argument("--max-queue-cost", type=float, default=None,
                       help="predicted-cycle budget for the admission "
                       "queue (default: flat slot accounting only)")

    ping = sub.add_parser("ping", help="liveness probe")
    _add_client_args(ping)

    submit = sub.add_parser("submit", help="submit one job")
    _add_client_args(submit)
    submit.add_argument("--kind", default="simulate",
                        choices=("simulate", "replay", "sweep", "report",
                                 "sleep", "estimate"))
    submit.add_argument("--kernel", default="spmv",
                        choices=("spmv", "spma", "spmm"))
    submit.add_argument("--count", type=int, default=1)
    submit.add_argument("--seed", type=int, default=2021)
    submit.add_argument("--min-n", type=int, default=64)
    submit.add_argument("--max-n", type=int, default=192)
    submit.add_argument("--formats", default="csr",
                        help="comma-separated spmv formats")
    submit.add_argument("--sram-kb", type=int, default=16)
    submit.add_argument("--ports", type=int, default=2)
    submit.add_argument("--port-sweep", default=None,
                        help="comma-separated port counts (sweep kind)")
    submit.add_argument("--duration", type=float, default=0.1,
                        help="sleep-kind duration (seconds)")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--deadline", type=float, default=None)
    submit.add_argument("--timeout", type=float, default=None,
                        help="per-job execution timeout (seconds)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job is terminal")
    submit.add_argument("--wait-timeout", type=float, default=None)
    submit.add_argument("--shed-retries", type=int, default=4,
                        help="client-side retries on queue_full shedding "
                        "(0 = surface the first shed)")

    status = sub.add_parser("status", help="one job's state")
    _add_client_args(status)
    status.add_argument("job_id")

    result = sub.add_parser("result", help="wait for a job's result")
    _add_client_args(result)
    result.add_argument("job_id")
    result.add_argument("--timeout", type=float, default=None)

    cancel = sub.add_parser("cancel", help="cancel a queued or running job")
    _add_client_args(cancel)
    cancel.add_argument("job_id")

    metrics = sub.add_parser("metrics", help="scrape service metrics")
    _add_client_args(metrics)
    metrics.add_argument("--text", action="store_true",
                         help="Prometheus-style text instead of JSON")

    stats = sub.add_parser("stats", help="scheduler stats")
    _add_client_args(stats)

    drain = sub.add_parser("drain", help="gracefully shut the service down")
    _add_client_args(drain)

    return parser


def _cmd_serve(args) -> int:
    if args.chaos:
        chaos = ChaosConfig.parse(args.chaos, args.chaos_dir)
    else:
        chaos = ChaosConfig.from_env()  # REPRO_SERVE_CHAOS, or None
    config = ServiceConfig(
        max_queue=args.max_queue,
        batch_window_s=args.batch_window,
        max_batch=args.max_batch,
        executor_workers=args.workers,
        default_timeout_s=args.default_timeout,
        pool_retries=args.pool_retries,
        pool_backoff_s=args.pool_backoff,
        poison_threshold=args.poison_threshold,
        spawn_timeout_s=args.spawn_timeout,
        mp_context=args.mp_context,
        chaos=chaos,
        cache_dir=args.cache_dir,
        record_dir=args.record_dir,
        validate=args.validate,
        model_dir=args.model_dir,
        max_queue_cost=args.max_queue_cost,
    )

    async def _run() -> None:
        scheduler = Scheduler(config)
        server = ViaServer(
            scheduler,
            host=args.host,
            port=args.port,
            ready_file=args.ready_file,
        )
        await server.start()
        print(
            f"serve: listening on {server.host}:{server.port} "
            f"(queue {config.max_queue}, {config.executor_workers} workers, "
            f"batch window {config.batch_window_s * 1e3:.0f}ms)",
            file=sys.stderr,
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C fallback
        return 130
    return 0


def _spec_from_args(args) -> dict:
    spec = {
        "kind": args.kind,
        "priority": args.priority,
    }
    if args.kind in ("simulate", "replay", "sweep", "estimate"):
        spec.update(
            kernel=args.kernel,
            count=args.count,
            seed=args.seed,
            min_n=args.min_n,
            max_n=args.max_n,
            formats=[f for f in args.formats.split(",") if f],
            sram_kb=args.sram_kb,
            ports=args.ports,
        )
    if args.kind == "sweep":
        if not args.port_sweep:
            raise ServeError("sweep needs --port-sweep", code="bad_request")
        spec["port_sweep"] = [int(p) for p in args.port_sweep.split(",") if p]
    if args.kind == "sleep":
        spec["duration_s"] = args.duration
    if args.deadline is not None:
        spec["deadline_s"] = args.deadline
    if args.timeout is not None:
        spec["timeout_s"] = args.timeout
    return spec


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    client = ServeClient(
        args.host, args.port,
        shed_retries=getattr(args, "shed_retries", 4),
    )
    try:
        with client:
            if args.command == "ping":
                out = client.ping()
            elif args.command == "submit":
                out = client.submit(
                    _spec_from_args(args),
                    wait=args.wait,
                    wait_timeout_s=args.wait_timeout,
                )
            elif args.command == "status":
                out = client.status(args.job_id)
            elif args.command == "result":
                out = client.result(args.job_id, timeout_s=args.timeout)
            elif args.command == "cancel":
                out = client.cancel(args.job_id)
            elif args.command == "metrics":
                if args.text:
                    print(client.metrics_text(), end="")
                    return 0
                out = client.metrics()
            elif args.command == "stats":
                out = client.stats()
            else:  # drain
                out = client.drain()
    except ServeRequestError as exc:
        print(json.dumps({"error": exc.payload}, indent=2))
        return 2
    except ServeError as exc:
        print(f"error ({exc.code}): {exc}", file=sys.stderr)
        return 1
    print(json.dumps(out, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
