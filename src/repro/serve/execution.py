"""Worker-side job execution for the serve worker pool.

This module is the code that actually runs inside a pool worker process:
:func:`execute_request` takes the wire-shaped request the scheduler ships
over the worker pipe — a job-spec payload plus the execution context
(cache/record directories, validation flag) — and produces the job's
result payload together with the counter deltas the scheduler folds into
its metrics registry.

It deliberately holds **no scheduler state**: everything a job needs
travels in the request, so the same function serves the in-process unit
tests and the long-lived subprocess workers identically, and a worker
that dies mid-job loses nothing that cannot be re-dispatched.

:func:`warm_imports` preloads the heavy execution stack (NumPy, the sweep
runner, the kernel/sim layers) at worker bootstrap, before the ready
handshake — so the first job on a fresh or respawned worker pays import
cost exactly once, never per request.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.errors import ServeError
from repro.serve.jobs import JobSpec, expand_sweep

#: metric counter deltas a job execution can report back to the scheduler
METRIC_KEYS = (
    "units_executed",
    "cache_hits",
    "cache_misses",
    "engine_fallback",
    "narration_flushes",
    "replay_hits",
    "replay_misses",
)


def warm_imports() -> None:
    """Preload the execution stack so jobs never pay import cost."""
    import numpy  # noqa: F401
    from repro.eval import runner, units  # noqa: F401
    from repro.matrices import collection  # noqa: F401
    from repro.sim import core  # noqa: F401
    from repro.via import engine  # noqa: F401


def _zero_metrics() -> Dict[str, int]:
    return {key: 0 for key in METRIC_KEYS}


def execute_request(request: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job request synchronously; returns ``{payload, metrics}``.

    ``request`` carries ``spec`` (a :meth:`JobSpec.to_payload` dict),
    ``cache_dir``, ``record_dir``, and ``validate``.  Exceptions propagate
    to the caller — in a pool worker they are mapped to the structured
    error payload before crossing the pipe.
    """
    spec = JobSpec.from_payload(request["spec"])
    metrics = _zero_metrics()
    payload = _execute_spec(
        spec,
        cache_dir=request.get("cache_dir"),
        record_dir=request.get("record_dir"),
        validate=bool(request.get("validate", False)),
        metrics=metrics,
    )
    return {"payload": payload, "metrics": metrics}


def _execute_spec(
    spec: JobSpec,
    *,
    cache_dir: Optional[str],
    record_dir: Optional[str],
    validate: bool,
    metrics: Dict[str, int],
) -> Dict[str, Any]:
    if spec.kind == "estimate":
        # the scheduler resolves estimates synchronously at admission;
        # one reaching a worker means the dispatch path is broken
        raise ServeError(
            "estimate jobs are answered at admission and must never "
            "dispatch to a pool worker",
            code="internal",
        )
    if spec.kind == "sleep":
        # a plain sleep: cancellation of a running sleep job is handled by
        # the supervisor killing this worker, not by cooperative polling
        time.sleep(spec.duration_s)
        return {"slept_s": spec.duration_s}
    if spec.kind == "report":
        from repro.sim import table1
        from repro.via import table2

        return {"text": table1() + "\n" + table2()}
    if spec.kind == "sweep":
        per_config: Dict[str, Any] = {}
        for sub in expand_sweep(spec):
            per_config[f"{sub.sram_kb}_{sub.ports}p"] = _run_sim(
                sub,
                cache_dir=cache_dir,
                record_dir=record_dir,
                validate=validate,
                metrics=metrics,
            )
        return {"configs": per_config}
    return _run_sim(
        spec,
        cache_dir=cache_dir,
        record_dir=record_dir,
        validate=validate,
        metrics=metrics,
    )


def _run_sim(
    spec: JobSpec,
    *,
    cache_dir: Optional[str],
    record_dir: Optional[str],
    validate: bool,
    metrics: Dict[str, int],
) -> Dict[str, Any]:
    """Execute a simulate/replay spec through the sweep runner."""
    from repro.eval.harness import geomean
    from repro.eval.runner import RunnerConfig, run_units

    units = _build_units(
        spec, record_dir=record_dir, validate=validate
    )
    if spec.kind == "replay":
        _count_replay_hits(units, record_dir=record_dir, metrics=metrics)
    config = RunnerConfig(
        workers=1,
        cache_dir=cache_dir,
        capture_errors=True,
    )
    result = run_units(units, config)
    metrics["units_executed"] += len(units)
    metrics["cache_hits"] += result.counters.cache_hits
    metrics["cache_misses"] += result.counters.cache_misses
    metrics["engine_fallback"] += result.counters.engine_fallback
    metrics["narration_flushes"] += result.counters.narration_flushes
    if result.failures:
        first = result.failures[0]
        raise ServeError(
            f"{len(result.failures)} of {len(units)} work unit(s) "
            f"failed; first: {first.kind}/{first.name}: {first.error}",
            code="unit_failed",
        )
    records = [
        {"name": r.name, "n": r.n, "nnz": r.nnz, "speedup": dict(r.speedup)}
        for r in result.records
    ]
    fmts = sorted(result.records[0].speedup) if result.records else []
    summary = {
        fmt: geomean(
            (r.speedup[fmt] for r in result.records if fmt in r.speedup),
            warn_label=f"serve geomean {fmt}",
        )
        for fmt in fmts
    }
    return {
        "records": records,
        "geomean_speedup": summary,
        "counters": {
            "units_ok": result.counters.units_ok,
            "units_cached": result.counters.units_cached,
            "cache_hits": result.counters.cache_hits,
            "cache_misses": result.counters.cache_misses,
            "engine_fallback": result.counters.engine_fallback,
            "narration_flushes": result.counters.narration_flushes,
        },
    }


def _build_units(
    spec: JobSpec, *, record_dir: Optional[str], validate: bool
) -> List[Any]:
    from repro.eval.units import (
        replay_units,
        spma_units,
        spmm_units,
        spmv_units,
    )
    from repro.matrices.collection import MatrixCollection
    from repro.via.config import ViaConfig

    collection = MatrixCollection(
        spec.count, seed=spec.seed, min_n=spec.min_n, max_n=spec.max_n
    )
    via = ViaConfig(spec.sram_kb, spec.ports)
    if spec.kernel == "spmv":
        units = spmv_units(
            collection,
            formats=spec.formats,
            via_config=via,
            validate=validate,
        )
    elif spec.kernel == "spma":
        units = spma_units(collection, via_config=via, validate=validate)
    else:
        units = spmm_units(
            collection, via_config=via, max_n=spec.max_n, validate=validate
        )
    if spec.kind == "replay":
        units = replay_units(units, record_dir=record_dir, engine=spec.engine)
    return list(units)


def _count_replay_hits(
    units: List[Any], *, record_dir: Optional[str], metrics: Dict[str, int]
) -> None:
    """Score replay units against the store *before* execution.

    A unit whose recording artifact already exists is a replay hit — it
    will re-price stored streams instead of running the kernel; a miss
    records first (self-heal).  Counted here because the self-healing
    replay path hides the distinction downstream.
    """
    from repro.eval.recordings import RecordingStore, recording_key
    from repro.eval.runner import code_version

    store = RecordingStore(record_dir)
    code = code_version()
    for unit in units:
        if store.has(recording_key(unit, code, part="via")) and store.has(
            recording_key(unit, code, part="base")
        ):
            metrics["replay_hits"] += 1
        else:
            metrics["replay_misses"] += 1
