"""Deterministic fault injection for the serve worker pool.

Production claims about crash isolation are worthless without a way to
*cause* the crashes on demand.  This module is the serve-side analogue of
the sweep chaos suite: a small, declarative fault plan that the worker
processes of :mod:`repro.serve.pool` consult at well-defined points —
worker startup and the moment a job is about to execute — so tests and
``bench_serve`` can murder, wedge, stall, and garble workers on a
schedule and then assert that not a single response was lost.

Four fault kinds:

========== ==========================================================
fault      worker behaviour at the injection point
========== ==========================================================
crash      ``os._exit(CHAOS_CRASH_EXIT)`` — indistinguishable from a
           segfault/OOM kill from the supervisor's side (pipe EOF)
hang       sleep ``delay_s`` before executing — drives the per-job
           timeout watchdog (SIGKILL + respawn) when ``delay_s``
           exceeds the job timeout, or models a stall when it doesn't
slow_start sleep ``delay_s`` during worker bootstrap, before the
           ready handshake — visible in the respawn-latency histogram
           and, past ``spawn_timeout_s``, in the spawn watchdog
corrupt    reply with a malformed message instead of the result —
           exercises the supervisor's protocol-violation path
========== ==========================================================

**Determinism.**  A rule fires at most ``times`` times *across the whole
pool*, even though workers are separate processes that respawn.  Each
injection claims a token file in ``state_dir`` with ``O_CREAT | O_EXCL``
— an atomic, race-free filesystem CAS — so exactly ``times`` injections
happen no matter how execution interleaves.  Tests can count the token
files afterwards to assert the plan was fully consumed.

The plan is a one-line spec, e.g.::

    crash:kind=replay:times=2;hang:kind=sleep:delay=60;slow_start:delay=1.5

parsed by :meth:`ChaosConfig.parse`, or supplied through the environment
(``REPRO_SERVE_CHAOS`` + ``REPRO_SERVE_CHAOS_DIR``) so a server booted as
a subprocess — the e2e suites, ``bench_serve`` — can be put under chaos
without any code changes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ServeError

#: the faults a rule may name
FAULTS = ("crash", "hang", "slow_start", "corrupt")

#: exit code used by the ``crash`` fault, chosen to be recognisable in
#: supervisor logs/health dumps (and distinct from Python's 0/1)
CHAOS_CRASH_EXIT = 23

#: environment knobs honoured by :meth:`ChaosConfig.from_env`
ENV_SPEC = "REPRO_SERVE_CHAOS"
ENV_DIR = "REPRO_SERVE_CHAOS_DIR"

_DEFAULT_DELAYS = {"hang": 3600.0, "slow_start": 0.5}


def _bad_spec(reason: str) -> ServeError:
    return ServeError(f"invalid chaos spec: {reason}", code="bad_chaos_spec")


@dataclass(frozen=True)
class ChaosRule:
    """One fault with its trigger filter and injection budget."""

    fault: str
    kind: str = "*"  # job kind filter; "*" matches every job
    times: int = 1
    delay_s: float = 0.0  # hang/slow_start duration

    def __post_init__(self) -> None:
        if self.fault not in FAULTS:
            raise _bad_spec(
                f"unknown fault {self.fault!r}; expected one of {FAULTS}"
            )
        if self.times < 1:
            raise _bad_spec(f"times must be >= 1, got {self.times}")
        if self.delay_s < 0:
            raise _bad_spec(f"delay must be >= 0, got {self.delay_s}")

    def matches(self, kind: str) -> bool:
        return self.kind in ("*", kind)


@dataclass(frozen=True)
class ChaosConfig:
    """A parsed fault plan plus the shared token directory.

    ``state_dir`` holds the claim tokens that bound each rule to its
    ``times`` budget across every worker process.  It must be shared by
    the whole pool; :class:`~repro.serve.pool.WorkerPool` creates a
    per-pool temp directory when the plan does not name one.
    """

    rules: Tuple[ChaosRule, ...]
    state_dir: Optional[str] = None

    # ------------------------------------------------------------------
    @classmethod
    def parse(
        cls, spec: str, state_dir: Optional[str] = None
    ) -> "ChaosConfig":
        """Parse ``fault[:key=value]*`` rules separated by ``;``."""
        rules = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            fault, _, rest = chunk.partition(":")
            fields: Dict[str, Any] = {"fault": fault.strip()}
            for part in filter(None, (p.strip() for p in rest.split(":"))):
                key, eq, value = part.partition("=")
                if not eq:
                    raise _bad_spec(f"expected key=value, got {part!r}")
                key = key.strip()
                if key == "kind":
                    fields["kind"] = value.strip()
                elif key == "times":
                    try:
                        fields["times"] = int(value)
                    except ValueError:
                        raise _bad_spec(f"times must be an int, got {value!r}") from None
                elif key == "delay":
                    try:
                        fields["delay_s"] = float(value)
                    except ValueError:
                        raise _bad_spec(f"delay must be a number, got {value!r}") from None
                else:
                    raise _bad_spec(f"unknown rule field {key!r}")
            if "delay_s" not in fields:
                fields["delay_s"] = _DEFAULT_DELAYS.get(fields["fault"], 0.0)
            rules.append(ChaosRule(**fields))
        if not rules:
            raise _bad_spec("no rules in spec")
        return cls(rules=tuple(rules), state_dir=state_dir)

    @classmethod
    def from_env(
        cls, env: Optional[Mapping[str, str]] = None
    ) -> Optional["ChaosConfig"]:
        """The plan named by ``REPRO_SERVE_CHAOS``, or ``None``."""
        env = os.environ if env is None else env
        spec = env.get(ENV_SPEC)
        if not spec:
            return None
        return cls.parse(spec, env.get(ENV_DIR) or None)

    def with_state_dir(self, state_dir: str) -> "ChaosConfig":
        return ChaosConfig(rules=self.rules, state_dir=state_dir)

    # ------------------------------------------------------------------
    # injection points (called from worker processes)

    def _claim(self, index: int, rule: ChaosRule) -> bool:
        """Atomically claim one of ``rule.times`` tokens; False when spent."""
        if self.state_dir is None:
            # no shared state: the plan was built programmatically without
            # a directory — fail closed rather than inject unboundedly
            return False
        for n in range(rule.times):
            path = os.path.join(self.state_dir, f"chaos-{index}-{n}.token")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False  # unreadable state dir: fail closed
            os.close(fd)
            return True
        return False

    def start_fault(self) -> Optional[ChaosRule]:
        """The ``slow_start`` rule to apply at worker bootstrap, if any."""
        for index, rule in enumerate(self.rules):
            if rule.fault == "slow_start" and self._claim(index, rule):
                return rule
        return None

    def job_fault(self, kind: str) -> Optional[ChaosRule]:
        """The fault to inject before executing a job of ``kind``, if any."""
        for index, rule in enumerate(self.rules):
            if rule.fault == "slow_start" or not rule.matches(kind):
                continue
            if self._claim(index, rule):
                return rule
        return None

    # ------------------------------------------------------------------
    def tokens_claimed(self) -> int:
        """How many injections have happened so far (test helper)."""
        if self.state_dir is None or not os.path.isdir(self.state_dir):
            return 0
        return sum(
            1 for name in os.listdir(self.state_dir)
            if name.startswith("chaos-") and name.endswith(".token")
        )

    def budget(self) -> int:
        """Total injections the plan allows."""
        return sum(rule.times for rule in self.rules)


def apply_start_fault(chaos: Optional[ChaosConfig]) -> None:
    """Worker bootstrap hook: apply ``slow_start`` before the handshake."""
    if chaos is None:
        return
    rule = chaos.start_fault()
    if rule is not None:
        time.sleep(rule.delay_s)
