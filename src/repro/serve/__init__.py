"""``repro.serve`` — an always-on simulation service over the sweep engine.

The batch CLIs (``python -m repro.eval``, ``report_cli``) pay full startup
cost per invocation and serve exactly one caller.  This package turns the
same execution substrate — the supervised runner, the PR-1 result cache,
and the PR-2 record/replay store — into a long-running multi-tenant
service:

* :mod:`repro.serve.jobs` — typed, validated job specs (simulate / sweep /
  replay / report / sleep) with priorities, deadlines, and the structured
  error payloads every rejection or failure maps to;
* :mod:`repro.serve.scheduler` — an asyncio scheduler with a bounded
  admission queue (load shedding with ``retry_after_s``), per-request
  timeouts and cancellation, and a batching stage that groups compatible
  requests by recording key so one op-stream recording is replayed for a
  whole batch;
* :mod:`repro.serve.server` — a stdlib JSON-lines-over-TCP front end with
  graceful drain on SIGTERM (in-flight jobs complete, queued jobs report
  cancelled, waiters get their responses before sockets close);
* :mod:`repro.serve.client` — a blocking client library and the CLI behind
  ``python -m repro.serve``;
* :mod:`repro.serve.metrics` — counters, gauges, and latency histograms
  (p50/p95/p99) exposed via the ``metrics`` request as JSON or a text dump.

Quickstart::

    python -m repro.serve serve --port 7341 &
    python -m repro.serve submit --port 7341 --kind simulate --kernel spmv
    python -m repro.serve metrics --port 7341 --text
"""

from repro.serve.client import ServeClient, ServeRequestError
from repro.serve.jobs import Job, JobSpec, error_payload
from repro.serve.metrics import MetricsRegistry
from repro.serve.scheduler import Scheduler, ServiceConfig
from repro.serve.server import ViaServer

__all__ = [
    "Job",
    "JobSpec",
    "MetricsRegistry",
    "Scheduler",
    "ServeClient",
    "ServeRequestError",
    "ServiceConfig",
    "ViaServer",
    "error_payload",
]
