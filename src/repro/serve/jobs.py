"""Typed job specs for the simulation service, plus structured errors.

A :class:`JobSpec` is the validated, immutable description of one client
request; a :class:`Job` is its runtime envelope (id, state, timestamps,
result or error payload).  Five kinds:

* ``simulate`` — run a kernel×collection workload directly (the naive
  per-request path: every request pays full simulation cost);
* ``replay`` — the same workload routed through the op-stream
  record/replay store: the first request for a stream-shape group records,
  every compatible request re-prices the recording (pure arithmetic);
* ``sweep`` — a multi-configuration port sweep expanded server-side into
  replay units, so one recording serves all configurations of the batch;
* ``report`` — cheap text artifacts (Table I / Table II), a fast request
  type for health probes and mixed workloads;
* ``sleep`` — a diagnostic kind that holds a pool worker for
  ``duration_s``; used by load tests to fill the admission queue
  deterministically;
* ``estimate`` — a simulate-shaped workload priced by the learned cost
  model (:mod:`repro.model`) instead of simulated: the scheduler answers
  synchronously at admission, in microseconds, without ever touching the
  worker pool.

Batching: :meth:`JobSpec.batch_key` hashes exactly what must match for two
requests to share one scheduler batch.  For ``replay``/``sweep`` kinds the
key deliberately *excludes* SSPM ports — mirroring
:func:`repro.eval.recordings.recording_key`, where ports are a
pure-pricing knob — so an entire port sweep collapses onto one recording.

Errors: :func:`error_payload` maps any exception the service can raise —
admission shedding, cancellation, deadlines, timeouts, and the eval
layer's :class:`~repro.errors.SweepError` / ``SweepInterrupted`` — to the
wire-format ``{"code", "reason", "retry_after_s"}`` payload, so a shed or
cancelled request is always a structured response, never a dropped
connection.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    AdmissionError,
    ConfigError,
    FormatError,
    JobCancelled,
    ReproError,
    ServeError,
    SweepError,
    SweepInterrupted,
)
from repro.sim.backends import DEFAULT_REPLAY_ENGINE, REPLAY_ENGINES

JOB_KINDS = ("simulate", "replay", "sweep", "report", "sleep", "estimate")
#: kinds that describe a kernel×collection workload (shared validation)
SIM_FAMILY = ("simulate", "replay", "sweep", "estimate")
KERNELS = ("spmv", "spma", "spmm")
SPMV_FORMATS = ("csr", "csb", "spc5", "sellcs")

#: fields deliberately outside :meth:`JobSpec.batch_key`, checked by the
#: VIA101 cache-key hygiene rule (``python -m repro.analysis``)
KEY_EXEMPT = {
    "JobSpec": {
        "port_sweep": "sweep jobs re-price one recording per port; the "
        "variants are what the batch shares, not what splits it",
        "duration_s": "sleep-job knob; sleep batches are keyed by family "
        "only and never share results",
        "priority": "scheduling order, not work identity",
        "deadline_s": "per-request admission bound; does not change results",
        "timeout_s": "per-request execution bound; does not change results",
    },
}

#: hard ceilings on workload size — a service must bound what one request
#: can cost, independent of queue limits
MAX_COUNT = 64
MAX_N = 4096
MAX_SWEEP_CONFIGS = 16
MAX_SLEEP_S = 300.0


class JobState(str, Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: states a job never leaves
TERMINAL_STATES = (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


def _bad_request(reason: str) -> ServeError:
    return ServeError(reason, code="bad_request")


@dataclass(frozen=True)
class JobSpec:
    """One validated request: what to run, how urgent, how long it may take.

    ``priority`` orders dispatch (higher first) within the admission
    queue; ``deadline_s`` bounds total sojourn time — a job still queued
    past its deadline is failed with ``deadline_exceeded`` instead of
    executing stale work; ``timeout_s`` bounds execution time alone.
    """

    kind: str
    kernel: str = "spmv"
    count: int = 1
    seed: int = 2021
    min_n: int = 64
    max_n: int = 192
    formats: Tuple[str, ...] = ("csr",)
    sram_kb: int = 16
    ports: int = 2
    port_sweep: Tuple[int, ...] = ()
    #: replay pricing engine ("scalar" or "columnar"); only meaningful for
    #: the replay family, where it selects how recordings are re-priced
    engine: Optional[str] = None
    duration_s: float = 0.1
    priority: int = 0
    deadline_s: Optional[float] = None
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise _bad_request(
                f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}"
            )
        if self.kind in SIM_FAMILY:
            if self.kernel not in KERNELS:
                raise _bad_request(
                    f"unknown kernel {self.kernel!r}; expected one of {KERNELS}"
                )
            if not (1 <= self.count <= MAX_COUNT):
                raise _bad_request(
                    f"count must be in [1, {MAX_COUNT}], got {self.count}"
                )
            if not (16 <= self.min_n <= self.max_n <= MAX_N):
                raise _bad_request(
                    f"need 16 <= min_n <= max_n <= {MAX_N}, got "
                    f"min_n={self.min_n} max_n={self.max_n}"
                )
            if self.kernel == "spmv":
                bad = [f for f in self.formats if f not in SPMV_FORMATS]
                if bad or not self.formats:
                    raise _bad_request(
                        f"spmv formats must be a non-empty subset of "
                        f"{SPMV_FORMATS}, got {self.formats!r}"
                    )
            if self.sram_kb <= 0 or self.ports <= 0:
                raise _bad_request(
                    f"sram_kb and ports must be positive, got "
                    f"sram_kb={self.sram_kb} ports={self.ports}"
                )
        if self.kind == "sweep":
            if not self.port_sweep:
                raise _bad_request("sweep jobs need a non-empty port_sweep")
            if len(self.port_sweep) > MAX_SWEEP_CONFIGS:
                raise _bad_request(
                    f"port_sweep is capped at {MAX_SWEEP_CONFIGS} "
                    f"configurations, got {len(self.port_sweep)}"
                )
            if any(p <= 0 for p in self.port_sweep):
                raise _bad_request(
                    f"port_sweep entries must be positive, got {self.port_sweep}"
                )
        if self.engine is not None:
            if self.engine not in REPLAY_ENGINES:
                raise _bad_request(
                    f"unknown replay engine {self.engine!r}; expected one "
                    f"of {REPLAY_ENGINES}"
                )
            if self.kind not in ("replay", "sweep"):
                raise _bad_request(
                    f"engine only applies to replay/sweep jobs, not "
                    f"{self.kind!r}"
                )
        if self.kind == "sleep" and not (0 <= self.duration_s <= MAX_SLEEP_S):
            raise _bad_request(
                f"duration_s must be in [0, {MAX_SLEEP_S}], got {self.duration_s}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise _bad_request(
                f"deadline_s must be > 0, got {self.deadline_s}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise _bad_request(f"timeout_s must be > 0, got {self.timeout_s}")

    # ------------------------------------------------------------------
    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JobSpec":
        """Build a spec from a decoded JSON request body, strictly.

        Unknown fields are rejected (a typo like ``prioritty`` must not
        silently run at default priority), tuple-typed fields accept
        lists, and every constraint violation surfaces as a
        ``bad_request`` :class:`~repro.errors.ServeError`.
        """
        if not isinstance(payload, dict):
            raise _bad_request(f"job spec must be an object, got {type(payload).__name__}")
        known = set(cls.__dataclass_fields__)
        unknown = set(payload) - known
        if unknown:
            raise _bad_request(
                f"unknown job spec field(s): {sorted(unknown)}; "
                f"known fields: {sorted(known)}"
            )
        if "kind" not in payload:
            raise _bad_request("job spec needs a 'kind' field")
        coerced = dict(payload)
        for key in ("formats", "port_sweep"):
            if key in coerced:
                value = coerced[key]
                if not isinstance(value, (list, tuple)):
                    raise _bad_request(f"{key} must be a list, got {value!r}")
                coerced[key] = tuple(value)
        try:
            return cls(**coerced)
        except TypeError as exc:  # wrong field type reaching the dataclass
            raise _bad_request(f"malformed job spec: {exc}") from exc

    def to_payload(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            out[name] = list(value) if isinstance(value, tuple) else value
        return out

    # ------------------------------------------------------------------
    def batch_key(self) -> str:
        """Requests with equal keys may execute as one scheduler batch.

        The key covers everything that shapes the *work*: kind family,
        kernel, collection parameters, formats, and SSPM capacity.  Ports
        are included for ``simulate`` (they change the direct run) but
        excluded for ``replay``/``sweep`` — port variants re-price one
        recording, which is precisely the batching win.  The replay
        *engine* participates (normalized to the default when unset): a
        batch executes once with one engine, so jobs requesting different
        engines must not share a batch even though their results are
        bit-identical by contract.
        """
        family = "replay" if self.kind in ("replay", "sweep") else self.kind
        payload: Dict[str, Any] = {
            "family": family,
            "kernel": self.kernel,
            "count": self.count,
            "seed": self.seed,
            "min_n": self.min_n,
            "max_n": self.max_n,
            "formats": list(self.formats),
            "sram_kb": self.sram_kb,
        }
        if self.kind in ("simulate", "estimate"):
            payload["ports"] = self.ports
        if family == "replay":
            payload["engine"] = self.engine or DEFAULT_REPLAY_ENGINE
        if self.kind in ("report", "sleep"):
            payload = {"family": self.kind}
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def poison_key(self) -> str:
        """Identity of the *work* for the pool's poison circuit breaker.

        Two submissions with the same key run the same computation, so a
        worker crash caused by one predicts a crash for the other: the
        :class:`~repro.serve.pool.WorkerPool` counts crashes per key and
        quarantines the key after its threshold.  Scheduling knobs
        (``priority``, ``deadline_s``, ``timeout_s``) are excluded — they
        change *when* and *how long*, never *what* executes, and must not
        let a poison job dodge its quarantine by resubmitting with a
        different priority.
        """
        payload = self.to_payload()
        for name in ("priority", "deadline_s", "timeout_s"):
            payload.pop(name, None)
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


_job_seq = itertools.count(1)


@dataclass
class Job:
    """Runtime envelope of one admitted request."""

    spec: JobSpec
    job_id: str = ""
    state: JobState = JobState.PENDING
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    cancel_requested: bool = False
    #: set when a timed-out job's worker was SIGKILLed and its pool slot
    #: respawned: the attempt was reclaimed, not left running
    abandoned: bool = False
    batch_size: int = 0

    def __post_init__(self) -> None:
        if not self.job_id:
            self.job_id = f"job-{next(_job_seq):06d}"

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def deadline_exceeded(self, now: Optional[float] = None) -> bool:
        if self.spec.deadline_s is None:
            return False
        now = time.monotonic() if now is None else now
        return (now - self.submitted_at) > self.spec.deadline_s

    def queue_wait_s(self) -> float:
        start = self.started_at if self.started_at is not None else time.monotonic()
        return max(0.0, start - self.submitted_at)

    def to_payload(self) -> Dict[str, Any]:
        """Wire-format job status (the ``status``/``result`` responses)."""
        out: Dict[str, Any] = {
            "job_id": self.job_id,
            "state": self.state.value,
            "kind": self.spec.kind,
            "priority": self.spec.priority,
            "queue_wait_s": round(self.queue_wait_s(), 6),
        }
        if self.started_at is not None and self.finished_at is not None:
            out["service_s"] = round(self.finished_at - self.started_at, 6)
        if self.batch_size:
            out["batch_size"] = self.batch_size
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        return out


# ----------------------------------------------------------------------
# structured error payloads


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """Map an exception to the wire-format structured error.

    The mapping is the service-layer promotion of the eval layer's
    exception hierarchy: shedding and draining keep their admission codes
    and retry hints, a ``SweepInterrupted`` (the runner's SIGINT/SIGTERM
    flush) becomes a retryable ``interrupted``, a deterministic
    :class:`~repro.errors.SweepError` is permanent (no retry hint), and
    configuration errors surface as ``bad_request`` so clients fix the
    spec instead of retrying.
    """
    code = "internal"
    retry_after_s: Optional[float] = None
    if isinstance(exc, AdmissionError):
        code = exc.code
        retry_after_s = exc.retry_after_s
    elif isinstance(exc, JobCancelled):
        code = exc.code
    elif isinstance(exc, ServeError):
        code = exc.code
        retry_after_s = exc.retry_after_s
    elif isinstance(exc, SweepInterrupted):
        code = "interrupted"
        retry_after_s = 1.0
    elif isinstance(exc, SweepError):
        code = "sweep_error"
    elif isinstance(exc, (ConfigError, FormatError)):
        code = "bad_request"
    elif isinstance(exc, (TimeoutError, asyncio.TimeoutError)):
        # asyncio.TimeoutError is a plain-Exception subclass before 3.11
        code = "timeout"
        retry_after_s = 1.0
    elif isinstance(exc, ReproError):
        code = "repro_error"
    payload: Dict[str, Any] = {
        "code": code,
        "reason": str(exc) or type(exc).__name__,
    }
    if retry_after_s is not None:
        payload["retry_after_s"] = retry_after_s
    return payload


def expand_sweep(spec: JobSpec) -> List[JobSpec]:
    """A ``sweep`` job's per-configuration replay specs, in sweep order."""
    import dataclasses

    return [
        dataclasses.replace(spec, kind="replay", ports=p, port_sweep=())
        for p in spec.port_sweep
    ]
