"""Dataset mining and featurization for the learned cost model.

Every sweep journal line since the feature-recording satellite carries
the matrix's :class:`~repro.matrices.stats.StructureStats` (inside the
record) plus the unit's kernel/VIA/machine context — so a training
dataset mines **from journals alone**, without re-building a single
matrix.  Result-cache entries carry the same sidecar ``context``; both
sources produce identical rows for identical units.

One row per (unit, format) with a stored VIA cycle count:

* structure features — the record's ``features`` dict, verbatim;
* VIA features — ``sram_kb``/``ports`` plus the derived geometry
  (entry counts, CSB block size) so capacity effects are learnable;
* machine features — the flattened :class:`~repro.sim.config.
  MachineConfig` (cache sizes/latencies, DRAM, MLP, lanes);
* kernel / format one-hots.

Rows are deduplicated by identity (latest mined wins — journals are
append-only across resumed runs) and sorted, so dataset assembly is a
pure function of the mined content, not of file order.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.model.trees import FloatArray, holdout_split

#: structure descriptors, in StructureStats field order
STRUCTURE_KEYS: Tuple[str, ...] = (
    "rows",
    "cols",
    "nnz",
    "density",
    "avg_nnz_per_row",
    "max_nnz_per_row",
    "empty_rows",
    "bandwidth",
    "csb_block_size",
    "csb_num_blocks",
    "median_nnz_per_block",
)

#: VIA geometry: the two free knobs plus their derived capacities
VIA_KEYS: Tuple[str, ...] = (
    "via_sram_kb",
    "via_ports",
    "via_sram_entries",
    "via_cam_entries",
    "via_csb_block_size",
)

#: flattened machine knobs (nested cache levels become level_field)
MACHINE_KEYS: Tuple[str, ...] = (
    "clock_ghz",
    "issue_width",
    "rob_entries",
    "mshrs",
    "vector_lanes",
    "vfu_fma_latency",
    "gather_base_latency",
    "scatter_base_latency",
    "l1_size_kb",
    "l1_latency",
    "l2_size_kb",
    "l2_latency",
    "l3_size_kb",
    "l3_latency",
    "dram_latency",
    "dram_bw_bytes_per_cycle",
    "mlp_stream",
    "mlp_dependent",
)

KERNELS: Tuple[str, ...] = ("spmv", "spma", "spmm")
FORMATS: Tuple[str, ...] = ("csr", "csb", "spc5", "sellcs")

#: canonical feature order — models store this list and refuse mismatches
FEATURE_NAMES: Tuple[str, ...] = (
    STRUCTURE_KEYS
    + VIA_KEYS
    + MACHINE_KEYS
    + tuple(f"kernel_{k}" for k in KERNELS)
    + tuple(f"format_{f}" for f in FORMATS)
)


def _via_features(via: Mapping[str, Any]) -> Dict[str, float]:
    from repro.via.config import ViaConfig

    cfg = ViaConfig(int(via["sram_kb"]), int(via["ports"]))
    return {
        "via_sram_kb": float(cfg.sram_kb),
        "via_ports": float(cfg.ports),
        "via_sram_entries": float(cfg.sram_entries),
        "via_cam_entries": float(cfg.cam_entries),
        "via_csb_block_size": float(cfg.csb_block_size),
    }


def _machine_features(machine: Mapping[str, Any]) -> Dict[str, float]:
    flat: Dict[str, float] = {}
    for level in ("l1", "l2", "l3"):
        cache = machine.get(level) or {}
        flat[f"{level}_size_kb"] = float(cache.get("size_kb", 0))
        flat[f"{level}_latency"] = float(cache.get("latency", 0))
    for key in MACHINE_KEYS:
        if key in flat:
            continue
        flat[key] = float(machine.get(key, 0))
    return flat


def feature_vector(
    structure: Mapping[str, Any],
    *,
    kernel: str,
    fmt: str,
    via: Mapping[str, Any],
    machine: Mapping[str, Any],
) -> FloatArray:
    """One row of the design matrix, in :data:`FEATURE_NAMES` order."""
    if kernel not in KERNELS:
        raise ModelError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    if fmt not in FORMATS:
        raise ModelError(f"unknown format {fmt!r}; expected one of {FORMATS}")
    values = dict(_via_features(via))
    values.update(_machine_features(machine))
    for key in STRUCTURE_KEYS:
        values[key] = float(structure.get(key, 0.0))
    for k in KERNELS:
        values[f"kernel_{k}"] = 1.0 if k == kernel else 0.0
    for f in FORMATS:
        values[f"format_{f}"] = 1.0 if f == fmt else 0.0
    return np.asarray([values[name] for name in FEATURE_NAMES], dtype=np.float64)


@dataclass(frozen=True)
class Row:
    """One mined training example: features → VIA cycles."""

    row_id: str
    kernel: str
    features: FloatArray
    cycles: float


@dataclass(frozen=True)
class Dataset:
    """An assembled design matrix plus targets and row identities."""

    X: FloatArray
    y: FloatArray
    feature_names: Tuple[str, ...]
    row_ids: Tuple[str, ...]
    kernels: Tuple[str, ...]

    def __len__(self) -> int:
        return int(self.X.shape[0])

    def split(
        self, holdout_fraction: float = 0.25
    ) -> Tuple["Dataset", "Dataset"]:
        """Deterministic identity-hashed train/holdout partition."""
        train, hold = holdout_split(
            len(self), list(self.row_ids), holdout_fraction
        )
        return self._take(train), self._take(hold)

    def _take(self, idx: np.ndarray) -> "Dataset":
        return Dataset(
            X=self.X[idx],
            y=self.y[idx],
            feature_names=self.feature_names,
            row_ids=tuple(self.row_ids[int(i)] for i in idx),
            kernels=tuple(self.kernels[int(i)] for i in idx),
        )


def _machine_tag(machine: Mapping[str, Any]) -> str:
    blob = json.dumps(
        _machine_features(machine), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:8]


def rows_from_entry(entry: Mapping[str, Any]) -> List[Row]:
    """The training rows one journal line (or cache entry view) yields.

    Needs: a record with non-empty ``features`` and ``via_cycles``, plus
    the kernel/via/machine context.  Entries missing any of it (old
    journals, skipped units, failures) yield nothing — mining is
    best-effort by design.
    """
    record = entry.get("record")
    via = entry.get("via")
    machine = entry.get("machine")
    kernel = entry.get("kernel")
    if not isinstance(record, Mapping) or not via or not machine:
        return []
    structure = record.get("features")
    cycles = record.get("via_cycles")
    if not structure or not cycles or kernel not in KERNELS:
        return []
    name = record.get("name", "?")
    tag = _machine_tag(machine)
    via_name = f"{int(via['sram_kb'])}_{int(via['ports'])}p"
    rows: List[Row] = []
    for fmt in sorted(cycles):
        if fmt not in FORMATS:
            continue
        value = float(cycles[fmt])
        if not (value > 0 and np.isfinite(value)):
            continue
        rows.append(
            Row(
                row_id=f"{name}:{kernel}:{fmt}:{via_name}:{tag}",
                kernel=str(kernel),
                features=feature_vector(
                    structure, kernel=str(kernel), fmt=fmt,
                    via=via, machine=machine,
                ),
                cycles=value,
            )
        )
    return rows


def mine_journal(path: str) -> List[Row]:
    """Training rows from one sweep-journal JSONL file.

    Torn lines (the tail of a crashed run) and pre-feature lines are
    skipped silently; a missing file is an error — pointing the miner at
    nothing is a caller bug, not sparse data.
    """
    journal = Path(path)
    if not journal.exists():
        raise ModelError(f"journal {path!r} does not exist")
    rows: List[Row] = []
    for raw in journal.read_text(encoding="utf-8").splitlines():
        stripped = raw.strip()
        if not stripped:
            continue
        try:
            entry = json.loads(stripped)
        except json.JSONDecodeError:
            continue  # torn tail of a crashed run
        if not isinstance(entry, dict):
            continue
        if entry.get("status") not in ("ok", "cached", "resumed"):
            continue
        rows.extend(rows_from_entry(entry))
    return rows


def mine_cache(cache_dir: str) -> List[Row]:
    """Training rows from a result-cache directory.

    Reads each entry file directly (the cache layout is one JSON file
    per key): entries whose checksum fails, or that predate the
    ``context`` sidecar, are skipped — the cache's own ``get`` handles
    deletion of rot; the miner only refuses to *learn* from it.
    """
    root = Path(cache_dir)
    if not root.exists():
        raise ModelError(f"cache directory {cache_dir!r} does not exist")
    from repro.eval.runner import CACHE_FORMAT, ResultCache

    rows: List[Row] = []
    for path in sorted(root.rglob("*.json")):
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(entry, dict) or entry.get("format") != CACHE_FORMAT:
            continue
        payload = entry.get("payload")
        context = entry.get("context")
        if not isinstance(payload, dict) or not isinstance(context, dict):
            continue
        if entry.get("checksum") != ResultCache._checksum(payload):
            continue  # rot: never learn from a corrupt entry
        rows.extend(rows_from_entry({"record": payload, **context}))
    return rows


def build_dataset(rows: Iterable[Row]) -> Dataset:
    """Assemble rows into a :class:`Dataset`, deduplicated and sorted.

    Later duplicates win (journals append across resumed runs, so the
    freshest measurement of a row id is the last one mined), and the
    final order is sorted by row id — assembly is order-independent.
    """
    latest: Dict[str, Row] = {}
    for row in rows:
        latest[row.row_id] = row
    if not latest:
        raise ModelError(
            "no training rows mined — journals/cache entries need records "
            "with features, via_cycles, and kernel/via/machine context"
        )
    ordered = [latest[k] for k in sorted(latest)]
    return Dataset(
        X=np.stack([r.features for r in ordered]),
        y=np.asarray([r.cycles for r in ordered], dtype=np.float64),
        feature_names=FEATURE_NAMES,
        row_ids=tuple(r.row_id for r in ordered),
        kernels=tuple(r.kernel for r in ordered),
    )


def mine(
    journals: Iterable[str] = (),
    cache_dirs: Iterable[str] = (),
) -> Dataset:
    """One-call mining: journals + cache directories → :class:`Dataset`."""
    rows: List[Row] = []
    for path in journals:
        rows.extend(mine_journal(path))
    for path in cache_dirs:
        rows.extend(mine_cache(path))
    return build_dataset(rows)


# ----------------------------------------------------------------------
# spec featurization for unseen workloads (guided DSE, serve estimates)

#: bounded memo of spec structure features; keyed by spec identity and
#: block size.  Plain dict + FIFO eviction: consumers are single-threaded
#: (the asyncio scheduler event loop, the DSE driver).
_SPEC_MEMO: Dict[str, Dict[str, float]] = {}
_SPEC_MEMO_MAX = 512


def spec_structure_features(spec: Any, *, block_size: int) -> Dict[str, float]:
    """StructureStats for a :class:`~repro.matrices.collection.MatrixSpec`.

    Builds the matrix once per (spec, block size) and memoizes — warm
    calls are dictionary lookups, which is what lets serve ``estimate``
    jobs answer in microseconds after first touch.
    """
    from repro.matrices.stats import structure_stats

    key = json.dumps(
        {
            "name": spec.name,
            "domain": spec.domain,
            "n": spec.n,
            "seed": spec.seed,
            "params": spec.params,
            "block": int(block_size),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    hit = _SPEC_MEMO.get(key)
    if hit is not None:
        return hit
    stats = structure_stats(spec.build(), csb_block_size=int(block_size))
    features = {k: float(v) for k, v in stats.as_dict().items()}
    if len(_SPEC_MEMO) >= _SPEC_MEMO_MAX:
        _SPEC_MEMO.pop(next(iter(_SPEC_MEMO)))
    _SPEC_MEMO[key] = features
    return features
