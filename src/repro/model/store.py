"""Versioned, checksummed, content-addressed storage for model artifacts.

Mirrors the :class:`~repro.eval.runner.ResultCache` idiom: one JSON file
per artifact at ``<root>/<key[:2]>/<key>.json``, where the key is the
sha256 of the canonical payload serialization — an artifact's identity
*is* its content, so retraining on identical data at identical settings
re-produces the same key and the store naturally deduplicates.

Two deliberate differences from the result cache:

* corruption is an **error**, not a miss.  A cache miss is recomputed in
  milliseconds; a silently vanished model would make a serving endpoint
  fall back to the analytic estimator without anyone noticing.  A bad
  schema, checksum mismatch, or key mismatch raises
  :class:`~repro.errors.ModelError` and the rotten file is deleted so the
  next write can land cleanly.
* a ``LATEST`` pointer file names the most recently stored key, so CLI
  consumers (``python -m repro.model predict``, the serve estimator) can
  load "the current model" without threading keys through every call.

No timestamps anywhere: artifacts must be byte-reproducible from their
inputs, and the model subsystem runs under the determinism checker's
worker scope.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ModelError

#: bump when the artifact envelope schema changes shape
STORE_FORMAT = 1

_LATEST = "LATEST"


def payload_checksum(payload: Dict[str, Any]) -> str:
    """sha256 over the canonical (sorted-keys, compact) JSON payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ModelStore:
    """Content-addressed artifact store rooted at a directory."""

    def __init__(self, root: str):
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def put(self, payload: Dict[str, Any]) -> str:
        """Store an artifact payload; returns its content key.

        Also moves the ``LATEST`` pointer.  Writes are atomic
        (``os.replace``) so a concurrent reader never sees a torn file.
        """
        if not isinstance(payload, dict):
            raise ModelError("model artifact payload must be a dict")
        key = payload_checksum(payload)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": STORE_FORMAT,
            "key": key,
            "payload": payload,
            "checksum": payload_checksum(payload),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(entry, sort_keys=True))
        os.replace(tmp, path)
        tmp_latest = self.root / f"{_LATEST}.tmp"
        tmp_latest.write_text(key)
        os.replace(tmp_latest, self.root / _LATEST)
        return key

    def get(self, key: str) -> Dict[str, Any]:
        """Load an artifact payload by key.

        Missing key → ``ModelError``.  Corrupt entry (unparseable, wrong
        schema version, key or checksum mismatch) → the file is deleted
        and ``ModelError`` raised: a rotten model is rejected, never
        served.
        """
        path = self._path(key)
        if not path.exists():
            raise ModelError(f"model artifact {key!r} not found in {self.root}")
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(entry, dict):
                raise ValueError("artifact entry is not an object")
            if entry.get("format") != STORE_FORMAT:
                raise ValueError("unknown artifact format version")
            payload = entry["payload"]
            if (
                entry.get("key") != key
                or entry.get("checksum") != payload_checksum(payload)
            ):
                raise ValueError("artifact failed integrity check")
        except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
            path.unlink(missing_ok=True)
            raise ModelError(
                f"model artifact {key!r} is corrupt ({exc}); entry deleted"
            ) from exc
        return dict(payload)

    def latest_key(self) -> Optional[str]:
        """The key named by the ``LATEST`` pointer, or None if unset."""
        pointer = self.root / _LATEST
        if not pointer.exists():
            return None
        key = pointer.read_text(encoding="utf-8").strip()
        return key or None

    def get_latest(self) -> Dict[str, Any]:
        """Load the artifact the ``LATEST`` pointer names."""
        key = self.latest_key()
        if key is None:
            raise ModelError(f"model store {self.root} has no LATEST artifact")
        return self.get(key)

    def keys(self) -> List[str]:
        """Every stored artifact key, sorted."""
        if not self.root.exists():
            return []
        return sorted(
            p.stem for p in self.root.rglob("*.json") if p.parent != self.root
        )
