"""repro.model: a learned cost model for VIA sweep outcomes.

Pure NumPy + stdlib (no sklearn): from-scratch gradient-boosted
regression trees (:mod:`~repro.model.trees`) trained on datasets mined
from sweep journals and the result cache (:mod:`~repro.model.dataset`),
stored as versioned, checksummed, content-addressed JSON artifacts
(:mod:`~repro.model.store`), and consumed by guided design-space
exploration (``run_dse(strategy="guided")``) and the serve layer's
``estimate`` jobs / cost-aware admission via
:class:`~repro.model.cost.JobCostEstimator`.

``python -m repro.model`` trains, evaluates, and predicts from the CLI.
"""

from repro.model.cost import CostModel, JobCostEstimator
from repro.model.dataset import (
    FEATURE_NAMES,
    Dataset,
    Row,
    build_dataset,
    feature_vector,
    mine,
    mine_cache,
    mine_journal,
)
from repro.model.store import ModelStore
from repro.model.trees import (
    GradientBoostedTrees,
    RegressionTree,
    holdout_split,
    mape,
)

__all__ = [
    "FEATURE_NAMES",
    "CostModel",
    "Dataset",
    "GradientBoostedTrees",
    "JobCostEstimator",
    "ModelStore",
    "RegressionTree",
    "Row",
    "build_dataset",
    "feature_vector",
    "holdout_split",
    "mape",
    "mine",
    "mine_cache",
    "mine_journal",
]
