"""Cost-model CLI: train, evaluate, and predict from the command line.

::

    python -m repro.model train --journal sweep.jsonl --model-dir models/
    python -m repro.model evaluate --journal sweep.jsonl --model-dir models/
    python -m repro.model predict --model-dir models/ --kernel spmv \\
        --count 8 --formats csr,csb

``train`` mines journals and/or result-cache directories into a dataset,
fits the boosted ensemble, reports holdout MAPE with a per-kernel error
breakdown, and stores the artifact content-addressed (printing its key).
``evaluate`` scores a stored artifact against freshly mined data.
``predict`` prices a simulate-shaped workload through the estimator —
the CLI twin of the serve ``estimate`` job.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional

from repro.errors import ModelError
from repro.model.cost import CostModel, JobCostEstimator
from repro.model.dataset import Dataset, mine
from repro.model.store import ModelStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.model",
        description="learned cost model: train / evaluate / predict",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_mining(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--journal", action="append", default=[],
            help="sweep journal JSONL to mine (repeatable)",
        )
        p.add_argument(
            "--cache-dir", action="append", default=[],
            help="result-cache directory to mine (repeatable)",
        )

    train = sub.add_parser("train", help="mine a dataset and fit a model")
    add_mining(train)
    train.add_argument("--model-dir", required=True)
    train.add_argument("--holdout", type=float, default=0.25)
    train.add_argument("--n-estimators", type=int, default=150)
    train.add_argument("--learning-rate", type=float, default=0.1)
    train.add_argument("--max-depth", type=int, default=4)
    train.add_argument("--subsample", type=float, default=0.8)
    train.add_argument("--seed", type=int, default=7)
    train.add_argument("--json", action="store_true")

    evaluate = sub.add_parser(
        "evaluate", help="score a stored model against mined data"
    )
    add_mining(evaluate)
    evaluate.add_argument("--model-dir", required=True)
    evaluate.add_argument(
        "--key", default=None, help="artifact key (default: LATEST)"
    )
    evaluate.add_argument("--json", action="store_true")

    predict = sub.add_parser(
        "predict", help="price a simulate-shaped workload"
    )
    predict.add_argument(
        "--model-dir", default=None,
        help="model store (omit for the analytic fallback)",
    )
    predict.add_argument("--kernel", default="spmv",
                         choices=("spmv", "spma", "spmm"))
    predict.add_argument("--count", type=int, default=4)
    predict.add_argument("--seed", type=int, default=2021)
    predict.add_argument("--min-n", type=int, default=64)
    predict.add_argument("--max-n", type=int, default=192)
    predict.add_argument("--formats", default="csr")
    predict.add_argument("--sram-kb", type=int, default=16)
    predict.add_argument("--ports", type=int, default=2)
    predict.add_argument("--json", action="store_true")
    return parser


def _mine(args: argparse.Namespace) -> Dataset:
    if not args.journal and not args.cache_dir:
        raise ModelError(
            "nothing to mine: pass --journal and/or --cache-dir"
        )
    return mine(journals=args.journal, cache_dirs=args.cache_dir)


def _print_metrics(metrics: Dict[str, Any]) -> None:
    mape = metrics.get("mape")
    print(f"rows:  {metrics.get('rows')}")
    print(f"mape:  {mape:.4f}" if mape == mape else "mape:  nan")
    per_kernel = metrics.get("per_kernel") or {}
    for kernel in sorted(per_kernel):
        entry = per_kernel[kernel]
        print(
            f"  {kernel:<5} rows={entry['rows']:<5} mape={entry['mape']:.4f}"
        )


def _cmd_train(args: argparse.Namespace) -> int:
    dataset = _mine(args)
    t0 = time.perf_counter()
    model = CostModel.train(
        dataset,
        holdout_fraction=args.holdout,
        n_estimators=args.n_estimators,
        learning_rate=args.learning_rate,
        max_depth=args.max_depth,
        subsample=args.subsample,
        seed=args.seed,
    )
    train_s = time.perf_counter() - t0
    key = ModelStore(args.model_dir).put(model.to_payload())
    if args.json:
        print(json.dumps({
            "key": key,
            "train_s": train_s,
            "dataset_rows": len(dataset),
            "metrics": model.metrics,
        }, sort_keys=True))
        return 0
    print(f"key:   {key}")
    print(f"train: {train_s:.3f}s over {len(dataset)} rows "
          f"({model.ensemble.n_estimators} trees)")
    print(f"split: {model.metrics.get('scored_on')}")
    _print_metrics(model.metrics)
    return 0


def _load(model_dir: str, key: Optional[str]) -> CostModel:
    store = ModelStore(model_dir)
    payload = store.get(key) if key else store.get_latest()
    return CostModel.from_payload(payload)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    model = _load(args.model_dir, args.key)
    metrics = model.evaluate(_mine(args))
    if args.json:
        print(json.dumps(metrics, sort_keys=True))
        return 0
    _print_metrics(metrics)
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    estimator = JobCostEstimator.load(args.model_dir)
    formats: List[str] = [f for f in args.formats.split(",") if f]
    result = estimator.estimate_workload(
        kernel=args.kernel,
        count=args.count,
        seed=args.seed,
        min_n=args.min_n,
        max_n=args.max_n,
        formats=formats,
        sram_kb=args.sram_kb,
        ports=args.ports,
    )
    if args.json:
        print(json.dumps(result, sort_keys=True))
        return 0
    print(f"source: {result['source']}"
          + (f" ({result['model_key'][:12]}…)" if result["model_key"] else ""))
    for unit in result["units"]:
        print(
            f"  {unit['name']:<24} {unit['format']:<7} "
            f"nnz={unit['nnz']:<8} cycles={unit['predicted_cycles']:.0f}"
        )
    print(f"total predicted cycles: {result['predicted_cycles_total']:.0f}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "train": _cmd_train,
        "evaluate": _cmd_evaluate,
        "predict": _cmd_predict,
    }[args.command]
    try:
        return handler(args)
    except ModelError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
