"""The trained cost model and its serving-side estimator.

:class:`CostModel` wraps the gradient-boosted ensemble with the artifact
contract: it trains on **log** cycles (targets span four orders of
magnitude across matrix sizes; squared loss on raw cycles would fit only
the largest), predicts raw cycles by exponentiating, and packs/unpacks a
pure-JSON payload whose integrity the :class:`~repro.model.store.
ModelStore` guards.  Feature order is pinned to
:data:`~repro.model.dataset.FEATURE_NAMES` — an artifact trained against
a different feature set is refused at load, not silently mis-indexed.

:class:`JobCostEstimator` is what the serve scheduler and guided DSE
consume: given a workload description (kernel, collection parameters,
VIA geometry) it featurizes every unit exactly the way the dataset miner
does and predicts cycles in one vectorized call.  It always works — with
no trained artifact it falls back to a deterministic analytic estimate
(cycles proportional to nnz with per-kernel/format factors), flagged
``source="fallback"`` so callers can tell a learned answer from a guess.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.model.dataset import (
    FEATURE_NAMES,
    Dataset,
    feature_vector,
    spec_structure_features,
)
from repro.model.trees import FloatArray, GradientBoostedTrees, mape

#: bump when the artifact payload schema changes shape
ARTIFACT_FORMAT = 1
ARTIFACT_KIND = "gbrt"

#: analytic fallback: cycles ≈ kernel_factor × format_factor × nnz + row tax
_FALLBACK_KERNEL = {"spmv": 4.0, "spma": 6.0, "spmm": 24.0}
_FALLBACK_FORMAT = {"csr": 1.0, "csb": 0.8, "spc5": 0.9, "sellcs": 0.9}
_FALLBACK_ROW_TAX = 10.0


@dataclass(frozen=True)
class CostModel:
    """A trained ensemble plus the metadata that makes it an artifact."""

    ensemble: GradientBoostedTrees
    feature_names: Tuple[str, ...]
    training: Dict[str, Any]
    metrics: Dict[str, Any]

    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        dataset: Dataset,
        *,
        holdout_fraction: float = 0.25,
        n_estimators: int = 150,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 2,
        subsample: float = 0.8,
        seed: int = 7,
    ) -> "CostModel":
        """Train on the identity-hashed train split, score on the holdout.

        Deterministic end to end: the split hashes row ids, the boosting
        subsampler is seeded, and tree construction tie-breaks stably —
        the same dataset at the same settings yields a byte-identical
        artifact (and therefore the same store key).
        """
        if len(dataset) < 4:
            raise ModelError(
                f"need at least 4 training rows, got {len(dataset)}"
            )
        train, holdout = dataset.split(holdout_fraction)
        score_on = holdout if len(holdout) else train
        ensemble = GradientBoostedTrees.fit(
            train.X,
            np.log(train.y),
            n_estimators=n_estimators,
            learning_rate=learning_rate,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            subsample=subsample,
            seed=seed,
        )
        model = cls(
            ensemble=ensemble,
            feature_names=tuple(dataset.feature_names),
            training={
                "rows": len(train),
                "holdout_rows": len(holdout),
                "holdout_fraction": float(holdout_fraction),
                "seed": int(seed),
                "params": {
                    "n_estimators": int(n_estimators),
                    "learning_rate": float(learning_rate),
                    "max_depth": int(max_depth),
                    "min_samples_leaf": int(min_samples_leaf),
                    "subsample": float(subsample),
                },
            },
            metrics={},
        )
        scored = model.evaluate(score_on)
        scored["scored_on"] = "holdout" if len(holdout) else "train"
        # dataclass is frozen; metrics dict is the one mutable pocket,
        # filled exactly once here
        model.metrics.update(scored)
        return model

    # ------------------------------------------------------------------
    def predict(self, X: FloatArray) -> FloatArray:
        """Predicted cycles (raw, not log) for rows in FEATURE_NAMES order."""
        mat = np.asarray(X, dtype=np.float64)
        if mat.ndim == 1:
            mat = mat.reshape(1, -1)
        if mat.shape[1] != len(self.feature_names):
            raise ModelError(
                f"feature-set mismatch: model expects "
                f"{len(self.feature_names)} features, got {mat.shape[1]}"
            )
        return np.exp(self.ensemble.predict(mat))

    def evaluate(self, dataset: Dataset) -> Dict[str, Any]:
        """Holdout-style accuracy: overall MAPE plus per-kernel breakdown."""
        if tuple(dataset.feature_names) != self.feature_names:
            raise ModelError(
                "feature-set mismatch between model and dataset"
            )
        pred = self.predict(dataset.X)
        kernels = np.asarray(dataset.kernels)
        per_kernel: Dict[str, Any] = {}
        for kernel in sorted(set(dataset.kernels)):
            mask = kernels == kernel
            per_kernel[kernel] = {
                "rows": int(mask.sum()),
                "mape": mape(dataset.y[mask], pred[mask]),
            }
        return {
            "rows": len(dataset),
            "mape": mape(dataset.y, pred),
            "per_kernel": per_kernel,
        }

    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """Pure-JSON artifact payload; round-trips bit-identically."""
        return {
            "format": ARTIFACT_FORMAT,
            "kind": ARTIFACT_KIND,
            "target": "via_cycles",
            "log_target": True,
            "feature_names": list(self.feature_names),
            "ensemble": self.ensemble.to_payload(),
            "training": self.training,
            "metrics": self.metrics,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "CostModel":
        """Rebuild from an artifact payload, strictly validated."""
        if not isinstance(payload, Mapping):
            raise ModelError("model artifact payload must be an object")
        if payload.get("format") != ARTIFACT_FORMAT:
            raise ModelError(
                f"unsupported artifact format {payload.get('format')!r}"
            )
        if payload.get("kind") != ARTIFACT_KIND:
            raise ModelError(
                f"unsupported artifact kind {payload.get('kind')!r}"
            )
        names = payload.get("feature_names")
        if (
            not isinstance(names, (list, tuple))
            or not names
            or not all(isinstance(n, str) for n in names)
        ):
            raise ModelError("artifact feature_names must be a string list")
        try:
            ensemble = GradientBoostedTrees.from_payload(payload["ensemble"])
        except KeyError as exc:
            raise ModelError("artifact is missing its ensemble") from exc
        return cls(
            ensemble=ensemble,
            feature_names=tuple(names),
            training=dict(payload.get("training", {})),
            metrics=dict(payload.get("metrics", {})),
        )


# ----------------------------------------------------------------------
# workload estimation (guided DSE ranking, serve `estimate` jobs)


def _fallback_cycles(
    structure: Mapping[str, float], kernel: str, fmt: str
) -> float:
    """Deterministic analytic estimate used when no model is loaded."""
    nnz = float(structure.get("nnz", 0.0))
    rows = float(structure.get("rows", 0.0))
    factor = _FALLBACK_KERNEL.get(kernel, 8.0) * _FALLBACK_FORMAT.get(fmt, 1.0)
    return factor * nnz + _FALLBACK_ROW_TAX * rows


class JobCostEstimator:
    """Predicts workload cost without simulating anything.

    Holds an optional :class:`CostModel`; with none (or a feature-set
    mismatch at predict time) every answer comes from the analytic
    fallback and says so.  Spec featurization is memoized per (matrix
    spec, CSB block size) in :mod:`repro.model.dataset`, so the warm
    path is pure dictionary lookups plus one vectorized tree descent —
    microseconds, never touching a worker.
    """

    def __init__(
        self,
        model: Optional[CostModel] = None,
        *,
        model_key: Optional[str] = None,
    ):
        self.model = model
        self.model_key = model_key

    @classmethod
    def load(cls, model_dir: Optional[str]) -> "JobCostEstimator":
        """Estimator backed by the store's LATEST artifact.

        A missing directory or empty store yields a fallback-only
        estimator (serving must come up before any model is trained);
        a *corrupt* LATEST artifact still raises — rot is never served.
        """
        if not model_dir:
            return cls()
        from repro.model.store import ModelStore

        store = ModelStore(model_dir)
        key = store.latest_key()
        if key is None:
            return cls()
        return cls(CostModel.from_payload(store.get(key)), model_key=key)

    @property
    def source(self) -> str:
        return "model" if self.model is not None else "fallback"

    # ------------------------------------------------------------------
    def predict_units(
        self,
        units: Sequence[Tuple[str, Dict[str, float]]],
        *,
        kernel: str,
        fmt: str,
        via: Mapping[str, Any],
        machine: Mapping[str, Any],
    ) -> List[float]:
        """Cycles for ``(name, structure_features)`` units, one batch."""
        if not units:
            return []
        if self.model is not None:
            X = np.stack(
                [
                    feature_vector(
                        structure, kernel=kernel, fmt=fmt,
                        via=via, machine=machine,
                    )
                    for _, structure in units
                ]
            )
            return [float(v) for v in self.model.predict(X)]
        return [
            _fallback_cycles(structure, kernel, fmt)
            for _, structure in units
        ]

    def estimate_workload(
        self,
        *,
        kernel: str,
        count: int,
        seed: int,
        min_n: int,
        max_n: int,
        formats: Sequence[str],
        sram_kb: int,
        ports: int,
    ) -> Dict[str, Any]:
        """Estimate a simulate-shaped workload; the ``estimate`` job body.

        Mirrors the serve execution path's unit construction (same
        collection sampler, same per-kernel format conventions) so the
        estimate prices exactly the units ``simulate`` would run.
        """
        from repro.matrices.collection import MatrixCollection
        from repro.sim.config import DEFAULT_MACHINE
        from repro.via.config import ViaConfig

        collection = MatrixCollection(count, seed=seed, min_n=min_n, max_n=max_n)
        via_cfg = ViaConfig(sram_kb, ports)
        via = {"sram_kb": via_cfg.sram_kb, "ports": via_cfg.ports}
        machine = dataclasses.asdict(DEFAULT_MACHINE)
        fmts = tuple(formats) if kernel == "spmv" else ("csr",)
        featurized = [
            (
                spec.name,
                spec_structure_features(
                    spec, block_size=via_cfg.csb_block_size
                ),
            )
            for spec in collection.specs
        ]
        units: List[Dict[str, Any]] = []
        total = 0.0
        for fmt in fmts:
            cycles = self.predict_units(
                featurized, kernel=kernel, fmt=fmt, via=via, machine=machine
            )
            for (name, structure), value in zip(featurized, cycles):
                units.append(
                    {
                        "name": name,
                        "format": fmt,
                        "n": int(structure["rows"]),
                        "nnz": int(structure["nnz"]),
                        "predicted_cycles": value,
                    }
                )
                total += value
        return {
            "source": self.source,
            "model_key": self.model_key,
            "kernel": kernel,
            "unit_count": len(units),
            "units": units,
            "predicted_cycles_total": total,
        }

    # ------------------------------------------------------------------
    def admission_cost(self, spec: Any) -> float:
        """Predicted cost (in cycles) of one job for queue accounting.

        Duck-typed over :class:`~repro.serve.jobs.JobSpec` so the model
        package never imports the serve layer.  Sim-family jobs price
        their actual units (sweeps once per port configuration); report
        and sleep jobs get small fixed costs so a cost budget still
        admits them under load.
        """
        kind = getattr(spec, "kind", None)
        if kind == "report":
            return 1.0e6
        if kind == "sleep":
            return 1.0e6 * (1.0 + float(getattr(spec, "duration_s", 0.0)))
        if kind not in ("simulate", "replay", "sweep", "estimate"):
            return 1.0e6
        estimate = self.estimate_workload(
            kernel=spec.kernel,
            count=spec.count,
            seed=spec.seed,
            min_n=spec.min_n,
            max_n=spec.max_n,
            formats=spec.formats,
            sram_kb=spec.sram_kb,
            ports=spec.ports,
        )
        total = float(estimate["predicted_cycles_total"])
        if kind == "sweep":
            total *= max(1, len(getattr(spec, "port_sweep", ()) or ()))
        return total
