"""From-scratch regression trees and gradient boosting — pure NumPy.

SpChar (PAPERS.md) shows decision trees over sparse-structure features
are enough to predict which architectural knobs matter; this module is
the stdlib+NumPy implementation backing :mod:`repro.model`.  No sklearn:
the container has what it has, and the model must stay deterministic and
serializable down to the bit.

Two pieces:

* :class:`RegressionTree` — a CART regressor with exact greedy
  variance-reduction splits, stored as flat node arrays (feature index,
  threshold, child links, leaf value) so prediction is a vectorized
  iterative descent and serialization is plain lists;
* :class:`GradientBoostedTrees` — squared-loss boosting over those
  trees: each stage fits the residual of the running prediction on a
  seeded row subsample, scaled by the learning rate.

Determinism contract: every tie (equal-gain splits, equal-gain
thresholds) breaks toward the lowest feature index / leftmost sorted
position, the subsampler draws from a seeded generator, and payload
round-trips are bit-identical (Python's ``json`` preserves float64
exactly).  The determinism analysis family (``python -m
repro.analysis``) holds this package to the sweep-worker scope: seeded
RNG only, no wall clocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro.errors import ModelError

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int32]

#: sentinel feature index marking a leaf node
_LEAF = -1

#: minimum gain for a split to beat "no split" (guards float noise)
_MIN_GAIN = 1e-12


def _as_matrix(X: npt.ArrayLike) -> FloatArray:
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim != 2:
        raise ModelError(f"feature matrix must be 2-D, got shape {arr.shape}")
    return arr


def _as_target(y: npt.ArrayLike, rows: int) -> FloatArray:
    arr = np.asarray(y, dtype=np.float64)
    if arr.ndim != 1 or arr.size != rows:
        raise ModelError(
            f"target must be 1-D with {rows} rows, got shape {arr.shape}"
        )
    if not np.isfinite(arr).all():
        raise ModelError("target contains non-finite values")
    return arr


def _best_split(
    X: FloatArray, y: FloatArray, min_leaf: int
) -> Tuple[float, int, float]:
    """Exact greedy split: ``(gain, feature, threshold)``.

    Gain is the parent SSE minus the children's summed SSE, computed for
    every candidate position of every feature via cumulative sums.  A
    negative feature index means no valid split exists.
    """
    n = y.size
    total_sum = float(y.sum())
    total_sq = float((y * y).sum())
    parent_sse = total_sq - total_sum * total_sum / n
    best_gain = 0.0
    best_feature = _LEAF
    best_threshold = 0.0
    left_cnt = np.arange(1, n, dtype=np.float64)
    right_cnt = n - left_cnt
    for j in range(X.shape[1]):
        xj = X[:, j]
        order = np.argsort(xj, kind="stable")
        xs = xj[order]
        if xs[0] == xs[-1]:
            continue  # constant feature in this node
        ys = y[order]
        left_sum = np.cumsum(ys)[:-1]
        right_sum = total_sum - left_sum
        child_sse = (
            total_sq
            - left_sum * left_sum / left_cnt
            - right_sum * right_sum / right_cnt
        )
        valid = (
            (xs[1:] > xs[:-1])
            & (left_cnt >= min_leaf)
            & (right_cnt >= min_leaf)
        )
        if not bool(valid.any()):
            continue
        gains = np.where(valid, parent_sse - child_sse, -np.inf)
        k = int(np.argmax(gains))  # leftmost max: deterministic tie-break
        gain = float(gains[k])
        if gain > best_gain + _MIN_GAIN:  # strict: lowest feature wins ties
            best_gain = gain
            best_feature = j
            best_threshold = float((xs[k] + xs[k + 1]) / 2.0)
    return best_gain, best_feature, best_threshold


@dataclass(frozen=True)
class RegressionTree:
    """A fitted CART regressor as flat node arrays.

    ``feature[i] == -1`` marks node *i* a leaf predicting ``value[i]``;
    internal nodes route ``x[feature] <= threshold`` to ``left``, else
    ``right``.  Arrays, not objects: prediction descends all rows in
    lockstep and serialization is a dict of lists.
    """

    feature: IntArray
    threshold: FloatArray
    left: IntArray
    right: IntArray
    value: FloatArray

    @classmethod
    def fit(
        cls,
        X: npt.ArrayLike,
        y: npt.ArrayLike,
        *,
        max_depth: int = 6,
        min_samples_leaf: int = 2,
    ) -> "RegressionTree":
        """Grow a tree by exact greedy variance reduction."""
        if max_depth < 1:
            raise ModelError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise ModelError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        mat = _as_matrix(X)
        target = _as_target(y, mat.shape[0])
        if mat.shape[0] == 0:
            raise ModelError("cannot fit a tree on an empty dataset")
        feature: List[int] = []
        threshold: List[float] = []
        left: List[int] = []
        right: List[int] = []
        value: List[float] = []

        def grow(idx: npt.NDArray[np.int64], depth: int) -> int:
            node = len(feature)
            ysub = target[idx]
            feature.append(_LEAF)
            threshold.append(0.0)
            left.append(_LEAF)
            right.append(_LEAF)
            value.append(float(ysub.mean()))
            if depth >= max_depth or idx.size < 2 * min_samples_leaf:
                return node
            gain, j, thr = _best_split(mat[idx], ysub, min_samples_leaf)
            if j < 0 or gain <= _MIN_GAIN:
                return node
            mask = mat[idx, j] <= thr
            feature[node] = j
            threshold[node] = thr
            left[node] = grow(idx[mask], depth + 1)
            right[node] = grow(idx[~mask], depth + 1)
            return node

        grow(np.arange(mat.shape[0], dtype=np.int64), 0)
        return cls(
            feature=np.asarray(feature, dtype=np.int32),
            threshold=np.asarray(threshold, dtype=np.float64),
            left=np.asarray(left, dtype=np.int32),
            right=np.asarray(right, dtype=np.int32),
            value=np.asarray(value, dtype=np.float64),
        )

    def predict(self, X: npt.ArrayLike) -> FloatArray:
        """Predict every row: lockstep descent from the root."""
        mat = _as_matrix(X)
        n = mat.shape[0]
        node = np.zeros(n, dtype=np.int64)
        rows = np.arange(n)
        while True:
            feat = self.feature[node]
            active = feat >= 0
            if not bool(active.any()):
                break
            cols = np.where(active, feat, 0)
            go_left = mat[rows, cols] <= self.threshold[node]
            nxt = np.where(go_left, self.left[node], self.right[node])
            node = np.where(active, nxt, node)
        out: FloatArray = self.value[node]
        return out

    @property
    def num_nodes(self) -> int:
        return int(self.feature.size)

    @property
    def depth(self) -> int:
        """Longest root-to-leaf path (0 for a single-leaf tree)."""
        depths = np.zeros(self.num_nodes, dtype=np.int64)
        # children always follow their parent in the arrays, so one
        # forward pass settles every depth
        for i in range(self.num_nodes):
            if self.feature[i] >= 0:
                depths[self.left[i]] = depths[i] + 1
                depths[self.right[i]] = depths[i] + 1
        return int(depths.max()) if self.num_nodes else 0

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe node arrays; round-trips bit-identically."""
        return {
            "feature": [int(v) for v in self.feature],
            "threshold": [float(v) for v in self.threshold],
            "left": [int(v) for v in self.left],
            "right": [int(v) for v in self.right],
            "value": [float(v) for v in self.value],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "RegressionTree":
        try:
            tree = cls(
                feature=np.asarray(payload["feature"], dtype=np.int32),
                threshold=np.asarray(payload["threshold"], dtype=np.float64),
                left=np.asarray(payload["left"], dtype=np.int32),
                right=np.asarray(payload["right"], dtype=np.int32),
                value=np.asarray(payload["value"], dtype=np.float64),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelError(f"malformed tree payload: {exc}") from exc
        sizes = {
            tree.feature.size,
            tree.threshold.size,
            tree.left.size,
            tree.right.size,
            tree.value.size,
        }
        if len(sizes) != 1 or not tree.num_nodes:
            raise ModelError("malformed tree payload: ragged or empty arrays")
        internal = tree.feature >= 0
        kids = np.concatenate([tree.left[internal], tree.right[internal]])
        if kids.size and (kids.min() < 0 or kids.max() >= tree.num_nodes):
            raise ModelError("malformed tree payload: child index out of range")
        return tree


@dataclass(frozen=True)
class GradientBoostedTrees:
    """Squared-loss gradient boosting over :class:`RegressionTree` stages."""

    base_score: float
    learning_rate: float
    trees: Tuple[RegressionTree, ...]

    @classmethod
    def fit(
        cls,
        X: npt.ArrayLike,
        y: npt.ArrayLike,
        *,
        n_estimators: int = 150,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 2,
        subsample: float = 0.8,
        seed: int = 7,
    ) -> "GradientBoostedTrees":
        """Fit deterministically: same data + same seed = same model."""
        if n_estimators < 1:
            raise ModelError(f"n_estimators must be >= 1, got {n_estimators}")
        if not (0.0 < learning_rate <= 1.0):
            raise ModelError(
                f"learning_rate must be in (0, 1], got {learning_rate}"
            )
        if not (0.0 < subsample <= 1.0):
            raise ModelError(f"subsample must be in (0, 1], got {subsample}")
        mat = _as_matrix(X)
        target = _as_target(y, mat.shape[0])
        if mat.shape[0] == 0:
            raise ModelError("cannot fit a model on an empty dataset")
        rng = np.random.default_rng(seed)
        running = np.full(mat.shape[0], float(target.mean()))
        floor = max(2 * min_samples_leaf, 2)
        stages: List[RegressionTree] = []
        for _ in range(n_estimators):
            residual = target - running
            if subsample < 1.0 and mat.shape[0] > floor:
                take = rng.random(mat.shape[0]) < subsample
                if int(take.sum()) < floor:
                    take = np.ones(mat.shape[0], dtype=bool)
            else:
                take = np.ones(mat.shape[0], dtype=bool)
            tree = RegressionTree.fit(
                mat[take],
                residual[take],
                max_depth=max_depth,
                min_samples_leaf=min_samples_leaf,
            )
            running = running + learning_rate * tree.predict(mat)
            stages.append(tree)
        return cls(
            base_score=float(target.mean()),
            learning_rate=float(learning_rate),
            trees=tuple(stages),
        )

    def predict(self, X: npt.ArrayLike) -> FloatArray:
        mat = _as_matrix(X)
        out = np.full(mat.shape[0], self.base_score)
        for tree in self.trees:
            out = out + self.learning_rate * tree.predict(mat)
        result: FloatArray = out
        return result

    @property
    def n_estimators(self) -> int:
        return len(self.trees)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "base_score": float(self.base_score),
            "learning_rate": float(self.learning_rate),
            "trees": [tree.to_payload() for tree in self.trees],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "GradientBoostedTrees":
        try:
            base = float(payload["base_score"])
            rate = float(payload["learning_rate"])
            raw: List[Dict[str, Any]] = list(payload["trees"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelError(f"malformed ensemble payload: {exc}") from exc
        if not raw:
            raise ModelError("malformed ensemble payload: no trees")
        return cls(
            base_score=base,
            learning_rate=rate,
            trees=tuple(RegressionTree.from_payload(t) for t in raw),
        )


def mape(y_true: npt.ArrayLike, y_pred: npt.ArrayLike) -> float:
    """Mean absolute percentage error over strictly-positive truths."""
    truth = np.asarray(y_true, dtype=np.float64)
    pred = np.asarray(y_pred, dtype=np.float64)
    if truth.shape != pred.shape:
        raise ModelError(
            f"shape mismatch: truth {truth.shape} vs pred {pred.shape}"
        )
    keep = truth > 0
    if not bool(keep.any()):
        return float("nan")
    return float(np.abs((pred[keep] - truth[keep]) / truth[keep]).mean())


def holdout_split(
    n: int, row_ids: List[str], holdout_fraction: float
) -> Tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
    """Deterministic train/holdout indices keyed on row identity.

    Hash-based, not RNG-based: the same row lands on the same side of the
    split no matter how the dataset was assembled or ordered, so accuracy
    numbers are comparable across mining runs.
    """
    import hashlib

    if n != len(row_ids):
        raise ModelError(f"{n} rows but {len(row_ids)} row ids")
    if not (0.0 <= holdout_fraction < 1.0):
        raise ModelError(
            f"holdout_fraction must be in [0, 1), got {holdout_fraction}"
        )
    cut = int(holdout_fraction * 2**32)
    buckets = np.asarray(
        [
            int.from_bytes(
                hashlib.sha256(rid.encode("utf-8")).digest()[:4], "big"
            )
            for rid in row_ids
        ],
        dtype=np.int64,
    )
    test = buckets < cut
    idx = np.arange(n, dtype=np.int64)
    train, holdout = idx[~test], idx[test]
    if train.size == 0:  # tiny datasets: never return an empty train side
        train, holdout = holdout, train
    return train, holdout
