"""Resource-lifecycle rules (family ``lifecycle``).

The serve worker pool and the eval supervisor juggle OS resources with
process-wide consequences: pipe ends that keep a dead worker's file
descriptors alive, subprocesses that outlive their owner, temp files and
sockets that accumulate across respawns.  PR 8's drain test proves the
*happy* paths leak nothing — this family proves the unhappy ones, by
running a forward may-analysis over each function's CFG
(:mod:`repro.analysis.cfg`) and checking that every acquired resource is
released, transferred, or stored on every path out, **including the
paths where a statement in between raises**.

Rules:

* ``VIA501`` (error) — a resource may still be open when the function
  returns normally;
* ``VIA502`` (error) — a resource may still be open when an exception
  escapes the function (the classic ``Pipe(); start()``-raises leak),
  or a resource is acquired inside a comprehension, where a failure
  mid-comprehension strands every element already built;
* ``VIA503`` (warning) — a name is rebound while the resource it holds
  may still be open (the old value becomes unreachable un-closed);
* ``VIA504`` (error) — a resource is used after every path has closed
  it (repeated ``close()`` is fine; ``send()`` on a closed pipe is not).

Ownership model (the false-positive policy, see DESIGN.md §13):

* passing a resource to *any* call — constructor, ``list.append``,
  helper — transfers ownership, even on the exception edge.  Whoever
  received it is responsible; flagging the caller too would make every
  hand-off pattern (``_Worker(conn=parent_conn)``) a false positive;
* returning, yielding, or storing into ``self.x``/a container transfers
  ownership to the caller/object;
* ``with ... as f`` acquires and releases on both the normal and the
  exceptional exit, mirroring ``__exit__`` semantics;
* only calls *not* on the safe-leaf allowlist can raise.  Release
  methods, collection mutators, and telemetry reads are modelled as
  non-raising so that ``conn.close(); bookkeeping()`` sequences do not
  manufacture phantom exception paths;
* a local class whose ``__init__`` acquires and which defines a
  release-style method is an *owner class*: constructing one is itself
  an acquisition (``_WorkerHandle(ctx)``), released by its own methods.

The analysis is intraprocedural: resources that cross function
boundaries are handled by the transfer rules above, not by inlining.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.core import (
    CFG,
    Block,
    Finding,
    Project,
    SourceFile,
    family_checker,
    function_cfgs,
    import_aliases,
    make_finding,
    rule,
    solve_forward,
)

VIA501 = rule(
    "VIA501",
    "lifecycle",
    "resource may remain open at normal function exit",
)
VIA502 = rule(
    "VIA502",
    "lifecycle",
    "resource may leak when an exception escapes the function",
)
VIA503 = rule(
    "VIA503",
    "lifecycle",
    "name rebound while its resource may still be open",
    severity="warning",
)
VIA504 = rule(
    "VIA504",
    "lifecycle",
    "resource used after it was closed on every path",
)

#: path fragments this family scans — the resource-juggling subsystems
#: plus the entry scripts, which open files and spawn servers directly
LIFECYCLE_PREFIXES: Tuple[str, ...] = (
    "repro/serve/",
    "repro/eval/supervisor",
    "benchmarks/",
    "examples/",
)

#: method names that release *some* resource; used both to recognise
#: release calls and to detect owner classes
_RELEASE_METHODS = frozenset(
    {
        "close",
        "join",
        "kill",
        "terminate",
        "cleanup",
        "shutdown",
        "stop",
        "stop_gently",
        "release",
        "detach",
        "wait",
        "communicate",
        "unlink",
    }
)

#: call leaves modelled as unable to raise (exception-path FP policy)
_SAFE_LEAVES = frozenset(
    {
        # releases (also: failing to close is not a new leak)
        *_RELEASE_METHODS,
        # collection / dict mutators and reads
        "append", "add", "extend", "insert", "remove", "discard", "clear",
        "update", "get", "setdefault", "pop", "popleft", "keys", "values",
        "items", "copy",
        # builtins and introspection
        "len", "isinstance", "issubclass", "hasattr", "getattr", "setattr",
        "repr", "str", "int", "float", "bool", "list", "dict", "tuple",
        "frozenset", "sorted", "reversed", "enumerate", "zip", "range",
        "min", "max", "sum", "abs", "id", "format", "print", "callable",
        # clocks and telemetry (sanctioned by the determinism family)
        "monotonic", "perf_counter", "process_time", "time", "sleep",
        "inc", "observe", "is_alive", "poll", "fileno", "is_set", "locked",
        # logging
        "debug", "info", "warning", "error", "exception", "log",
    }
)

#: constructors whose *instance* is armed by ``.start()`` — building one
#: is inert, starting it acquires a join/terminate obligation
_PROCESS_CTORS = frozenset({"Process", "Thread"})


@dataclass(frozen=True)
class Acquirer:
    """How a call leaf acquires, and what releases what it acquired."""

    kind: str
    releases: FrozenSet[str]
    pair: bool = False      # tuple target acquires two resources (Pipe)
    fd_first: bool = False  # tuple target acquires only element 0 (mkstemp)


#: call leaf -> acquisition spec (leaf-matched so ``ctx.Pipe``,
#: ``mp.Pipe`` and ``multiprocessing.Pipe`` all resolve)
_ACQUIRERS: Dict[str, Acquirer] = {
    "Pipe": Acquirer("pipe end", frozenset({"close"}), pair=True),
    "socketpair": Acquirer(
        "socket", frozenset({"close", "detach", "shutdown"}), pair=True
    ),
    "socket": Acquirer("socket", frozenset({"close", "detach", "shutdown"})),
    "create_connection": Acquirer(
        "socket", frozenset({"close", "detach", "shutdown"})
    ),
    "open": Acquirer("file", frozenset({"close"})),
    "NamedTemporaryFile": Acquirer("temp file", frozenset({"close"})),
    "TemporaryFile": Acquirer("temp file", frozenset({"close"})),
    "SpooledTemporaryFile": Acquirer("temp file", frozenset({"close"})),
    "TemporaryDirectory": Acquirer("temp dir", frozenset({"cleanup"})),
    "mkstemp": Acquirer("fd", frozenset(), fd_first=True),
    "mkdtemp": Acquirer("temp dir path", frozenset()),
    "Popen": Acquirer(
        "subprocess", frozenset({"wait", "kill", "terminate", "communicate"})
    ),
}

#: resolved-name suffixes releasing their first argument
_ARG_RELEASERS = ("os.close", "shutil.rmtree", "rmtree")

#: one tracked resource: (var, acquisition line, kind, status)
_Item = Tuple[str, int, str, str]
_State = Optional[FrozenSet[_Item]]

_OPEN = "open"
_CLOSED = "closed"
_TRANSFERRED = "transferred"


def _call_leaf(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _resolved_name(call: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    parts: List[str] = []
    node: ast.expr = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


def _walk_no_defs(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested def/class/lambda."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            stack.append(child)


def _names_in(node: ast.AST) -> Set[str]:
    return {
        n.id
        for n in _walk_no_defs(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def _with_bound_names(stmt: ast.AST) -> Set[str]:
    """Names a ``with`` statement's ``__exit__`` is responsible for."""
    names: Set[str] = set()
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if isinstance(item.optional_vars, ast.Name):
                names.add(item.optional_vars.id)
            if isinstance(item.context_expr, ast.Name):
                names.add(item.context_expr.id)
    return names


def _owner_classes(
    tree: ast.Module, aliases: Dict[str, str]
) -> Dict[str, FrozenSet[str]]:
    """Local classes whose constructor is itself an acquisition.

    A class counts when its ``__init__`` performs a known acquisition and
    the class offers a release-style method — then ``Cls(...)`` hands the
    caller a close/kill/join obligation, exactly like ``Pipe()`` does.
    """
    owners: Dict[str, FrozenSet[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            n.name
            for n in node.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        releases = frozenset(methods & _RELEASE_METHODS)
        if not releases:
            continue
        init = next(
            (
                n
                for n in node.body
                if isinstance(n, ast.FunctionDef) and n.name == "__init__"
            ),
            None,
        )
        if init is None:
            continue
        acquires = any(
            isinstance(sub, ast.Call)
            and (
                (_call_leaf(sub) or "") in _ACQUIRERS
                or (_call_leaf(sub) or "") in _PROCESS_CTORS
            )
            for sub in _walk_no_defs(init)
        )
        if acquires:
            owners[node.name] = releases
    return owners


class _FunctionAnalysis:
    """Lifecycle dataflow over one function's CFG."""

    def __init__(
        self,
        src: SourceFile,
        qualname: str,
        cfg: CFG,
        aliases: Dict[str, str],
        owners: Dict[str, FrozenSet[str]],
    ):
        self.src = src
        self.qualname = qualname
        self.cfg = cfg
        self.aliases = aliases
        self.owners = owners
        #: kind label -> release-method names for items of that kind
        self.releases_by_kind: Dict[str, FrozenSet[str]] = {
            spec.kind: spec.releases for spec in _ACQUIRERS.values()
        }
        self.releases_by_kind["process"] = frozenset(
            {"join", "kill", "terminate", "close"}
        )
        for cls, releases in owners.items():
            self.releases_by_kind[f"instance of {cls}"] = releases
        #: names assigned a Process/Thread constructor anywhere here
        self.proc_vars: Set[str] = set()
        for node in _walk_no_defs(cfg.func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and (_call_leaf(node.value) or "") in _PROCESS_CTORS
            ):
                self.proc_vars.add(node.targets[0].id)
        #: (rule, line, message) accumulated during the reporting pass
        self.found: Set[Tuple[str, int, str]] = set()

    # -- acquisition lookup --------------------------------------------
    def _acquirer_of(self, expr: ast.expr) -> Optional[Acquirer]:
        if not isinstance(expr, ast.Call):
            return None
        leaf = _call_leaf(expr)
        if leaf is None:
            return None
        if leaf in self.owners:
            return Acquirer(f"instance of {leaf}", self.owners[leaf])
        return _ACQUIRERS.get(leaf)

    def _is_release_attr(self, items: FrozenSet[_Item], var: str, attr: str) -> bool:
        for name, _line, kind, _status in items:
            if name == var:
                releases = self.releases_by_kind.get(kind, frozenset())
                if attr in releases or attr in _RELEASE_METHODS:
                    return True
        return False

    # -- state helpers -------------------------------------------------
    @staticmethod
    def _tracked(items: FrozenSet[_Item], var: str) -> bool:
        return any(it[0] == var for it in items)

    @staticmethod
    def _must_closed(items: FrozenSet[_Item], var: str) -> bool:
        statuses = [it[3] for it in items if it[0] == var]
        return bool(statuses) and all(s == _CLOSED for s in statuses)

    @staticmethod
    def _set_status(
        items: FrozenSet[_Item], var: str, status: str, only_open: bool = False
    ) -> FrozenSet[_Item]:
        out = set()
        for it in items:
            if it[0] == var and (not only_open or it[3] == _OPEN):
                out.add((it[0], it[1], it[2], status))
            else:
                out.add(it)
        return frozenset(out)

    def _rebind(
        self,
        items: FrozenSet[_Item],
        var: str,
        line: int,
        sink: Optional[List[Tuple[str, int, str]]],
    ) -> FrozenSet[_Item]:
        open_items = [it for it in items if it[0] == var and it[3] == _OPEN]
        if open_items and sink is not None:
            site = open_items[0]
            sink.append(
                (
                    VIA503,
                    line,
                    f"{var!r} is rebound in {self.qualname}() while the "
                    f"{site[2]} it acquired on line {site[1]} may still be "
                    "open; the old value becomes unreachable un-released",
                )
            )
        return frozenset(it for it in items if it[0] != var)

    # -- expression evaluation -----------------------------------------
    def _eval(
        self,
        exprs: Sequence[ast.expr],
        items: FrozenSet[_Item],
        sink: Optional[List[Tuple[str, int, str]]],
    ) -> Tuple[FrozenSet[_Item], bool]:
        """Apply uses, releases, and argument-transfers; report misuse.

        Returns the updated state and whether anything here may raise.
        """
        may_raise = False
        for expr in exprs:
            for node in _walk_no_defs(expr):
                if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
                    may_raise = True
                if not isinstance(node, ast.Call):
                    continue
                leaf = _call_leaf(node)
                resolved = _resolved_name(node, self.aliases) or (leaf or "")
                if leaf is not None and leaf not in _SAFE_LEAVES:
                    may_raise = True
                elif leaf is None:
                    may_raise = True  # dynamic callee: assume it can raise

                # arg-style release: os.close(fd), shutil.rmtree(path)
                if resolved.endswith(_ARG_RELEASERS) and node.args:
                    arg = node.args[0]
                    if isinstance(arg, ast.Name) and self._tracked(items, arg.id):
                        items = self._set_status(items, arg.id, _CLOSED)
                        continue

                # method release: conn.close(), proc.join(), tmp.cleanup()
                if isinstance(node.func, ast.Attribute) and isinstance(
                    node.func.value, ast.Name
                ):
                    var = node.func.value.id
                    if self._tracked(items, var):
                        if self._is_release_attr(items, var, node.func.attr):
                            items = self._set_status(items, var, _CLOSED)
                        elif self._must_closed(items, var) and sink is not None:
                            sink.append(
                                (
                                    VIA504,
                                    node.lineno,
                                    f"{var}.{node.func.attr}() in "
                                    f"{self.qualname}() but every path has "
                                    f"already closed {var!r}",
                                )
                            )

                # ownership transfer: the resource is someone else's now
                for arg_node in [*node.args, *[kw.value for kw in node.keywords]]:
                    for name in _names_in(arg_node) | (
                        {arg_node.id} if isinstance(arg_node, ast.Name) else set()
                    ):
                        if self._tracked(items, name):
                            if self._must_closed(items, name) and sink is not None:
                                sink.append(
                                    (
                                        VIA504,
                                        node.lineno,
                                        f"{name!r} passed to a call in "
                                        f"{self.qualname}() but every path "
                                        "has already closed it",
                                    )
                                )
                            items = self._set_status(
                                items, name, _TRANSFERRED, only_open=True
                            )
        return items, may_raise

    def _acquire(
        self,
        items: FrozenSet[_Item],
        target: ast.expr,
        value: ast.Call,
        spec: Acquirer,
        line: int,
        sink: Optional[List[Tuple[str, int, str]]],
    ) -> FrozenSet[_Item]:
        if isinstance(target, ast.Name):
            items = self._rebind(items, target.id, line, sink)
            return items | {(target.id, line, spec.kind, _OPEN)}
        if isinstance(target, ast.Tuple) and (spec.pair or spec.fd_first):
            names = [e.id for e in target.elts if isinstance(e, ast.Name)]
            take = names[:1] if spec.fd_first else names[:2]
            for name in take:
                items = self._rebind(items, name, line, sink)
                items |= {(name, line, spec.kind, _OPEN)}
        return items

    # -- per-block transfer --------------------------------------------
    def apply(
        self,
        block: Block,
        state: FrozenSet[_Item],
        sink: Optional[List[Tuple[str, int, str]]],
    ) -> Tuple[_State, _State]:
        items = state
        kind = block.kind
        if kind in ("entry", "exit", "raise", "join", "handler"):
            # pass-through blocks forward whichever state reaches them,
            # on both edge kinds (dispatch blocks fan exceptions out)
            return items, items
        stmt = block.stmt
        assert stmt is not None
        line = block.line

        if kind == "with-exit":
            for var in _with_bound_names(stmt):
                if self._tracked(items, var):
                    items = self._set_status(items, var, _CLOSED, only_open=True)
            return items, items

        if kind == "with-enter":
            assert isinstance(stmt, (ast.With, ast.AsyncWith))
            exprs = [item.context_expr for item in stmt.items]
            items, may_raise = self._eval(exprs, items, sink)
            pre_acquire = items
            for item in stmt.items:
                spec = self._acquirer_of(item.context_expr)
                if spec is not None and isinstance(item.optional_vars, ast.Name):
                    items = self._acquire(
                        items, item.optional_vars, item.context_expr, spec,
                        line, sink,
                    )
            return items, (pre_acquire if may_raise else None)

        if kind == "branch":
            if isinstance(stmt, (ast.If, ast.While)):
                test: Optional[ast.expr] = stmt.test
            else:  # ast.Match subject (3.10+)
                test = getattr(stmt, "subject", None)
            if test is None:
                return items, None
            items, may_raise = self._eval([test], items, sink)
            return items, (items if may_raise else None)

        if kind == "loop":
            assert isinstance(stmt, (ast.For, ast.AsyncFor))
            items, may_raise = self._eval([stmt.iter], items, sink)
            exc_state = items if may_raise else None
            for name in [
                n.id
                for n in ast.walk(stmt.target)
                if isinstance(n, ast.Name)
            ]:
                items = self._rebind(items, name, line, sink)
            return items, exc_state

        # plain payload statements
        return self._apply_stmt(stmt, items, line, sink)

    def _apply_stmt(
        self,
        stmt: ast.AST,
        items: FrozenSet[_Item],
        line: int,
        sink: Optional[List[Tuple[str, int, str]]],
    ) -> Tuple[_State, _State]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return items, None
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    items = frozenset(it for it in items if it[0] != target.id)
            return items, None
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                return items, None
            items, may_raise = self._eval([stmt.value], items, sink)
            for name in _names_in(stmt.value):
                if self._tracked(items, name):
                    items = self._set_status(
                        items, name, _TRANSFERRED, only_open=True
                    )
            return items, (items if may_raise else None)
        if isinstance(stmt, ast.Raise):
            exprs = [e for e in (stmt.exc, stmt.cause) if e is not None]
            items, _ = self._eval(exprs, items, sink)
            return items, items
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return self._apply_assign(stmt, items, line, sink)
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "start"
            and isinstance(stmt.value.func.value, ast.Name)
            and stmt.value.func.value.id in self.proc_vars
        ):
            # p = Process(...) is inert; p.start() arms the join/terminate
            # obligation.  A start() that raises armed nothing, so the
            # exception edge carries the pre-start state.
            call = stmt.value
            var = stmt.value.func.value.id
            items, _ = self._eval(
                [*call.args, *[kw.value for kw in call.keywords]], items, sink
            )
            pre = items
            items = self._rebind(items, var, line, sink)
            items |= {(var, line, "process", _OPEN)}
            return items, pre

        # everything else: evaluate all contained expressions
        exprs = [n for n in ast.iter_child_nodes(stmt) if isinstance(n, ast.expr)]
        items, may_raise = self._eval(exprs, items, sink)
        if isinstance(stmt, (ast.Assert, ast.Await)):
            may_raise = True
        return items, (items if may_raise else None)

    def _apply_assign(
        self,
        stmt: ast.AST,
        items: FrozenSet[_Item],
        line: int,
        sink: Optional[List[Tuple[str, int, str]]],
    ) -> Tuple[_State, _State]:
        if isinstance(stmt, ast.Assign):
            targets: List[ast.expr] = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
            value = stmt.value if stmt.value is not None else None
        else:
            assert isinstance(stmt, ast.AugAssign)
            targets = []
            value = stmt.value
        if value is None:
            return items, None

        spec = self._acquirer_of(value) if isinstance(value, ast.Call) else None

        if spec is not None and isinstance(value, ast.Call):
            # the acquiring call itself: evaluate its *arguments* (they
            # may transfer other resources), then bind the new resource
            items, _ = self._eval(
                [*value.args, *[kw.value for kw in value.keywords]],
                items, sink,
            )
            # an acquirer that raises acquired nothing — the exception
            # edge carries the pre-acquisition state
            pre = items
            for target in targets:
                items = self._acquire(items, target, value, spec, line, sink)
            return items, pre

        items, may_raise = self._eval([value], items, sink)
        exc_after_eval: _State = items if may_raise else None

        if isinstance(value, ast.Name) and self._tracked(items, value.id):
            # aliasing / store: the receiving binding owns it now
            items = self._set_status(items, value.id, _TRANSFERRED, only_open=True)
        else:
            for target in targets:
                if not isinstance(target, ast.Name):
                    # self.x = conn / d[k] = conn: stored, owner changes
                    for name in _names_in(value):
                        if self._tracked(items, name):
                            items = self._set_status(
                                items, name, _TRANSFERRED, only_open=True
                            )
        for target in targets:
            if isinstance(target, ast.Name):
                items = self._rebind(items, target.id, line, sink)
        return items, exc_after_eval

    # -- driving -------------------------------------------------------
    def run(self) -> List[Finding]:
        init: FrozenSet[_Item] = frozenset()

        def transfer(
            block: Block, state: FrozenSet[_Item]
        ) -> Tuple[_State, _State]:
            return self.apply(block, state, None)

        solution = solve_forward(
            self.cfg,
            init=init,
            bottom=None,
            join=lambda a, b: a | b,
            transfer=transfer,
        )

        sink: List[Tuple[str, int, str]] = []
        for bid in self.cfg.reachable():
            in_state = solution.in_states[bid]
            if in_state is None:
                continue
            self.apply(self.cfg.blocks[bid], in_state, sink)

        findings: Set[Tuple[str, int, str]] = set(sink)
        reported_501: Set[Tuple[str, int]] = set()
        exit_state = solution.in_states[self.cfg.exit]
        if exit_state is not None:
            for var, site, kind, status in exit_state:
                if status == _OPEN:
                    reported_501.add((var, site))
                    findings.add(
                        (
                            VIA501,
                            site,
                            f"{kind} {var!r} acquired here may still be open "
                            f"when {self.qualname}() returns; close it on "
                            "every path or transfer ownership",
                        )
                    )
        raise_state = solution.in_states[self.cfg.raise_exit]
        if raise_state is not None:
            for var, site, kind, status in raise_state:
                if status == _OPEN and (var, site) not in reported_501:
                    findings.add(
                        (
                            VIA502,
                            site,
                            f"{kind} {var!r} acquired here leaks when an "
                            f"exception escapes {self.qualname}(); release "
                            "it in an except/finally before re-raising",
                        )
                    )
        return [
            make_finding(rule_id, self.src.rel, line, message)
            for rule_id, line, message in sorted(findings)
        ]


def _comprehension_findings(
    src: SourceFile,
    tree: ast.Module,
    owners: Dict[str, FrozenSet[str]],
) -> List[Finding]:
    """Acquisitions inside comprehensions: VIA502 by construction.

    ``[Acquire() for _ in range(n)]`` leaks every earlier element when a
    later one raises — the partial list is unnamed, so no cleanup code
    can reach it.  Build incrementally into a named container instead.
    """
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            continue
        elements: List[ast.expr] = (
            [node.key, node.value]
            if isinstance(node, ast.DictComp)
            else [node.elt]
        )
        for element in elements:
            for sub in ast.walk(element):
                if not isinstance(sub, ast.Call):
                    continue
                leaf = _call_leaf(sub) or ""
                if leaf in _ACQUIRERS or leaf in owners:
                    findings.append(
                        make_finding(
                            VIA502, src.rel, sub.lineno,
                            f"{leaf}(...) acquired inside a comprehension: "
                            "if a later element raises, the elements already "
                            "built leak with no name to clean them up — "
                            "build the container incrementally so partial "
                            "progress stays reachable",
                        )
                    )
    return findings


def _scan_file(src: SourceFile) -> List[Finding]:
    tree = src.tree
    if tree is None:
        return []
    aliases = import_aliases(tree)
    owners = _owner_classes(tree, aliases)
    findings = _comprehension_findings(src, tree, owners)
    for qualname, cfg in function_cfgs(tree):
        analysis = _FunctionAnalysis(src, qualname, cfg, aliases, owners)
        findings.extend(analysis.run())
    return findings


@family_checker("lifecycle")
def check_lifecycle(
    project: Project,
    prefixes: Sequence[str] = LIFECYCLE_PREFIXES,
) -> List[Finding]:
    findings: List[Finding] = []
    for src in project.iter_files(list(prefixes)):
        findings.extend(_scan_file(src))
    return findings
