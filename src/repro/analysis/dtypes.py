"""Dtype-hygiene rules (family ``dtypes``).

The columnar pricing engine's contract is *bit-identity*: replay through
:mod:`repro.sim.columnar` must produce exactly the cycle counts that
``Op.apply`` produces, across interpreter versions and numpy builds.
Integer cycle arithmetic is what makes that promise cheap to keep —
int64 adds are associative and exact, float64 adds are neither.  One
``/`` where ``//`` was meant, one ``np.mean`` (which always promotes to
float64), one ``* 1.5`` folded into a cycle column, and the engine's
results start depending on summation order.

This family runs a forward **must**-analysis (intersection at joins)
over each pricing-kernel function in ``sim/columnar.py`` and
``sim/hierarchy.py``, tracking which locals are provably integer numpy
arrays, and flags the three promotion shapes:

* ``VIA701`` (error) — true division ``/`` with a must-int operand
  (promotes to float64; integer cycle math wants ``//``);
* ``VIA702`` (error) — ``np.mean(x)`` / ``x.mean()`` on a must-int
  array without an explicit ``dtype=`` (silently accumulates in
  float64; passing ``dtype`` states the promotion is intended);
* ``VIA703`` (error) — a float literal folded into ``+``/``-``/``*``
  arithmetic with a must-int operand.

Only explicit integer evidence seeds the analysis (``dtype=np.int64``
array constructors, ``.astype(int...)``, integer scalar constructors,
``searchsorted`` results) — plain python ints and ambient lists never
do, so the float accumulators ``hierarchy.py`` uses deliberately (its
fractional-latency configs price through float on purpose) stay out of
scope.  Intended promotions are annotated with an explicit ``dtype=``
or a ``# via: ignore[VIA70x]`` beside the arithmetic.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    Block,
    Finding,
    Project,
    SourceFile,
    family_checker,
    function_cfgs,
    make_finding,
    rule,
    solve_forward,
)

VIA701 = rule(
    "VIA701",
    "dtypes",
    "true division on an integer array promotes cycle math to float",
)
VIA702 = rule(
    "VIA702",
    "dtypes",
    "mean() on an integer array accumulates in float64 without saying so",
)
VIA703 = rule(
    "VIA703",
    "dtypes",
    "float literal folded into integer cycle arithmetic",
)

#: files this family scans — the pricing kernels under the bit-identity
#: contract
DTYPE_SCOPES: Tuple[str, ...] = (
    "repro/sim/columnar.py",
    "repro/sim/hierarchy.py",
)

#: dtype spellings that prove integerness
_INT_DTYPE_LEAVES = frozenset(
    {
        "int", "int_", "intp", "intc",
        "int8", "int16", "int32", "int64",
        "uint", "uint8", "uint16", "uint32", "uint64",
    }
)

#: numpy constructors that yield an int array when dtype= is int
_ARRAY_CTORS = frozenset(
    {
        "zeros", "ones", "empty", "full", "arange", "array", "asarray",
        "zeros_like", "ones_like", "empty_like", "full_like", "fromiter",
    }
)

#: calls whose result is int whenever their (first) array argument is
_INT_PRESERVING_CALLS = frozenset(
    {
        "cumsum", "sum", "clip", "abs", "absolute", "maximum", "minimum",
        "where", "concatenate", "repeat", "take", "roll", "sort", "copy",
        "reshape", "ravel", "flatten", "diff",
    }
)

#: calls returning integer indices regardless of input dtype
_ALWAYS_INT_CALLS = frozenset(
    {"searchsorted", "argsort", "argmax", "argmin", "count_nonzero", "nonzero"}
)

#: binary ops that keep integer arrays integer
_INT_PRESERVING_OPS = (
    ast.Add, ast.Sub, ast.Mult, ast.Mod, ast.FloorDiv,
    ast.LShift, ast.RShift, ast.BitOr, ast.BitAnd, ast.BitXor,
)

_State = Optional[FrozenSet[str]]


def _call_leaf(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _is_int_dtype_expr(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id in _INT_DTYPE_LEAVES
    if isinstance(expr, ast.Attribute):
        return expr.attr in _INT_DTYPE_LEAVES
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value.lstrip("<>=|").startswith(("int", "uint"))
    return False


def _dtype_kw(call: ast.Call) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == "dtype":
            return kw.value
    return None


class _IntTracker:
    """Decides integerness of expressions under a must-int var set."""

    def __init__(self, ints: FrozenSet[str]):
        self.ints = ints

    def is_int(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.ints
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, int) and not isinstance(
                expr.value, bool
            )
        if isinstance(expr, ast.Subscript):
            return self.is_int(expr.value)
        if isinstance(expr, ast.UnaryOp):
            return self.is_int(expr.operand)
        if isinstance(expr, ast.BinOp):
            return (
                isinstance(expr.op, _INT_PRESERVING_OPS)
                and self.is_int(expr.left)
                and self.is_int(expr.right)
            )
        if isinstance(expr, ast.Call):
            return self._call_is_int(expr)
        return False

    def _call_is_int(self, call: ast.Call) -> bool:
        leaf = _call_leaf(call)
        if leaf is None:
            return False
        if leaf in _INT_DTYPE_LEAVES:
            return True  # np.int64(x), int(x): integer scalar constructors
        if leaf in _ALWAYS_INT_CALLS:
            return True
        if leaf == "astype":
            return bool(call.args) and _is_int_dtype_expr(call.args[0])
        dtype = _dtype_kw(call)
        if leaf in _ARRAY_CTORS:
            return dtype is not None and _is_int_dtype_expr(dtype)
        if leaf in _INT_PRESERVING_CALLS:
            if dtype is not None:
                return _is_int_dtype_expr(dtype)
            operands: List[ast.expr] = list(call.args)
            if isinstance(call.func, ast.Attribute) and not isinstance(
                call.func.value, ast.Attribute
            ):
                # x.cumsum(): the receiver is the array operand
                operands.append(call.func.value)
            array_ish = [
                op
                for op in operands
                if not (isinstance(op, ast.Constant))
            ]
            return bool(array_ish) and all(self.is_int(op) for op in array_ish)
        return False


class _FunctionDtypes:
    """Forward must-int analysis + promotion reporting for one function."""

    def __init__(self, src: SourceFile, qualname: str):
        self.src = src
        self.qualname = qualname

    # -- transfer ------------------------------------------------------
    def transfer(self, block: Block, state: FrozenSet[str]) -> Tuple[_State, _State]:
        out = self._apply(block, state)
        # types do not change when a statement raises: the handler sees
        # the pre-statement bindings
        return out, state

    def _apply(self, block: Block, state: FrozenSet[str]) -> FrozenSet[str]:
        stmt = block.stmt
        if stmt is None:
            return state
        tracker = _IntTracker(state)
        if block.kind == "loop" and isinstance(stmt, (ast.For, ast.AsyncFor)):
            # `for v in arr:` binds int elements from an int array
            if isinstance(stmt.target, ast.Name):
                if tracker.is_int(stmt.iter):
                    return state | {stmt.target.id}
                return state - {stmt.target.id}
            return state
        if block.kind != "stmt":
            return state
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                if tracker.is_int(stmt.value):
                    return state | {target.id}
                return state - {target.id}
            if isinstance(target, ast.Tuple):
                names = {e.id for e in target.elts if isinstance(e, ast.Name)}
                return state - frozenset(names)
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.value is not None and tracker.is_int(stmt.value):
                return state | {stmt.target.id}
            return state - {stmt.target.id}
        if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            if name in state:
                keeps = isinstance(
                    stmt.op, _INT_PRESERVING_OPS
                ) and tracker.is_int(stmt.value)
                return state if keeps else state - {name}
        return state

    # -- reporting -----------------------------------------------------
    def report(self, block: Block, state: FrozenSet[str]) -> List[Finding]:
        stmt = block.stmt
        if stmt is None or block.kind in ("with-exit", "handler"):
            return []
        tracker = _IntTracker(state)
        findings: List[Finding] = []
        for node in self._payload_exprs(block):
            for sub in ast.walk(node):
                if isinstance(sub, ast.BinOp):
                    findings.extend(self._check_binop(sub, tracker))
                elif isinstance(sub, ast.Call):
                    findings.extend(self._check_call(sub, tracker))
        if (
            isinstance(stmt, ast.AugAssign)
            and isinstance(stmt.op, ast.Div)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id in state
        ):
            findings.append(self._div_finding(stmt.lineno))
        return findings

    def _payload_exprs(self, block: Block) -> List[ast.expr]:
        stmt = block.stmt
        assert stmt is not None
        if block.kind == "branch":
            if isinstance(stmt, (ast.If, ast.While)):
                return [stmt.test]
            subject = getattr(stmt, "subject", None)
            return [subject] if subject is not None else []
        if block.kind == "loop" and isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if block.kind == "with-enter" and isinstance(
            stmt, (ast.With, ast.AsyncWith)
        ):
            return [item.context_expr for item in stmt.items]
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return []
        return [n for n in ast.iter_child_nodes(stmt) if isinstance(n, ast.expr)]

    def _check_binop(
        self, node: ast.BinOp, tracker: _IntTracker
    ) -> List[Finding]:
        out: List[Finding] = []
        # bare int literals propagate intness (`arr + 1`) but must not
        # *trigger* findings — `total / 2` on a float total is fine
        left_int = tracker.is_int(node.left) and not isinstance(
            node.left, ast.Constant
        )
        right_int = tracker.is_int(node.right) and not isinstance(
            node.right, ast.Constant
        )
        if isinstance(node.op, ast.Div) and (left_int or right_int):
            out.append(self._div_finding(node.lineno))
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mult)):
            for a, b in ((node.left, node.right), (node.right, node.left)):
                if (
                    isinstance(a, ast.Constant)
                    and isinstance(a.value, float)
                    and not isinstance(b, ast.Constant)
                    and tracker.is_int(b)
                ):
                    out.append(
                        make_finding(
                            VIA703, self.src.rel, node.lineno,
                            f"float literal {a.value!r} folded into integer "
                            f"cycle arithmetic in {self.qualname}(); the "
                            "result silently becomes float64 and the "
                            "bit-identity contract now depends on summation "
                            "order — keep cycle math integral or make the "
                            "promotion explicit with astype/dtype",
                        )
                    )
                    break
        return out

    def _check_call(self, call: ast.Call, tracker: _IntTracker) -> List[Finding]:
        if _call_leaf(call) != "mean" or _dtype_kw(call) is not None:
            return []
        operand: Optional[ast.expr] = None
        if call.args:
            operand = call.args[0]
        elif isinstance(call.func, ast.Attribute):
            operand = call.func.value
        if operand is None or not tracker.is_int(operand):
            return []
        return [
            make_finding(
                VIA702, self.src.rel, call.lineno,
                f"mean() of an integer array in {self.qualname}() "
                "accumulates in float64; pass an explicit dtype= to state "
                "the promotion is intended (or keep a summed int and divide "
                "at the edge)",
            )
        ]

    def _div_finding(self, line: int) -> Finding:
        return make_finding(
            VIA701, self.src.rel, line,
            f"true division on an integer operand in {self.qualname}() "
            "promotes cycle math to float64, breaking exactness; use // "
            "for integer cycles or astype(float) to make the promotion "
            "explicit",
        )


def _scan_file(src: SourceFile) -> List[Finding]:
    tree = src.tree
    if tree is None:
        return []
    findings: List[Finding] = []
    for qualname, cfg in function_cfgs(tree):
        analysis = _FunctionDtypes(src, qualname)
        init: FrozenSet[str] = frozenset()
        solution = solve_forward(
            cfg,
            init=init,
            bottom=None,
            join=lambda a, b: a & b,
            transfer=analysis.transfer,
        )
        seen: Set[Tuple[str, int, str]] = set()
        for bid in cfg.reachable():
            state = solution.in_states[bid]
            if state is None:
                continue
            for finding in analysis.report(cfg.blocks[bid], state):
                key = (finding.rule, finding.line, finding.message)
                if key not in seen:
                    seen.add(key)
                    findings.append(finding)
    return findings


@family_checker("dtypes")
def check_dtypes(
    project: Project,
    scopes: Sequence[str] = DTYPE_SCOPES,
) -> List[Finding]:
    findings: List[Finding] = []
    for src in project.iter_files(list(scopes)):
        findings.extend(_scan_file(src))
    return findings
