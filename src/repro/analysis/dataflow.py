"""Generic fixpoint dataflow over :mod:`repro.analysis.cfg` graphs.

A client supplies a small lattice (a join and an initial/bottom state)
and a transfer function; the solver runs the standard worklist iteration
to a fixpoint.  States are opaque to the solver — it only needs
``join``, equality, and a notion of *unreachable* (``bottom``) that it
can skip when propagating, so rule families can use frozensets of
tuples, dicts, or anything else hashable-equatable.

Two directions:

* :func:`solve_forward` — states flow entry → exit.  The transfer
  function returns a **pair** ``(normal_out, exc_out)``: the state on
  ordinary fall-through and the state when the block's statement raises
  mid-way.  That split is what makes exception-path analyses (VIA502)
  precise — a resource acquired *by* the raising statement is not yet
  open on the ``exc`` edge, while one acquired earlier is.  Clients
  that consider a statement unable to raise return ``bottom`` as
  ``exc_out`` and the edge contributes nothing.
* :func:`solve_backward` — states flow exit → entry along reversed
  edges (classic liveness shape).  Backward transfer takes one out
  state and returns one in state; the distinction between normal and
  exception successors is folded by joining both.

Termination: lattices here are finite (sets over program sites) and
transfer functions monotone, so the worklist drains.  A ``max_steps``
safety valve (default 100k block-visits) guards against a buggy
non-monotone client looping forever inside CI.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, List, Tuple, TypeVar

from repro.analysis.cfg import CFG, Block

S = TypeVar("S")

#: forward transfer: (block, in_state) -> (normal_out, exc_out)
ForwardTransfer = Callable[[Block, S], Tuple[S, S]]
#: backward transfer: (block, out_state) -> in_state
BackwardTransfer = Callable[[Block, S], S]
JoinFn = Callable[[S, S], S]


class FixpointDiverged(RuntimeError):
    """The worklist exceeded ``max_steps`` — a non-monotone transfer."""


class Solution(Generic[S]):
    """Per-block states at the fixpoint.

    ``in_states[b]`` is the join over states arriving at block ``b``;
    ``out_states[b]`` is the pair/single state leaving it (direction-
    dependent).  Blocks never reached hold ``bottom``.
    """

    def __init__(self, in_states: Dict[int, S], out_states: Dict[int, S]):
        self.in_states = in_states
        self.out_states = out_states


def solve_forward(
    cfg: CFG,
    *,
    init: S,
    bottom: S,
    join: JoinFn[S],
    transfer: ForwardTransfer[S],
    max_steps: int = 100_000,
) -> Solution[S]:
    """Forward may-analysis: propagate ``init`` from entry to the exits.

    ``bottom`` marks unreachable — it is never propagated along edges
    and never passed to ``transfer``, so transfer functions see only
    live states.
    """
    in_states: Dict[int, S] = {bid: bottom for bid in cfg.blocks}
    normal_out: Dict[int, S] = {bid: bottom for bid in cfg.blocks}
    exc_out: Dict[int, S] = {bid: bottom for bid in cfg.blocks}
    in_states[cfg.entry] = init

    worklist: List[int] = [cfg.entry]
    queued = {cfg.entry}
    steps = 0
    while worklist:
        steps += 1
        if steps > max_steps:
            raise FixpointDiverged(
                f"forward solve of {cfg.name} exceeded {max_steps} steps"
            )
        bid = worklist.pop(0)
        queued.discard(bid)
        state = in_states[bid]
        if state == bottom:
            continue
        block = cfg.blocks[bid]
        n_out, e_out = transfer(block, state)
        normal_out[bid] = n_out
        exc_out[bid] = e_out
        for edge in block.succs:
            contrib = e_out if edge.kind == "exc" else n_out
            if contrib == bottom:
                continue
            old = in_states[edge.dst]
            new = contrib if old == bottom else join(old, contrib)
            if new != old:
                in_states[edge.dst] = new
                if edge.dst not in queued:
                    worklist.append(edge.dst)
                    queued.add(edge.dst)

    # exit blocks have no transfer of their own; their "out" is their in
    out_states = {
        bid: in_states[bid] if bid in (cfg.exit, cfg.raise_exit) else normal_out[bid]
        for bid in cfg.blocks
    }
    return Solution(in_states, out_states)


def solve_backward(
    cfg: CFG,
    *,
    init: S,
    bottom: S,
    join: JoinFn[S],
    transfer: BackwardTransfer[S],
    max_steps: int = 100_000,
) -> Solution[S]:
    """Backward may-analysis: propagate ``init`` from both exits upward.

    ``in_states`` here means the state *after* the block (its out-facing
    side in program order) and ``out_states`` the state before it —
    mirroring the forward naming so clients always read
    ``Solution.out_states[entry]`` for "what holds at function entry".
    """
    after: Dict[int, S] = {bid: bottom for bid in cfg.blocks}
    before: Dict[int, S] = {bid: bottom for bid in cfg.blocks}
    after[cfg.exit] = init
    after[cfg.raise_exit] = init

    worklist: List[int] = [cfg.exit, cfg.raise_exit]
    queued = set(worklist)
    steps = 0
    while worklist:
        steps += 1
        if steps > max_steps:
            raise FixpointDiverged(
                f"backward solve of {cfg.name} exceeded {max_steps} steps"
            )
        bid = worklist.pop(0)
        queued.discard(bid)
        state = after[bid]
        if state == bottom:
            continue
        block = cfg.blocks[bid]
        b_out = transfer(block, state)
        before[bid] = b_out
        if b_out == bottom:
            continue
        for edge in block.preds:
            old = after[edge.src]
            new = b_out if old == bottom else join(old, b_out)
            if new != old:
                after[edge.src] = new
                if edge.src not in queued:
                    worklist.append(edge.src)
                    queued.add(edge.src)

    return Solution(after, before)
