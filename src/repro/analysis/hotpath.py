"""Hot-path narration rules (family ``hotpath``).

The batched narration pipeline exists so that the record path never pays
a per-op Python object: :class:`~repro.sim.core.Core` buffers narration
in a :class:`~repro.sim.columnar.ColumnarBuilder` and prices whole
flushes vectorised.  That win evaporates the moment someone reintroduces
per-op ``Op`` construction on a hot path — one innocent-looking
``self._emit(GatherOp(...))`` inside a kernel loop silently restores the
old allocation-per-element cost *and* bypasses the builder's flush
accounting.  These rules turn the convention into a checkable gate:

* ``VIA401`` (error) — an :mod:`repro.sim.ops` op class is constructed
  inside a ``for``/``while`` loop in a hot-path module
  (``repro.sim.core`` and everything under ``repro.kernels``).  Loops
  are where per-op costs multiply; narrate through the ``Core`` methods
  (which append builder rows) instead.
* ``VIA402`` (error) — a kernel module constructs an op class *at all*.
  Kernels narrate exclusively through the ``Core`` API; building IR
  objects directly skips validation, the builder, and the backend seam.

``Core``'s own scalar-fallback branches (``if b is None: self._emit(...)``
at method-body level) construct ops legitimately — they sit outside any
loop, so ``VIA401`` does not fire, and ``repro.sim.core`` is not a
kernel, so ``VIA402`` does not apply.  A justified exception is silenced
with ``# via: ignore[VIA401]`` next to the call, where the reviewer can
see the reasoning.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence

from repro.analysis.core import (
    Finding,
    Project,
    SourceFile,
    family_checker,
    import_aliases,
    make_finding,
    resolve_call_name,
    rule,
)

VIA401 = rule(
    "VIA401",
    "hotpath",
    "per-op Op construction inside a hot-path loop; narrate through the builder",
)
VIA402 = rule(
    "VIA402",
    "hotpath",
    "kernel constructs an op object directly; use the Core narration API",
)

#: the module whose classes are the narration IR
OP_MODULE = "repro.sim.ops"

#: hot-path scopes where loops must not build per-op objects (VIA401)
LOOP_SCOPES: Sequence[str] = ("repro/sim/core.py", "repro/kernels/")

#: scopes where op construction is banned outright (VIA402)
KERNEL_SCOPES: Sequence[str] = ("repro/kernels/",)


def _is_op_class(dotted: str) -> bool:
    """True for ``repro.sim.ops.<OpClass>`` (``Op``, ``*Op``, ``*OpRecord``)."""
    prefix = OP_MODULE + "."
    if not dotted.startswith(prefix):
        return False
    leaf = dotted[len(prefix):]
    if "." in leaf or not leaf[:1].isupper():
        return False
    return leaf == "Op" or leaf.endswith("Op") or leaf.endswith("OpRecord")


def _op_calls(
    tree: ast.Module, aliases: Dict[str, str], *, loops_only: bool
) -> List[ast.Call]:
    """Op-class constructor calls, optionally only those inside loops."""

    calls: List[ast.Call] = []

    def visit(node: ast.AST, in_loop: bool) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            in_loop = True
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # a nested function body runs when *called*, not where it is
            # defined — its loop context starts fresh
            in_loop = False
        if isinstance(node, ast.Call):
            name = resolve_call_name(node.func, aliases)
            if name is not None and _is_op_class(name):
                if in_loop or not loops_only:
                    calls.append(node)
        for child in ast.iter_child_nodes(node):
            visit(child, in_loop)

    visit(tree, False)
    return calls


def _leaf(dotted: Optional[str]) -> str:
    return (dotted or "?").rsplit(".", 1)[-1]


def _scan_file(
    src: SourceFile, *, loop_rule: bool, kernel_rule: bool
) -> List[Finding]:
    tree = src.tree
    if tree is None:
        return []
    aliases = import_aliases(tree)
    findings: List[Finding] = []
    if kernel_rule:
        for call in _op_calls(tree, aliases, loops_only=False):
            name = _leaf(resolve_call_name(call.func, aliases))
            findings.append(
                make_finding(
                    VIA402,
                    src.rel,
                    call.lineno,
                    f"kernel constructs {name} directly; narrate through "
                    f"the Core methods so the builder prices it",
                )
            )
    if loop_rule:
        for call in _op_calls(tree, aliases, loops_only=True):
            name = _leaf(resolve_call_name(call.func, aliases))
            findings.append(
                make_finding(
                    VIA401,
                    src.rel,
                    call.lineno,
                    f"{name} constructed inside a loop on the hot path; "
                    f"per-op objects defeat batched narration — use the "
                    f"ColumnarBuilder append methods",
                )
            )
    return findings


@family_checker("hotpath")
def check_hotpath(
    project: Project,
    loop_scopes: Sequence[str] = LOOP_SCOPES,
    kernel_scopes: Sequence[str] = KERNEL_SCOPES,
) -> List[Finding]:
    findings: List[Finding] = []
    for src in project.iter_files(list(loop_scopes) + list(kernel_scopes)):
        kernel = any(p in src.rel for p in kernel_scopes)
        loop = any(p in src.rel for p in loop_scopes)
        findings.extend(_scan_file(src, loop_rule=loop, kernel_rule=kernel))
    return findings
