"""Cache-key hygiene rules (family ``keys``).

The repo has three content-addressed key builders whose coverage *is* the
cache-correctness contract:

* :func:`repro.eval.units.unit_cache_key` — the PR-1 result cache;
* :func:`repro.eval.recordings.recording_key` (delegating the machine side
  to :func:`repro.sim.ops.machine_shape_key`) — the PR-2 recording store;
* :meth:`repro.serve.jobs.JobSpec.batch_key` — the PR-4 scheduler batcher.

A new field added to ``MachineConfig``/``ViaConfig``/``WorkUnit``/``JobSpec``
that changes results but never reaches its key builder silently poisons a
cache: two different configurations hash equal and one serves the other's
results.  These rules turn that bug class into a lint error.

For every :class:`KeyBinding` (a dataclass × key-builder pair) the checker
cross-references the dataclass's fields against the attribute accesses in
the key builder's body.  A field is *consumed* when the builder reads it
(``unit.max_n``), passes the whole object to ``dataclasses.asdict`` (full
coverage), or forwards the sub-object to another function
(``machine_shape_key(unit.machine)`` consumes ``machine`` — the delegate
gets its own binding).  Anything else must appear in the key module's
``KEY_EXEMPT`` declaration with a one-line justification:

.. code-block:: python

    KEY_EXEMPT = {"WorkUnit": {"record_dir": "never changes the record"}}

Rules:

* ``VIA101`` (error) — field neither consumed by the key nor exempt;
* ``VIA102`` (error) — ``KEY_EXEMPT`` names a field the dataclass no
  longer has (a stale declaration hides nothing, it *is* drift);
* ``VIA103`` (warning) — a field is both consumed and exempt (the
  declaration contradicts the code);
* ``VIA100`` (error) — a binding no longer resolves (module, class, or
  function renamed without updating the checker).

:func:`assert_key_hygiene` is the runtime twin used by the sweep runner's
``validate=`` dogfood hook: it checks the *live* dataclasses (via
``dataclasses.fields``) against the installed key-builder sources, so an
editable-install user with a drifted config class fails fast at sweep
startup with a pointer to the rule id instead of consuming a poisoned
cache.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    Finding,
    Project,
    SourceFile,
    family_checker,
    literal_lines,
    make_finding,
    rule,
)

VIA100 = rule(
    "VIA100",
    "keys",
    "a key-hygiene binding no longer resolves to real code",
)
VIA101 = rule(
    "VIA101",
    "keys",
    "dataclass field is neither consumed by its key builder nor KEY_EXEMPT",
)
VIA102 = rule(
    "VIA102",
    "keys",
    "KEY_EXEMPT names a field the dataclass does not have",
)
VIA103 = rule(
    "VIA103",
    "keys",
    "KEY_EXEMPT lists a field the key builder actually consumes",
    severity="warning",
)


@dataclass(frozen=True)
class KeyBinding:
    """One (dataclass, key builder) pair the checker cross-references.

    ``attr_path`` locates the dataclass instance relative to the builder's
    ``root`` parameter: ``root="unit", attr_path=("machine",)`` means the
    builder sees the instance as ``unit.machine``.
    """

    dataclass_module: str
    dataclass_name: str
    key_module: str
    key_qualname: str  # "func" or "Class.method"
    root: str
    attr_path: Tuple[str, ...] = ()

    def describe(self) -> str:
        return (
            f"{self.dataclass_module}.{self.dataclass_name} vs "
            f"{self.key_module}.{self.key_qualname}"
        )


#: the repo's key-coverage contract; tests inject their own bindings
DEFAULT_BINDINGS: Tuple[KeyBinding, ...] = (
    # result cache (repro.eval.runner via unit_cache_key)
    KeyBinding("repro.eval.units", "WorkUnit",
               "repro.eval.units", "unit_cache_key", "unit"),
    KeyBinding("repro.matrices.collection", "MatrixSpec",
               "repro.eval.units", "unit_cache_key", "unit", ("spec",)),
    KeyBinding("repro.sim.config", "MachineConfig",
               "repro.eval.units", "unit_cache_key", "unit", ("machine",)),
    KeyBinding("repro.via.config", "ViaConfig",
               "repro.eval.units", "unit_cache_key", "unit", ("via_config",)),
    # recording store
    KeyBinding("repro.eval.units", "WorkUnit",
               "repro.eval.recordings", "recording_key", "unit"),
    KeyBinding("repro.matrices.collection", "MatrixSpec",
               "repro.eval.recordings", "recording_key", "unit", ("spec",)),
    KeyBinding("repro.via.config", "ViaConfig",
               "repro.eval.recordings", "recording_key", "unit", ("via_config",)),
    # the machine side of recording_key delegates to machine_shape_key
    KeyBinding("repro.sim.config", "MachineConfig",
               "repro.sim.ops", "machine_shape_key", "machine"),
    KeyBinding("repro.sim.config", "CacheConfig",
               "repro.sim.ops", "machine_shape_key", "machine", ("l1",)),
    # scheduler batching
    KeyBinding("repro.serve.jobs", "JobSpec",
               "repro.serve.jobs", "JobSpec.batch_key", "self"),
)


# ---------------------------------------------------------------------------
# static extraction
# ---------------------------------------------------------------------------
def _find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def dataclass_fields(node: ast.ClassDef) -> Dict[str, int]:
    """field name -> line, skipping ClassVars and private fields."""
    fields: Dict[str, int] = {}
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(
            stmt.target, ast.Name
        ):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        fields[name] = stmt.lineno
    return fields


def _find_function(
    tree: ast.Module, qualname: str
) -> Optional[ast.FunctionDef]:
    parts = qualname.split(".")
    scope: Sequence[ast.stmt] = tree.body
    for i, part in enumerate(parts):
        found = None
        for node in scope:
            if isinstance(node, ast.ClassDef) and node.name == part:
                found = node
                break
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == part
                and i == len(parts) - 1
            ):
                return node if isinstance(node, ast.FunctionDef) else None
        if found is None:
            return None
        scope = found.body
    return None


class _ALL:
    """Sentinel: the builder consumes every field (dataclasses.asdict)."""


def consumed_fields(
    func: ast.FunctionDef, root: str, attr_path: Tuple[str, ...]
) -> object:
    """Fields of ``root.<attr_path>`` the function reads, or :class:`_ALL`.

    An attribute chain ``root.a.b`` consumes field ``a`` of the object at
    ``attr_path=()`` and field ``b`` of the object at ``attr_path=("a",)``.
    Passing ``root.<attr_path>`` (or a prefix of it) to ``asdict`` consumes
    everything — the serializer walks all fields, recursively.
    """
    depth = len(attr_path)
    consumed: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            target = node.func
            is_asdict = (
                isinstance(target, ast.Name) and target.id == "asdict"
            ) or (isinstance(target, ast.Attribute) and target.attr == "asdict")
            if is_asdict:
                for arg in node.args:
                    chain = _rooted_chain(arg, root)
                    if chain is not None and (
                        chain == attr_path or attr_path[: len(chain)] == chain
                    ):
                        return _ALL
        chain = _rooted_chain(node, root)
        if chain is not None and len(chain) > depth and chain[:depth] == attr_path:
            consumed.add(chain[depth])
    return consumed


def _rooted_chain(node: ast.AST, root: str) -> Optional[Tuple[str, ...]]:
    """Attribute chain below ``root`` (``unit.spec.n`` -> ``("spec", "n")``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == root:
        return tuple(reversed(parts))
    return None


def parse_key_exempt(tree: ast.Module) -> Dict[str, Dict[str, str]]:
    """The module-level ``KEY_EXEMPT`` literal, or an empty mapping."""
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "KEY_EXEMPT":
                try:
                    literal = ast.literal_eval(value)  # type: ignore[arg-type]
                except (ValueError, TypeError):
                    return {}
                if isinstance(literal, dict):
                    return {
                        str(k): dict(v)
                        for k, v in literal.items()
                        if isinstance(v, dict)
                    }
    return {}


# ---------------------------------------------------------------------------
# the checker
# ---------------------------------------------------------------------------
def _check_binding(
    binding: KeyBinding,
    dc_file: SourceFile,
    key_file: SourceFile,
) -> List[Finding]:
    findings: List[Finding] = []
    dc_tree, key_tree = dc_file.tree, key_file.tree
    if dc_tree is None or key_tree is None:
        return findings  # VIA000 already reported the parse failure

    cls = _find_class(dc_tree, binding.dataclass_name)
    if cls is None or not _is_dataclass(cls):
        findings.append(
            make_finding(
                VIA100, dc_file.rel, 1,
                f"binding {binding.describe()}: dataclass "
                f"{binding.dataclass_name!r} not found in {dc_file.rel}",
            )
        )
        return findings
    func = _find_function(key_tree, binding.key_qualname)
    if func is None:
        findings.append(
            make_finding(
                VIA100, key_file.rel, 1,
                f"binding {binding.describe()}: key builder "
                f"{binding.key_qualname!r} not found in {key_file.rel}",
            )
        )
        return findings

    fields = dataclass_fields(cls)
    consumed = consumed_fields(func, binding.root, binding.attr_path)
    exempt = parse_key_exempt(key_tree).get(binding.dataclass_name, {})
    exempt_line = literal_lines(key_tree).get("KEY_EXEMPT", 1)

    for name, line in fields.items():
        if consumed is _ALL or name in consumed:  # type: ignore[operator]
            if name in exempt:
                findings.append(
                    make_finding(
                        VIA103, key_file.rel, exempt_line,
                        f"{binding.dataclass_name}.{name} is KEY_EXEMPT in "
                        f"{key_file.rel} but {binding.key_qualname} consumes "
                        "it — drop the stale exemption",
                    )
                )
            continue
        if name in exempt:
            continue
        findings.append(
            make_finding(
                VIA101, dc_file.rel, line,
                f"{binding.dataclass_name}.{name} is not consumed by "
                f"{binding.key_module}.{binding.key_qualname} and is not "
                f"KEY_EXEMPT there; a config knob outside the key silently "
                "poisons that cache — key it or declare it exempt with a "
                "justification",
            )
        )
    for name in exempt:
        if name not in fields:
            findings.append(
                make_finding(
                    VIA102, key_file.rel, exempt_line,
                    f"KEY_EXEMPT entry {binding.dataclass_name}.{name} in "
                    f"{key_file.rel} names a field the dataclass does not "
                    "have — remove the stale declaration",
                )
            )
    return findings


@family_checker("keys")
def check_keys(
    project: Project,
    bindings: Sequence[KeyBinding] = DEFAULT_BINDINGS,
) -> List[Finding]:
    findings: List[Finding] = []
    seen: Set[Tuple[str, str, int, str]] = set()
    for binding in bindings:
        dc_file = project.module(binding.dataclass_module)
        key_file = project.module(binding.key_module)
        if dc_file is None or key_file is None:
            # the binding's modules are outside this run's file set (e.g.
            # the CLI was pointed at a single unrelated directory)
            continue
        for f in _check_binding(binding, dc_file, key_file):
            # two bindings over the same dataclass produce distinct
            # messages, but identical (rule, path, line, message) repeats
            # from overlapping path arguments are collapsed
            key = (f.rule, f.path, f.line, f.message)
            if key not in seen:
                seen.add(key)
                findings.append(f)
    return findings


# ---------------------------------------------------------------------------
# runtime twin (the run_units validate= dogfood hook)
# ---------------------------------------------------------------------------
_hygiene_checked = False


def assert_key_hygiene(bindings: Sequence[KeyBinding] = DEFAULT_BINDINGS) -> None:
    """Check the *live* dataclasses against the installed key builders.

    Raises :class:`repro.errors.ConfigError` naming rule VIA101/VIA102 on
    the first violation.  Memoized per process: sweeps call this on every
    validated run, and the answer cannot change under a running
    interpreter.
    """
    global _hygiene_checked
    if _hygiene_checked and bindings is DEFAULT_BINDINGS:
        return

    import dataclasses
    import importlib
    from pathlib import Path

    from repro.errors import ConfigError

    trees: Dict[str, ast.Module] = {}
    problems: List[str] = []
    for binding in bindings:
        dc_mod = importlib.import_module(binding.dataclass_module)
        key_mod = importlib.import_module(binding.key_module)
        cls = getattr(dc_mod, binding.dataclass_name, None)
        if cls is None or not dataclasses.is_dataclass(cls):
            problems.append(
                f"VIA100: binding {binding.describe()} does not resolve to a "
                "live dataclass"
            )
            continue
        if binding.key_module not in trees:
            source = Path(key_mod.__file__ or "").read_text(encoding="utf-8")
            trees[binding.key_module] = ast.parse(source)
        tree = trees[binding.key_module]
        func = _find_function(tree, binding.key_qualname)
        if func is None:
            problems.append(
                f"VIA100: key builder {binding.key_module}."
                f"{binding.key_qualname} not found in installed source"
            )
            continue
        fields = [
            f.name for f in dataclasses.fields(cls) if not f.name.startswith("_")
        ]
        consumed = consumed_fields(func, binding.root, binding.attr_path)
        exempt = getattr(key_mod, "KEY_EXEMPT", {}).get(
            binding.dataclass_name, {}
        )
        for name in fields:
            if consumed is _ALL or name in consumed:  # type: ignore[operator]
                continue
            if name in exempt:
                continue
            problems.append(
                f"VIA101: {binding.dataclass_name}.{name} is not consumed by "
                f"{binding.key_module}.{binding.key_qualname} and is not "
                "KEY_EXEMPT — its cache keys no longer cover the live config"
            )
        for name in exempt:
            if name not in fields:
                problems.append(
                    f"VIA102: KEY_EXEMPT entry {binding.dataclass_name}."
                    f"{name} in {binding.key_module} names a field the live "
                    "dataclass does not have"
                )
    if problems:
        raise ConfigError(
            "cache-key hygiene check failed (run `python -m repro.analysis` "
            "for details):\n  " + "\n  ".join(problems)
        )
    if bindings is DEFAULT_BINDINGS:
        _hygiene_checked = True
