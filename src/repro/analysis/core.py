"""Rule framework for the project's static checker.

Everything here is rule-agnostic machinery:

* :class:`Finding` — one diagnostic, addressed by rule id, file, and line;
* :class:`SourceFile` / :class:`Project` — lazily-parsed ASTs over a file
  set, plus inline ``# via: ignore[RULE]`` suppression parsing;
* the rule registry (:data:`RULES`, :func:`rule`, :func:`family_checker`)
  that the rule modules (:mod:`~repro.analysis.keys`,
  :mod:`~repro.analysis.determinism`, :mod:`~repro.analysis.locks`)
  populate on import;
* :func:`run_analysis` — run selected rules, apply suppressions and an
  optional baseline file, and return an :class:`AnalysisReport`;
* :func:`format_findings` — the human and JSON renderings the CLI emits.

Suppressions: a finding is silenced by ``# via: ignore[VIA201]`` on the
finding's line, or on a comment-only line directly above it.  Several ids
may be listed (``ignore[VIA201, VIA204]``) and ``*`` silences every rule.
Suppressions are for *justified* exceptions — the comment sits next to the
code, so the justification is reviewable where the hazard lives.

Baselines: a JSON file of finding fingerprints (rule + path + message,
line-number independent) that are tolerated without an inline comment.
New code should never need one — the repo gate runs with zero baseline
entries for the ``keys`` and ``locks`` families.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

# re-exported so rule modules reach the dataflow machinery through core,
# the same import surface they already use for Finding/Project/rule
from repro.analysis.cfg import (  # noqa: F401
    CFG,
    Block,
    Edge,
    build_cfg,
    function_cfgs,
)
from repro.analysis.dataflow import (  # noqa: F401
    Solution,
    solve_backward,
    solve_forward,
)

BASELINE_VERSION = 1

_SUPPRESS_RE = re.compile(r"#\s*via:\s*ignore\[([A-Za-z0-9_*\s,]+)\]")

#: directories never scanned, wherever they appear in a path
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".venv",
    "venv",
    ".mypy_cache",
    ".ruff_cache",
    ".pytest_cache",
    "build",
    "dist",
}


# ---------------------------------------------------------------------------
# findings
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violated at a file/line."""

    rule: str
    path: str  # posix-style, relative to the project root
    line: int
    message: str
    severity: str = "error"  # "error" | "warning"

    def fingerprint(self) -> str:
        """Line-number-independent identity, for baseline files."""
        blob = f"{self.rule}|{self.path}|{self.message}"
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} [{self.severity}] {self.message}"


def _sort_key(finding: Finding) -> Tuple[str, int, str]:
    return (finding.path, finding.line, finding.rule)


# ---------------------------------------------------------------------------
# source files and projects
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SuppressionComment:
    """One ``# via: ignore[...]`` comment in a file.

    ``line`` is where the comment sits; ``covers`` are the lines a
    finding may sit on for this comment to silence it (the comment's own
    line, plus the next line when the comment stands alone).
    """

    line: int
    rules: Tuple[str, ...]
    covers: Tuple[int, ...]

    def matches(self, finding: Finding) -> bool:
        return finding.line in self.covers and (
            finding.rule in self.rules or "*" in self.rules
        )


class SourceFile:
    """One python file: path, text, AST, and suppression map (all lazy)."""

    def __init__(self, path: Path, root: Path):
        self.path = path
        try:
            rel = path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = Path(path.name)
        self.rel = rel.as_posix()
        self._text: Optional[str] = None
        self._tree: Optional[ast.Module] = None
        self._parse_error: Optional[SyntaxError] = None
        self._comments: Optional[List[SuppressionComment]] = None

    @property
    def text(self) -> str:
        if self._text is None:
            self._text = self.path.read_text(encoding="utf-8", errors="replace")
        return self._text

    @property
    def tree(self) -> Optional[ast.Module]:
        """The parsed module, or ``None`` if the file does not parse."""
        if self._tree is None and self._parse_error is None:
            try:
                self._tree = ast.parse(self.text, filename=str(self.path))
            except SyntaxError as exc:
                self._parse_error = exc
        return self._tree

    @property
    def parse_error(self) -> Optional[SyntaxError]:
        self.tree  # noqa: B018 — property access forces the parse
        return self._parse_error

    @property
    def suppression_comments(self) -> List[SuppressionComment]:
        """Every live ``# via: ignore[...]`` comment in the file.

        Comments are read from COMMENT tokens, so suppression text inside
        string literals (test fixtures embedding fixture sources) is not
        mistaken for a live suppression.  Files the tokenizer rejects fall
        back to a line-based scan so suppressions keep working alongside
        the VIA000 parse-error finding.
        """
        if self._comments is None:
            raw = self._comment_tokens()
            comments: List[SuppressionComment] = []
            for lineno, standalone, text in raw:
                match = _SUPPRESS_RE.search(text)
                if not match:
                    continue
                rules = tuple(
                    sorted(
                        {r.strip() for r in match.group(1).split(",") if r.strip()}
                    )
                )
                if not rules:
                    continue
                covers = (lineno, lineno + 1) if standalone else (lineno,)
                comments.append(SuppressionComment(lineno, rules, covers))
            self._comments = comments
        return self._comments

    def _comment_tokens(self) -> List[Tuple[int, bool, str]]:
        """``(line, is_standalone, text)`` per comment; tokenizer or fallback."""
        out: List[Tuple[int, bool, str]] = []
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except (tokenize.TokenError, SyntaxError, ValueError):
            for lineno, line in enumerate(self.text.splitlines(), start=1):
                match = _SUPPRESS_RE.search(line)
                if not match:
                    continue
                before = line[: match.start()].strip()
                standalone = not before or before.startswith("#")
                out.append((lineno, standalone, line[match.start():]))
            return out
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                standalone = not tok.line[: tok.start[1]].strip()
                out.append((tok.start[0], standalone, tok.string))
        return out

    @property
    def suppressions(self) -> Dict[int, Set[str]]:
        """line number -> set of rule ids (or ``*``) suppressed there."""
        supp: Dict[int, Set[str]] = {}
        for comment in self.suppression_comments:
            for lineno in comment.covers:
                supp.setdefault(lineno, set()).update(comment.rules)
        return supp

    def matching_comments(self, finding: Finding) -> List[SuppressionComment]:
        return [c for c in self.suppression_comments if c.matches(finding)]

    def is_suppressed(self, finding: Finding) -> bool:
        return bool(self.matching_comments(finding))


class Project:
    """The file set one analysis run looks at."""

    def __init__(self, paths: Sequence[object], root: Optional[object] = None):
        self.root = Path(root) if root is not None else Path.cwd()
        files: List[SourceFile] = []
        seen: Set[Path] = set()
        for raw in paths:
            p = Path(raw)  # type: ignore[arg-type]
            for candidate in self._expand(p):
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    files.append(SourceFile(candidate, self.root))
        self.files = sorted(files, key=lambda f: f.rel)
        self._by_rel = {f.rel: f for f in self.files}

    @staticmethod
    def _expand(path: Path) -> Iterable[Path]:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            return
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    yield sub

    def file(self, rel: str) -> Optional[SourceFile]:
        return self._by_rel.get(rel)

    def module(self, dotted: str) -> Optional[SourceFile]:
        """Find the file implementing a dotted module name, if scanned."""
        tail = dotted.replace(".", "/")
        for suffix in (f"{tail}.py", f"{tail}/__init__.py"):
            for f in self.files:
                if f.rel.endswith(suffix):
                    return f
        return None

    def iter_files(self, prefixes: Optional[Sequence[str]] = None) -> Iterable[SourceFile]:
        """Scanned files whose path contains one of ``prefixes`` (all if None)."""
        for f in self.files:
            if prefixes is None or any(p in f.rel for p in prefixes):
                yield f


# ---------------------------------------------------------------------------
# rule registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RuleInfo:
    rule_id: str
    family: str
    summary: str
    severity: str = "error"


#: rule id -> metadata; populated by the rule modules at import time
RULES: Dict[str, RuleInfo] = {}

#: family name -> checker callable; each checker scans a Project
FAMILY_CHECKERS: Dict[str, Callable[..., List[Finding]]] = {}


def rule(rule_id: str, family: str, summary: str, severity: str = "error") -> str:
    """Register one rule id; returns the id for use as a constant."""
    RULES[rule_id] = RuleInfo(rule_id, family, summary, severity)
    return rule_id


def family_checker(family: str) -> Callable[[Callable[..., List[Finding]]], Callable[..., List[Finding]]]:
    def register(fn: Callable[..., List[Finding]]) -> Callable[..., List[Finding]]:
        FAMILY_CHECKERS[family] = fn
        return fn

    return register


def make_finding(rule_id: str, path: str, line: int, message: str) -> Finding:
    info = RULES[rule_id]
    return Finding(rule_id, path, line, message, severity=info.severity)


VIA000 = rule(
    "VIA000",
    "core",
    "file does not parse; no rule can check it",
)

#: meta-rule: a ``# via: ignore[...]`` comment that silences nothing.
#: Stale suppressions are latent holes — the hazard they justified is
#: gone, but the comment will happily swallow the *next* finding on that
#: line.  Emitted only on full runs (no ``--rules`` selection), because
#: usefulness is only decidable when every family has run.
VIA001 = rule(
    "VIA001",
    "core",
    "suppression comment no longer suppresses any finding",
)


@family_checker("core")
def _check_parses(project: Project) -> List[Finding]:
    findings = []
    for f in project.files:
        err = f.parse_error
        if err is not None:
            findings.append(
                make_finding(
                    VIA000, f.rel, err.lineno or 1, f"syntax error: {err.msg}"
                )
            )
    return findings


# ---------------------------------------------------------------------------
# selection, suppression, baseline
# ---------------------------------------------------------------------------
def resolve_selection(tokens: Optional[Iterable[str]]) -> Optional[Set[str]]:
    """Expand a mix of rule ids and family names into a rule-id set."""
    if tokens is None:
        return None
    selected: Set[str] = set()
    for raw_token in tokens:
        token = raw_token.strip()
        if not token:
            continue
        if token in RULES:
            selected.add(token)
            continue
        family_ids = {rid for rid, info in RULES.items() if info.family == token}
        if not family_ids:
            raise ValueError(
                f"unknown rule or family {token!r}; known rules: "
                f"{sorted(RULES)}, families: {sorted(FAMILY_CHECKERS)}"
            )
        selected.update(family_ids)
    return selected or None


def load_baseline(path: object) -> Set[str]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))  # type: ignore[arg-type]
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline file {path!r}")
    return set(data.get("fingerprints", []))


def save_baseline(path: object, findings: Sequence[Finding]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": sorted({f.fingerprint() for f in findings}),
    }
    Path(path).write_text(  # type: ignore[arg-type]
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@dataclass
class AnalysisReport:
    """Outcome of one :func:`run_analysis` call."""

    findings: List[Finding] = field(default_factory=list)  # active
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    #: family name -> wall seconds spent in its checker
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())


def run_analysis(
    project: Project,
    *,
    select: Optional[Iterable[str]] = None,
    baseline: Optional[Set[str]] = None,
) -> AnalysisReport:
    """Run every (selected) rule family over a project."""
    selected = resolve_selection(list(select)) if select is not None else None
    report = AnalysisReport()
    raw: List[Finding] = []
    for family, checker in FAMILY_CHECKERS.items():
        if selected is not None and not any(
            RULES[rid].family == family for rid in selected
        ):
            continue
        started = time.perf_counter()
        raw.extend(checker(project))
        report.timings[family] = (
            report.timings.get(family, 0.0) + time.perf_counter() - started
        )
    if selected is not None:
        raw = [f for f in raw if f.rule in selected]
    raw.sort(key=_sort_key)

    #: (path, comment line) of every suppression that silenced something
    used: Set[Tuple[str, int]] = set()

    def place(finding: Finding) -> None:
        src = project.file(finding.path)
        if src is not None:
            matches = [
                c
                for c in src.matching_comments(finding)
                # a stale comment must not silence its own VIA001 report
                if not (finding.rule == VIA001 and c.line == finding.line)
            ]
            if matches:
                for comment in matches:
                    used.add((finding.path, comment.line))
                report.suppressed.append(finding)
                return
        if baseline and finding.fingerprint() in baseline:
            report.baselined.append(finding)
        else:
            report.findings.append(finding)

    for finding in raw:
        place(finding)

    if selected is None:
        # full run: every family voted, so an unmatched suppression is
        # provably stale — the VIA001 meta-pass
        started = time.perf_counter()
        stale: List[Finding] = []
        for src in project.files:
            for comment in src.suppression_comments:
                if (src.rel, comment.line) in used:
                    continue
                listed = ", ".join(comment.rules)
                stale.append(
                    make_finding(
                        VIA001, src.rel, comment.line,
                        f"'# via: ignore[{listed}]' suppresses nothing; the "
                        "hazard it justified is gone — remove the comment so "
                        "it cannot swallow a future finding",
                    )
                )
        stale.sort(key=_sort_key)
        for finding in stale:
            place(finding)
        report.findings.sort(key=_sort_key)
        report.timings["core"] = (
            report.timings.get("core", 0.0) + time.perf_counter() - started
        )
    return report


# ---------------------------------------------------------------------------
# output
# ---------------------------------------------------------------------------
def format_findings(report: AnalysisReport, fmt: str = "human") -> str:
    if fmt == "json":
        return json.dumps(
            {
                "findings": [f.to_dict() for f in report.findings],
                "suppressed": len(report.suppressed),
                "baselined": len(report.baselined),
                "errors": len(report.errors),
            },
            indent=2,
            sort_keys=True,
        )
    lines = [f.render() for f in report.findings]
    summary = (
        f"{len(report.findings)} finding(s) "
        f"({len(report.errors)} error(s)), "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined"
    )
    lines.append(summary)
    return "\n".join(lines)


def format_timings(report: AnalysisReport) -> str:
    """Per-family wall-time table for ``--timings`` (slowest first)."""
    rows = sorted(report.timings.items(), key=lambda kv: (-kv[1], kv[0]))
    lines = [f"  {family:<14} {seconds * 1000.0:9.1f} ms" for family, seconds in rows]
    lines.append(f"  {'total':<14} {report.total_seconds * 1000.0:9.1f} ms")
    return "rule-family timings:\n" + "\n".join(lines)


# ---------------------------------------------------------------------------
# small AST helpers shared by the rule modules
# ---------------------------------------------------------------------------
def attribute_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ``("a", "b", "c")``; None for non-name-rooted chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """local name -> canonical dotted name, from a module's imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name != "*":
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return aliases


def resolve_call_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of a call target, resolving import aliases."""
    chain = attribute_chain(node)
    if chain is None:
        return None
    head = aliases.get(chain[0], chain[0])
    return ".".join((head, *chain[1:]))


def literal_lines(tree: ast.Module) -> Dict[str, int]:
    """Module-level assignment name -> line number (for anchor lookups)."""
    lines: Dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    lines[target.id] = node.lineno
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            lines[node.target.id] = node.lineno
    return lines
