"""Determinism-hazard rules (family ``determinism``).

The differential suites assert bit-identical results between direct,
record, and replay execution, and the sweep cache assumes a unit's output
is a pure function of its cache key.  Both contracts die quietly the
moment simulator or worker code consults a clock, an unseeded RNG, a
process-unique ``id()``, an unordered ``set`` walk, or an unsanctioned
environment variable.

Two scopes, different strictness:

* **pure** code (``repro/sim``, ``repro/kernels``) runs inside the
  simulated machine: *any* clock read is a hazard, including
  ``perf_counter`` — simulated time comes from the cost model, never the
  host;
* **worker** code (``repro/eval``) runs inside sweep workers whose
  *results* must be deterministic but whose telemetry may time itself:
  monotonic/perf-counter clocks are sanctioned, wall-clock reads
  (``time.time``, ``datetime.now``) are not — they leak into journals and
  make reruns diff.

Rules:

* ``VIA201`` (error) — clock read (wall clock anywhere in scope; any
  clock, including sleeps, in pure scope);
* ``VIA202`` (error) — unseeded randomness: bare ``random.*`` module
  calls, the legacy ``np.random.*`` global generator,
  ``default_rng()``/``Random()``/``seed()`` with no arguments,
  ``os.urandom``, ``uuid.uuid4``, ``secrets.*``;
* ``VIA203`` (error) — environment read outside the sanctioned
  ``REPRO_*`` namespace (workers inherit an uncontrolled environment;
  only ``REPRO_*`` variables are part of the reproducibility contract);
* ``VIA204`` (warning) — direct iteration over a ``set`` value
  (``for x in {…}`` / ``set(...)`` / ``frozenset(...)``) — iteration
  order varies with ``PYTHONHASHSEED``; wrap in ``sorted(...)``;
* ``VIA205`` (error) — ``id(...)`` used as a dict key or subscript
  index: ``id()`` values are process-unique and unreproducible.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.core import (
    Finding,
    Project,
    SourceFile,
    family_checker,
    import_aliases,
    make_finding,
    resolve_call_name,
    rule,
)

VIA201 = rule(
    "VIA201",
    "determinism",
    "clock read in deterministic code",
)
VIA202 = rule(
    "VIA202",
    "determinism",
    "unseeded or entropy-backed randomness in deterministic code",
)
VIA203 = rule(
    "VIA203",
    "determinism",
    "environment read outside the sanctioned REPRO_* namespace",
)
VIA204 = rule(
    "VIA204",
    "determinism",
    "iteration over an unordered set feeding ordered output",
    severity="warning",
)
VIA205 = rule(
    "VIA205",
    "determinism",
    "id()-keyed state is process-unique and unreproducible",
)

#: path fragments selecting the strict (simulated-machine) scope
PURE_PREFIXES: Tuple[str, ...] = ("repro/sim/", "repro/kernels/")
#: path fragments selecting the sweep-worker scope
WORKER_PREFIXES: Tuple[str, ...] = ("repro/eval/", "repro/model/")

#: nondeterministic in every scope — wall-clock and calendar reads
_WALL_CLOCKS = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: additionally banned in pure scope — the cost model owns simulated time
_HOST_CLOCKS = {
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.sleep",
}

#: always-entropy sources (no seed can fix them)
_ENTROPY = {
    "os.urandom",
    "uuid.uuid4",
    "uuid.uuid1",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbelow",
    "secrets.choice",
}

#: constructors that are fine *with* a seed argument, hazards without
_SEEDABLE = {
    "random.Random",
    "random.seed",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",  # Generator(bit_generator) always has an arg
}

#: the legacy numpy global generator and the random-module functions —
#: they draw from shared global state whose seeding this file can't see
_GLOBAL_RNG_PREFIXES = ("random.", "numpy.random.")


def _canonical(name: Optional[str]) -> Optional[str]:
    """Collapse the ``np.`` convention so one table covers both spellings."""
    if name is None:
        return None
    if name.startswith("np.random."):
        return "numpy" + name[2:]
    return name


def _check_call(
    canonical: str, node: ast.Call, src: SourceFile, pure: bool
) -> Optional[Finding]:
    if canonical in _WALL_CLOCKS:
        return make_finding(
            VIA201, src.rel, node.lineno,
            f"{canonical}() reads the wall clock; results and journals must "
            "not depend on when a run happens — use the cost model (sim) or "
            "time.perf_counter (worker telemetry)",
        )
    if pure and canonical in _HOST_CLOCKS:
        return make_finding(
            VIA201, src.rel, node.lineno,
            f"{canonical}() reads host time inside the simulator; simulated "
            "time comes from the cost model, never the host clock",
        )
    if canonical in _ENTROPY:
        return make_finding(
            VIA202, src.rel, node.lineno,
            f"{canonical}() is entropy-backed and cannot be seeded; derive "
            "randomness from the unit's seed instead",
        )
    if canonical in _SEEDABLE:
        if not node.args and not node.keywords:
            return make_finding(
                VIA202, src.rel, node.lineno,
                f"{canonical}() without a seed falls back to OS entropy; "
                "pass a seed derived from the unit spec",
            )
        return None
    if canonical.startswith(_GLOBAL_RNG_PREFIXES):
        return make_finding(
            VIA202, src.rel, node.lineno,
            f"{canonical}() draws from the shared global generator; use a "
            "seeded local Generator (np.random.default_rng(seed)) so "
            "unrelated code cannot perturb the stream",
        )
    if canonical in ("os.getenv", "os.environ.get"):
        return _check_env_name(node.args[0] if node.args else None, node, src)
    return None


def _check_env_name(
    key: Optional[ast.expr], node: ast.AST, src: SourceFile
) -> Optional[Finding]:
    if isinstance(key, ast.Constant) and isinstance(key.value, str):
        if key.value.startswith("REPRO_"):
            return None
        label = repr(key.value)
    else:
        label = "a dynamic name"
    return make_finding(
        VIA203, src.rel, node.lineno,
        f"environment read of {label}; worker behaviour may only depend on "
        "the REPRO_* namespace — anything else is invisible to cache keys",
    )


def _is_set_expr(node: ast.expr, aliases: Dict[str, str]) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        name = resolve_call_name(node.func, aliases)
        return name in ("set", "frozenset")
    return False


def _scan_file(src: SourceFile, pure: bool) -> List[Finding]:
    findings: List[Finding] = []
    tree = src.tree
    if tree is None:
        return findings
    aliases = import_aliases(tree)

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            canonical = _canonical(resolve_call_name(node.func, aliases))
            if canonical is not None:
                found = _check_call(canonical, node, src, pure)
                if found is not None:
                    findings.append(found)
            # id(...) as a dict.setdefault / dict-get key
            for arg in node.args[:1]:
                if _is_id_call(arg) and isinstance(node.func, ast.Attribute):
                    if node.func.attr in ("setdefault", "get", "pop"):
                        findings.append(_id_finding(node, src))
        elif isinstance(node, ast.Subscript):
            # os.environ["X"] reads; id(...)-keyed subscripts
            chain = resolve_call_name(node.value, aliases)
            if chain == "os.environ" and not isinstance(node.ctx, ast.Store):
                key = node.slice
                found = _check_env_name(
                    key if isinstance(key, ast.expr) else None, node, src
                )
                if found is not None:
                    findings.append(found)
            if _is_id_call(node.slice):
                findings.append(_id_finding(node, src))
        elif isinstance(node, ast.Dict):
            if any(k is not None and _is_id_call(k) for k in node.keys):
                findings.append(_id_finding(node, src))
        elif isinstance(node, ast.For):
            if _is_set_expr(node.iter, aliases):
                findings.append(_set_finding(node.iter, src))
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter, aliases):
                    findings.append(_set_finding(gen.iter, src))
    return findings


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


def _id_finding(node: ast.AST, src: SourceFile) -> Finding:
    return make_finding(
        VIA205, src.rel, getattr(node, "lineno", 1),
        "id() values are process-unique; keying state on them makes replay "
        "output depend on allocator behaviour — key on stable identity "
        "(names, indices, frozen dataclasses) instead",
    )


def _set_finding(node: ast.AST, src: SourceFile) -> Finding:
    return make_finding(
        VIA204, src.rel, getattr(node, "lineno", 1),
        "iterating a set directly; order varies with PYTHONHASHSEED and "
        "leaks into anything ordered downstream — iterate sorted(...)",
    )


@family_checker("determinism")
def check_determinism(
    project: Project,
    pure_prefixes: Sequence[str] = PURE_PREFIXES,
    worker_prefixes: Sequence[str] = WORKER_PREFIXES,
) -> List[Finding]:
    findings: List[Finding] = []
    for src in project.iter_files(list(pure_prefixes) + list(worker_prefixes)):
        pure = any(p in src.rel for p in pure_prefixes)
        findings.extend(_scan_file(src, pure))
    return findings
