"""Per-function control-flow graphs over stdlib ``ast``.

The VIA1xx-4xx rule families are syntactic: they pattern-match calls and
attribute reads wherever they appear.  The lifecycle and dtype families
need more — "is this pipe closed on *every* path out of the function,
including the path where ``proc.start()`` raises?" is a question about
paths, not patterns.  This module builds the graph those questions are
asked on; :mod:`repro.analysis.dataflow` runs fixpoint analyses over it.

Shape
-----
One :class:`CFG` per function (``def``/``async def``), built by
:func:`build_cfg`; :func:`function_cfgs` walks a module and yields every
function with its dotted qualname.  Blocks carry **at most one payload
statement** — statement-level granularity keeps transfer functions
trivial and makes exception edges precise (the state entering a handler
is the state *before* the raising statement completed).  Edges are
``normal`` or ``exc``:

* every payload block gets an ``exc`` edge to the innermost enclosing
  handler dispatch / ``finally`` / ``with`` exit, or to the function's
  synthetic ``raise`` exit — *whether* a given statement can actually
  raise is a client decision (transfer functions emit an unreachable
  state along the ``exc`` edge for statements they consider safe);
* ``try``/``except``/``else``/``finally`` is modelled with an explicit
  dispatch block (one ``exc`` edge per handler, plus an escape edge when
  no handler is a catch-all) and a single shared ``finally`` subgraph
  whose out-edges are the union of every continuation that can traverse
  it (normal fall-through, exception re-raise, ``return``/``break``/
  ``continue``).  Sharing the ``finally`` body merges states that real
  executions keep separate — a deliberate may-analysis approximation,
  see DESIGN.md §13;
* ``with`` gets an enter block (context expressions + ``as`` bindings)
  and exit blocks on both the normal and exceptional path, so clients
  can model ``__exit__`` cleanup on every way out;
* loops get a head block with the back edge, an up-front ``after`` join
  that ``break`` targets, and ``else`` clauses on the exhausted path;
* ``return`` routes through every enclosing ``finally``/``with`` exit
  before reaching the function exit; ``break``/``continue`` route
  through those inside the loop.

The graph has two sinks: ``exit`` (normal return) and ``raise_exit``
(an exception escaping the function).  A leak that reaches ``exit`` and
one that reaches ``raise_exit`` are different bugs (VIA501 vs VIA502).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

#: block kinds; clients switch on these in transfer functions
BLOCK_KINDS = (
    "entry",
    "exit",
    "raise",
    "stmt",
    "branch",      # If/While test, Match subject
    "loop",        # For head (iter + target binding)
    "handler",     # ExceptHandler binding (payload: the handler node)
    "with-enter",  # With/AsyncWith context enter (payload: the With node)
    "with-exit",   # With/AsyncWith context exit (payload: the With node)
    "join",        # synthetic merge point, no payload
)

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class Edge:
    """A directed edge; ``kind`` is ``"normal"`` or ``"exc"``."""

    src: int
    dst: int
    kind: str


@dataclass
class Block:
    """One CFG node holding at most one payload statement."""

    block_id: int
    kind: str
    stmt: Optional[ast.AST] = None
    succs: List[Edge] = field(default_factory=list)
    preds: List[Edge] = field(default_factory=list)

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0) if self.stmt is not None else 0


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, name: str, func: FuncDef):
        self.name = name
        self.func = func
        self.blocks: Dict[int, Block] = {}
        self.entry = 0
        self.exit = 0
        self.raise_exit = 0

    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]

    def successors(self, block_id: int) -> List[Edge]:
        return self.blocks[block_id].succs

    def predecessors(self, block_id: int) -> List[Edge]:
        return self.blocks[block_id].preds

    def reachable(self) -> List[int]:
        """Block ids reachable from entry, in discovery (quasi-RPO) order."""
        seen: Set[int] = set()
        order: List[int] = []
        stack = [self.entry]
        while stack:
            bid = stack.pop()
            if bid in seen:
                continue
            seen.add(bid)
            order.append(bid)
            for edge in reversed(self.blocks[bid].succs):
                if edge.dst not in seen:
                    stack.append(edge.dst)
        return order

    def render(self) -> str:
        """Debug dump: one line per block with its successors."""
        lines = []
        for bid in sorted(self.blocks):
            b = self.blocks[bid]
            succ = ", ".join(
                f"{e.dst}{'!' if e.kind == 'exc' else ''}" for e in b.succs
            )
            label = type(b.stmt).__name__ if b.stmt is not None else ""
            lines.append(f"  B{bid} [{b.kind}{' ' + label if label else ''}] -> {succ}")
        return f"cfg {self.name}:\n" + "\n".join(lines)


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------
@dataclass
class _LoopFrame:
    head: int
    after: int


@dataclass
class _CleanupFrame:
    """A region that abnormal exits must route through.

    ``entry`` is the first block of the cleanup (the ``finally`` entry or
    a ``with`` exit block); ``pending`` collects the continuations that
    jumps passing through the region need wired once the cleanup subgraph
    is built.
    """

    entry: int
    pending: List[Tuple[int, str]] = field(default_factory=list)


_Frame = Union[_LoopFrame, _CleanupFrame]

_CATCH_ALL = ("Exception", "BaseException")

#: ``ast.Match`` exists only on 3.10+; the builder must import on 3.9
_MATCH_TYPE: Optional[type] = getattr(ast, "Match", None)


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    """True when the handler cannot be escaped by an exception type."""
    if handler.type is None:
        return True
    types: Sequence[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        types = handler.type.elts
    else:
        types = [handler.type]
    for t in types:
        if isinstance(t, ast.Name) and t.id in _CATCH_ALL:
            return True
        if isinstance(t, ast.Attribute) and t.attr in _CATCH_ALL:
            return True
    return False


class _Builder:
    def __init__(self, name: str, func: FuncDef):
        self.cfg = CFG(name, func)
        self._next = 0
        self.cfg.entry = self._block("entry")
        self.cfg.exit = self._block("exit")
        self.cfg.raise_exit = self._block("raise")
        #: innermost-last targets for an in-flight exception
        self.exc_stack: List[int] = [self.cfg.raise_exit]
        #: loop and cleanup regions, innermost last
        self.frames: List[_Frame] = []

    # -- plumbing ------------------------------------------------------
    def _block(self, kind: str, stmt: Optional[ast.AST] = None) -> int:
        bid = self._next
        self._next += 1
        self.cfg.blocks[bid] = Block(bid, kind, stmt)
        return bid

    def _payload(self, kind: str, stmt: ast.AST) -> int:
        """A payload block, wired to the innermost exception target."""
        bid = self._block(kind, stmt)
        self._edge(bid, self.exc_stack[-1], "exc")
        return bid

    def _edge(self, src: int, dst: int, kind: str = "normal") -> None:
        edge = Edge(src, dst, kind)
        block = self.cfg.blocks[src]
        if edge not in block.succs:
            block.succs.append(edge)
            self.cfg.blocks[dst].preds.append(edge)

    def _connect(self, frontier: Sequence[int], dst: int) -> None:
        for src in frontier:
            self._edge(src, dst)

    # -- abnormal exits ------------------------------------------------
    def _jump(
        self, src: int, target: int, cleanups: Sequence[_CleanupFrame]
    ) -> None:
        """Route ``src`` to ``target`` through ``cleanups`` (outermost first)."""
        prev = target
        for frame in cleanups:  # outermost first
            cont = (prev, "normal")
            if cont not in frame.pending:
                frame.pending.append(cont)
            prev = frame.entry
        self._edge(src, prev, "normal")

    def _cleanups_through(self, stop_at_loop: bool) -> List[_CleanupFrame]:
        """Cleanup frames an abnormal exit traverses, outermost first."""
        out: List[_CleanupFrame] = []
        for frame in reversed(self.frames):  # innermost first
            if isinstance(frame, _LoopFrame):
                if stop_at_loop:
                    break
                continue
            out.append(frame)
        out.reverse()
        return out

    # -- statement dispatch --------------------------------------------
    def build(self) -> CFG:
        frontier = self._stmts(self.cfg.func.body, [self.cfg.entry])
        self._connect(frontier, self.cfg.exit)
        return self.cfg

    def _stmts(self, stmts: Sequence[ast.stmt], frontier: List[int]) -> List[int]:
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Return):
            bid = self._payload("stmt", stmt)
            self._connect(frontier, bid)
            self._jump(bid, self.cfg.exit, self._cleanups_through(False))
            return []
        if isinstance(stmt, ast.Break):
            loop = self._nearest_loop()
            bid = self._block("stmt", stmt)
            self._connect(frontier, bid)
            self._jump(bid, loop.after, self._cleanups_through(True))
            return []
        if isinstance(stmt, ast.Continue):
            loop = self._nearest_loop()
            bid = self._block("stmt", stmt)
            self._connect(frontier, bid)
            self._jump(bid, loop.head, self._cleanups_through(True))
            return []
        if isinstance(stmt, ast.Raise):
            bid = self._payload("stmt", stmt)
            self._connect(frontier, bid)
            return []  # the exc edge is the only way out
        if _MATCH_TYPE is not None and isinstance(stmt, _MATCH_TYPE):
            return self._match(stmt, frontier)
        # nested defs/classes are opaque statements: their bodies run when
        # called, not here, and function_cfgs() visits them separately
        bid = self._payload("stmt", stmt)
        self._connect(frontier, bid)
        return [bid]

    def _nearest_loop(self) -> _LoopFrame:
        for frame in reversed(self.frames):
            if isinstance(frame, _LoopFrame):
                return frame
        raise SyntaxError("break/continue outside a loop")

    # -- structured statements -----------------------------------------
    def _if(self, stmt: ast.If, frontier: List[int]) -> List[int]:
        test = self._payload("branch", stmt)
        self._connect(frontier, test)
        then_frontier = self._stmts(stmt.body, [test])
        else_frontier = self._stmts(stmt.orelse, [test])
        return then_frontier + else_frontier

    def _while(self, stmt: ast.While, frontier: List[int]) -> List[int]:
        head = self._payload("branch", stmt)
        after = self._block("join")
        self._connect(frontier, head)
        self.frames.append(_LoopFrame(head, after))
        body_frontier = self._stmts(stmt.body, [head])
        self._connect(body_frontier, head)  # back edge
        self.frames.pop()
        exhausted = self._stmts(stmt.orelse, [head])
        self._connect(exhausted, after)
        return [after]

    def _for(self, stmt: Union[ast.For, ast.AsyncFor], frontier: List[int]) -> List[int]:
        head = self._payload("loop", stmt)
        after = self._block("join")
        self._connect(frontier, head)
        self.frames.append(_LoopFrame(head, after))
        body_frontier = self._stmts(stmt.body, [head])
        self._connect(body_frontier, head)  # back edge
        self.frames.pop()
        exhausted = self._stmts(stmt.orelse, [head])
        self._connect(exhausted, after)
        return [after]

    def _match(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        subject = self._payload("branch", stmt)
        self._connect(frontier, subject)
        out: List[int] = [subject]  # no case may match
        for case in getattr(stmt, "cases", []):
            out.extend(self._stmts(case.body, [subject]))
        return out

    def _with(
        self, stmt: Union[ast.With, ast.AsyncWith], frontier: List[int]
    ) -> List[int]:
        enter = self._payload("with-enter", stmt)
        self._connect(frontier, enter)
        # the exceptional __exit__: cleanup runs, then the exception
        # continues to the enclosing target
        exc_exit = self._block("with-exit", stmt)
        self._edge(exc_exit, self.exc_stack[-1], "exc")
        # a separate __exit__ block routes return/break/continue, so the
        # exceptional state never bleeds into normal-exit classification
        jump_exit = self._block("with-exit", stmt)
        frame = _CleanupFrame(entry=jump_exit)
        self.exc_stack.append(exc_exit)
        self.frames.append(frame)
        body_frontier = self._stmts(stmt.body, [enter])
        self.frames.pop()
        self.exc_stack.pop()
        # the normal __exit__
        norm_exit = self._payload("with-exit", stmt)
        self._connect(body_frontier, norm_exit)
        # return/break/continue leaving the body also run __exit__; their
        # continuations were recorded on the frame while building the body
        for target, kind in frame.pending:
            self._edge(jump_exit, target, kind)
        return [norm_exit]

    def _try(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        fin_frame: Optional[_CleanupFrame] = None
        if stmt.finalbody:
            fin_frame = _CleanupFrame(entry=self._block("join"))
            self.frames.append(fin_frame)

        dispatch: Optional[int] = None
        if stmt.handlers:
            dispatch = self._block("join")
            body_exc = dispatch
        else:
            assert fin_frame is not None  # try needs handlers or finally
            body_exc = fin_frame.entry

        self.exc_stack.append(body_exc)
        body_frontier = self._stmts(stmt.body, frontier)
        self.exc_stack.pop()
        # else runs only when the body completed without an exception
        body_frontier = self._stmts(stmt.orelse, body_frontier)
        exits: List[int] = list(body_frontier)

        if dispatch is not None:
            handler_exc = (
                fin_frame.entry if fin_frame is not None else self.exc_stack[-1]
            )
            caught_all = False
            for handler in stmt.handlers:
                # no exc edge on the entry itself: it executes no user
                # code, and the handler-body blocks carry their own —
                # routing the *pre*-handler state past the body would
                # erase whatever cleanup the handler performs
                entry = self._block("handler", handler)
                self._edge(dispatch, entry, "exc")
                self.exc_stack.append(handler_exc)
                exits.extend(self._stmts(handler.body, [entry]))
                self.exc_stack.pop()
                caught_all = caught_all or _is_catch_all(handler)
            if not caught_all:
                # an exception matching no handler escapes the try
                self._edge(dispatch, handler_exc, "exc")

        if fin_frame is None:
            return exits

        self.frames.pop()
        self._connect(exits, fin_frame.entry)
        fin_frontier = self._stmts(stmt.finalbody, [fin_frame.entry])
        after = self._block("join")
        continuations = list(fin_frame.pending)
        continuations.append((after, "normal"))
        # an exception that entered the finally keeps propagating afterwards;
        # normal-kind, because it carries the post-cleanup state of the last
        # finally statement, not a fresh raise out of it
        continuations.append((self.exc_stack[-1], "normal"))
        for target, kind in continuations:
            for src in fin_frontier:
                self._edge(src, target, kind)
        return [after]


def build_cfg(func: FuncDef, name: Optional[str] = None) -> CFG:
    """The CFG of one function definition."""
    return _Builder(name or func.name, func).build()


def function_cfgs(tree: ast.Module) -> Iterator[Tuple[str, CFG]]:
    """Every function in a module (methods and nested defs included),
    yielded as ``(dotted qualname, CFG)`` in source order."""

    def walk(
        body: Sequence[ast.stmt], prefix: str
    ) -> Iterator[Tuple[str, CFG]]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                yield qualname, build_cfg(node, qualname)
                yield from walk(node.body, f"{qualname}.")
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body, f"{prefix}{node.name}.")

    yield from walk(tree.body, "")
