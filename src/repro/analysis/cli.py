"""``python -m repro.analysis`` — the checker's command-line gate.

Exit code 0 when no error-severity finding survives suppressions and the
baseline; 1 otherwise; 2 on usage errors.  ``--write-baseline`` records
the current findings so a later run can start from a clean slate while
the debt is paid down — the repo gate itself runs baseline-free.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import repro.analysis  # noqa: F401  (registers every rule family)
from repro.analysis.core import (
    FAMILY_CHECKERS,
    RULES,
    Project,
    format_findings,
    format_timings,
    load_baseline,
    run_analysis,
    save_baseline,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="project-specific static checks: cache-key hygiene, "
        "determinism hazards, lock discipline, resource lifecycle, "
        "error contract, dtype hygiene",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to scan (default: src tests)",
    )
    parser.add_argument(
        "--rules", action="append", default=None, metavar="RULE|FAMILY",
        help="restrict to rule ids or families (repeatable, comma-separated)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="JSON baseline of tolerated finding fingerprints",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write the current findings as a baseline and exit 0",
    )
    parser.add_argument(
        "--root", default=None,
        help="project root findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--timings", action="store_true",
        help="report per-rule-family wall time",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=None, metavar="SECONDS",
        help="fail (exit 1) when total analysis time exceeds this budget; "
        "the CI gate's guard against the checker outgrowing its job",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule_id in sorted(RULES):
        info = RULES[rule_id]
        lines.append(f"{rule_id}  [{info.family}/{info.severity}]  {info.summary}")
    lines.append(f"families: {', '.join(sorted(FAMILY_CHECKERS))}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    select: Optional[List[str]] = None
    if args.rules:
        select = [tok for chunk in args.rules for tok in chunk.split(",") if tok.strip()]

    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    project = Project(args.paths, root=args.root)
    if not project.files:
        print("error: no python files found under the given paths", file=sys.stderr)
        return 2
    try:
        report = run_analysis(project, select=select, baseline=baseline)
    except ValueError as exc:  # unknown rule/family selection
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        save_baseline(args.write_baseline, report.findings)
        print(
            f"wrote {len(report.findings)} fingerprint(s) to {args.write_baseline}"
        )
        return 0

    print(format_findings(report, args.format))
    if args.timings:
        print(format_timings(report))
    if args.max_seconds is not None and report.total_seconds > args.max_seconds:
        print(
            f"error: analysis took {report.total_seconds:.2f}s, over the "
            f"{args.max_seconds:.2f}s budget",
            file=sys.stderr,
        )
        return 1
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
