"""Lock-discipline rules (family ``locks``).

:mod:`repro.serve` runs an asyncio event loop next to a thread-pool
executor: the scheduler hands jobs to executor threads and both sides
mutate job and scheduler state.  The convention is an instance lock
(``self._lock``) around every touch of state that crosses the thread
boundary — a convention this module turns into a checkable rule.

Per class, the checker derives:

* the class's **lock attributes** — ``self.<name>`` assigned in
  ``__init__`` from a ``threading.Lock()``/``RLock()``/``Condition()``
  call, or any ``self`` attribute whose name contains ``lock``;
* its **executor entry points** — methods handed to another thread via
  ``loop.run_in_executor(self._executor, self.m, ...)``,
  ``executor.submit(self.m, ...)``, or ``Thread(target=self.m)``, plus
  every same-class method reachable from one through ``self.m()`` calls;
* per method, every attribute **event** (read or write of ``self.attr``
  or ``param.attr``), tagged with whether it happened inside a
  ``with self._lock:`` block.  Writes include subscript stores and
  mutator-method calls (``append``/``pop``/``clear``/…).

An attribute is **shared** when one side writes it and the other side
touches it — in either direction.  For shared attributes:

* ``VIA301`` (error) — the attribute is written both inside and outside
  lock blocks (the unlocked write races the locked reader);
* ``VIA302`` (error) — an executor-reachable method touches
  loop-written shared state without holding the lock;
* ``VIA303`` (error) — the mirror image: a loop-side method touches
  executor-written shared state without holding the lock.  The serve
  worker-pool supervisor (:mod:`repro.serve.pool`) is the motivating
  case: its supervisor thread mutates the worker table and crash
  counters, and every loop-side reader (``submit``/``cancel``/
  ``health``) must hold the supervisor lock to see a consistent view.

``__init__`` writes are exempt (no second thread exists yet).  Classes
with no lock attribute and no executor entry points are skipped — the
rules check the *discipline around* a lock, they do not demand one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    Finding,
    Project,
    SourceFile,
    attribute_chain,
    family_checker,
    make_finding,
    rule,
)

VIA301 = rule(
    "VIA301",
    "locks",
    "attribute written both inside and outside lock blocks",
)
VIA302 = rule(
    "VIA302",
    "locks",
    "executor-reachable code touches shared state without the lock",
)
VIA303 = rule(
    "VIA303",
    "locks",
    "loop-side code touches executor-written shared state without the lock",
)

#: path fragments selecting the threaded-serving scope
LOCK_PREFIXES: Tuple[str, ...] = ("repro/serve/",)

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

#: method calls that mutate their receiver (list/dict/set/deque mutators)
_MUTATORS = {
    "append", "appendleft", "extend", "extendleft", "insert", "remove",
    "pop", "popleft", "popitem", "clear", "add", "discard", "update",
    "setdefault", "sort", "reverse",
}


@dataclass
class _AttrEvent:
    attr: str
    line: int
    write: bool
    locked: bool


@dataclass
class _MethodInfo:
    name: str
    events: List[_AttrEvent] = field(default_factory=list)
    calls: Set[str] = field(default_factory=set)  # same-class self.m() calls
    entry: bool = False  # directly handed to another thread


class _MethodScanner(ast.NodeVisitor):
    """Collect attribute events and self-calls for one method body."""

    def __init__(self, lock_attrs: Set[str], params: Set[str]):
        self.lock_attrs = lock_attrs
        self.params = params  # names whose attributes we track ("self", "job", …)
        self.info: Optional[_MethodInfo] = None
        self._lock_depth = 0

    def scan(self, name: str, body: Sequence[ast.stmt]) -> _MethodInfo:
        self.info = _MethodInfo(name)
        for stmt in body:
            self.visit(stmt)
        return self.info

    # -- lock blocks --------------------------------------------------
    def _is_lock_expr(self, node: ast.expr) -> bool:
        chain = attribute_chain(node)
        return (
            chain is not None
            and len(chain) == 2
            and chain[0] in self.params
            and chain[1] in self.lock_attrs
        )

    def visit_With(self, node: ast.With) -> None:
        holds = any(self._is_lock_expr(item.context_expr) for item in node.items)
        if holds:
            self._lock_depth += 1
        self.generic_visit(node)
        if holds:
            self._lock_depth -= 1

    # -- attribute events ---------------------------------------------
    def _event(self, attr: str, line: int, write: bool) -> None:
        assert self.info is not None
        if attr in self.lock_attrs or attr.startswith("__"):
            return
        self.info.events.append(
            _AttrEvent(attr, line, write, self._lock_depth > 0)
        )

    def _tracked_attr(self, node: ast.AST) -> Optional[ast.Attribute]:
        """The attribute node if ``node`` is ``<param>.attr[...]*``."""
        base = node
        while isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            if base.value.id in self.params:
                return base
        return None

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id in self.params:
            self._event(
                node.attr, node.lineno, isinstance(node.ctx, (ast.Store, ast.Del))
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # a store through a subscript mutates the *container* attribute
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            base = self._tracked_attr(node)
            if base is not None:
                self._event(base.attr, node.lineno, True)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        assert self.info is not None
        if isinstance(node.func, ast.Attribute):
            owner = node.func.value
            # self.method() — a same-class call edge
            if isinstance(owner, ast.Name) and owner.id == "self":
                self.info.calls.add(node.func.attr)
            # <param>.container.append(...) — a mutation of the container
            if node.func.attr in _MUTATORS:
                base = self._tracked_attr(owner)
                if base is not None:
                    self._event(base.attr, node.lineno, True)
        self.generic_visit(node)

    # nested defs get their own thread-discipline story; don't descend
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _lock_attrs(cls: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for method in cls.body:
        if not isinstance(method, ast.FunctionDef) or method.name != "__init__":
            continue
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                chain = attribute_chain(target)
                if chain is None or len(chain) != 2 or chain[0] != "self":
                    continue
                attr = chain[1]
                if "lock" in attr.lower():
                    names.add(attr)
                    continue
                if isinstance(node.value, ast.Call):
                    call_chain = attribute_chain(node.value.func)
                    if call_chain and call_chain[-1] in _LOCK_FACTORIES:
                        names.add(attr)
    return names


def _entry_methods(cls: ast.ClassDef) -> Set[str]:
    """Methods of ``cls`` handed directly to another thread."""
    entries: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Call):
            continue
        func_chain = attribute_chain(node.func)
        if func_chain is None:
            continue
        candidates: List[ast.expr] = []
        if func_chain[-1] == "run_in_executor" and len(node.args) >= 2:
            candidates.append(node.args[1])
        elif func_chain[-1] == "submit" and node.args:
            candidates.append(node.args[0])
        elif func_chain[-1] == "Thread" or (
            len(func_chain) == 1 and func_chain[0] == "Thread"
        ):
            for kw in node.keywords:
                if kw.arg == "target":
                    candidates.append(kw.value)
        for cand in candidates:
            chain = attribute_chain(cand)
            if chain is not None and len(chain) == 2 and chain[0] == "self":
                entries.add(chain[1])
    return entries


def _reachable(methods: Dict[str, _MethodInfo], roots: Set[str]) -> Set[str]:
    seen: Set[str] = set()
    stack = [r for r in roots if r in methods]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        for callee in methods[name].calls:
            if callee in methods and callee not in seen:
                stack.append(callee)
    return seen


def _check_class(cls: ast.ClassDef, src: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    lock_attrs = _lock_attrs(cls)
    entries = _entry_methods(cls)
    if not lock_attrs or not entries:
        # no lock convention or no thread boundary in this class
        return findings

    methods: Dict[str, _MethodInfo] = {}
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            params = {"self"}
            params.update(
                a.arg for a in node.args.args if a.arg != "self"
            )
            # async methods run on the loop; same scan applies
            methods[node.name] = _MethodScanner(lock_attrs, params).scan(
                node.name, node.body
            )
    executor_side = _reachable(methods, entries)

    # shared = written by loop-side code ∧ touched by executor-side code
    loop_writes: Dict[str, List[_AttrEvent]] = {}
    for name, info in methods.items():
        if name == "__init__" or name in executor_side:
            continue
        for ev in info.events:
            if ev.write:
                loop_writes.setdefault(ev.attr, []).append(ev)
    executor_touches: Dict[str, List[_AttrEvent]] = {}
    for name in executor_side:
        for ev in methods[name].events:
            executor_touches.setdefault(ev.attr, []).append(ev)
    shared = set(loop_writes) & set(executor_touches)

    # the mirror direction: executor-side writes vs loop-side touches
    loop_touches: Dict[str, List[_AttrEvent]] = {}
    for name, info in methods.items():
        if name == "__init__" or name in executor_side:
            continue
        for ev in info.events:
            loop_touches.setdefault(ev.attr, []).append(ev)
    executor_writes = {
        attr for attr, events in executor_touches.items()
        if any(ev.write for ev in events)
    }
    shared_back = executor_writes & set(loop_touches)

    for attr in sorted(shared):
        locked_writes = [e for e in loop_writes[attr] if e.locked]
        unlocked_writes = [e for e in loop_writes[attr] if not e.locked] + [
            e for e in executor_touches[attr] if e.write and not e.locked
        ]
        if locked_writes and unlocked_writes:
            for ev in sorted(unlocked_writes, key=lambda e: e.line):
                findings.append(
                    make_finding(
                        VIA301, src.rel, ev.line,
                        f"{cls.name}.{attr} is written under the lock "
                        "elsewhere but written here without it; the "
                        "unlocked write races every locked reader",
                    )
                )
        for ev in sorted(executor_touches[attr], key=lambda e: e.line):
            if not ev.locked:
                findings.append(
                    make_finding(
                        VIA302, src.rel, ev.line,
                        f"{cls.name}.{attr} is loop-mutated shared state "
                        "touched here from an executor-reachable method "
                        "without holding the lock",
                    )
                )
    for attr in sorted(shared_back):
        for ev in sorted(loop_touches[attr], key=lambda e: e.line):
            if not ev.locked:
                findings.append(
                    make_finding(
                        VIA303, src.rel, ev.line,
                        f"{cls.name}.{attr} is written by the supervisor/"
                        "executor thread and touched here from loop-side "
                        "code without holding the lock; the reader can "
                        "observe a torn update",
                    )
                )
    # one site can raise several identical events (a mutator call is both
    # a read of the container and a write through it) — report it once
    deduped: List[Finding] = []
    seen: Set[Tuple[str, int, str]] = set()
    for f in findings:
        key = (f.rule, f.line, f.message)
        if key not in seen:
            seen.add(key)
            deduped.append(f)
    return deduped


@family_checker("locks")
def check_locks(
    project: Project,
    prefixes: Sequence[str] = LOCK_PREFIXES,
) -> List[Finding]:
    findings: List[Finding] = []
    for src in project.iter_files(list(prefixes)):
        tree = src.tree
        if tree is None:
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(_check_class(node, src))
    return findings
