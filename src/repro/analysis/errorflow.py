"""Error-contract rules (family ``errorflow``).

``repro.serve`` promises clients that every failure arrives as a
*structured* wire error: ``error_payload`` in :mod:`repro.serve.jobs`
maps the exception hierarchy to ``{code, retry_after, ...}`` payloads.
An exception type the mapping has never heard of collapses to the
catch-all ``internal`` code — the client loses the ability to decide
retry vs. give-up, and the admission/poison machinery loses its signal.

Like VIA100 cross-checks the cache-key builders, this family
cross-checks the serve layer against its own boundary function:

* ``VIA601`` (error) — a ``raise`` in ``repro/serve/`` whose exception
  type is resolvable but **not** mapped by ``error_payload`` (directly
  or via a subclass of a mapped type).  Raise helpers
  (``raise _bad_spec(...)``) are resolved one level deep, ``raise exc``
  resolves through ``except X as exc`` bindings and local
  ``exc = Cls(...)`` assignments; anything unresolvable is skipped —
  the rule flags only provable contract breaks;
* ``VIA602`` (warning) — a broad handler (bare ``except``,
  ``except Exception``/``BaseException``) that swallows: its body
  neither re-raises, nor references the bound exception, nor logs.
  Crash evidence silently discarded is how poison jobs become
  heisenbugs;
* ``VIA603`` (error) — the anchor itself is broken: ``error_payload``
  exists but its ``isinstance`` mapping cannot be extracted, so the
  whole contract is unverifiable.

The family is *reachability-approximate*: intraprocedurally, every
``raise`` in serve modules is treated as reachable from the
executor/scheduler entry points.  That over-approximates (helpers only
called from tests count too) but never under-approximates, and the
suppression machinery covers the deliberate exceptions.  When the
project under analysis has no ``repro/serve/jobs.py`` the family skips
silently — same behaviour as the keys family when a binding's module is
absent from the file set.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    Finding,
    Project,
    SourceFile,
    family_checker,
    import_aliases,
    make_finding,
    rule,
)

VIA601 = rule(
    "VIA601",
    "errorflow",
    "raise of an exception type unmapped by error_payload",
)
VIA602 = rule(
    "VIA602",
    "errorflow",
    "broad except swallows the exception without re-raise, use, or logging",
    severity="warning",
)
VIA603 = rule(
    "VIA603",
    "errorflow",
    "error_payload anchor exists but its mapping cannot be extracted",
)

#: path fragment this family scans
ERRORFLOW_PREFIX = "repro/serve/"

#: the module holding the boundary mapping
ANCHOR_MODULE = "repro.serve.jobs"
ANCHOR_FUNCTION = "error_payload"

#: exception leaves that never cross the wire as job errors — control
#: flow (generators/cancellation), interpreter shutdown, and assertions,
#: which the supervisor layer converts to crash evidence itself; plus
#: transport teardown: when the peer socket is already gone there is no
#: client left to deliver a payload to, so mapping the type is moot
_EXEMPT_LEAVES = frozenset(
    {
        "StopIteration",
        "StopAsyncIteration",
        "GeneratorExit",
        "KeyboardInterrupt",
        "SystemExit",
        "CancelledError",
        "AssertionError",
        "NotImplementedError",
        "ConnectionError",
        "ConnectionResetError",
        "ConnectionAbortedError",
        "BrokenPipeError",
    }
)

_BROAD = ("Exception", "BaseException")

_LOG_LEAVES = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log", "print"}
)


def _class_leaf(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _mapped_classes(anchor: SourceFile) -> Optional[Set[str]]:
    """Class leaves ``error_payload`` maps, or None when unextractable."""
    tree = anchor.tree
    if tree is None:
        return None
    func: Optional[ast.FunctionDef] = None
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == ANCHOR_FUNCTION:
            func = node
            break
    if func is None:
        return None
    mapped: Set[str] = set()
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            continue
        spec = node.args[1]
        types = spec.elts if isinstance(spec, ast.Tuple) else [spec]
        for t in types:
            leaf = _class_leaf(t)
            if leaf is not None:
                mapped.add(leaf)
    return mapped or None


def _subclass_closure(project: Project, mapped: Set[str]) -> Set[str]:
    """Add every project class transitively deriving from a mapped one."""
    bases_by_class: Dict[str, Set[str]] = {}
    for src in project.files:
        tree = src.tree
        if tree is None:
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                bases = {
                    b for b in (_class_leaf(base) for base in node.bases)
                    if b is not None
                }
                bases_by_class.setdefault(node.name, set()).update(bases)
    closed = set(mapped)
    changed = True
    while changed:
        changed = False
        for cls, bases in bases_by_class.items():
            if cls not in closed and bases & closed:
                closed.add(cls)
                changed = True
    return closed


class _FunctionScanner:
    """Per-function raise resolution with handler/assignment bindings."""

    def __init__(
        self,
        src: SourceFile,
        helpers: Dict[str, Optional[str]],
        mapped: Set[str],
        findings: List[Finding],
    ):
        self.src = src
        self.helpers = helpers
        self.mapped = mapped
        self.findings = findings

    def scan(self, func: ast.AST) -> None:
        #: name -> exception-class leaves it may hold (None = unknown)
        bound: Dict[str, Optional[Tuple[str, ...]]] = {}
        self._visit_body(list(ast.iter_child_nodes(func)), bound)

    def _visit_body(
        self,
        nodes: Sequence[ast.AST],
        bound: Dict[str, Optional[Tuple[str, ...]]],
    ) -> None:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested scopes get their own scan
            if isinstance(node, ast.ExceptHandler):
                inner = dict(bound)
                if node.name is not None:
                    inner[node.name] = self._handler_types(node)
                self._visit_body(list(ast.iter_child_nodes(node)), inner)
                continue
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                name = node.targets[0].id
                if isinstance(node.value, ast.Call):
                    leaf = _class_leaf(node.value.func)
                    bound[name] = (leaf,) if leaf is not None else None
                else:
                    bound[name] = None
            if isinstance(node, ast.Raise):
                self._check_raise(node, bound)
            self._visit_body(list(ast.iter_child_nodes(node)), bound)

    @staticmethod
    def _handler_types(handler: ast.ExceptHandler) -> Optional[Tuple[str, ...]]:
        if handler.type is None:
            return None
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        leaves = [_class_leaf(t) for t in types]
        if any(leaf is None for leaf in leaves):
            return None
        return tuple(leaf for leaf in leaves if leaf is not None)

    def _check_raise(
        self,
        node: ast.Raise,
        bound: Dict[str, Optional[Tuple[str, ...]]],
    ) -> None:
        if node.exc is None:
            return  # bare re-raise: the original type is someone else's
        leaves = self._resolve(node.exc, bound)
        if leaves is None:
            return  # unresolvable: flag only provable breaks
        unmapped = [
            leaf
            for leaf in leaves
            if leaf not in self.mapped and leaf not in _EXEMPT_LEAVES
        ]
        if unmapped:
            names = ", ".join(sorted(set(unmapped)))
            self.findings.append(
                make_finding(
                    VIA601, self.src.rel, node.lineno,
                    f"raises {names}, which error_payload() does not map; "
                    "clients see the catch-all 'internal' code and cannot "
                    "make a retry decision — raise a mapped type (ServeError "
                    "and friends) or extend the mapping",
                )
            )

    def _resolve(
        self,
        exc: ast.expr,
        bound: Dict[str, Optional[Tuple[str, ...]]],
    ) -> Optional[Tuple[str, ...]]:
        if isinstance(exc, ast.Call):
            leaf = _class_leaf(exc.func)
            if leaf is None:
                return None
            if leaf in self.helpers:
                helper_cls = self.helpers[leaf]
                return (helper_cls,) if helper_cls is not None else None
            if leaf[:1].isupper():
                return (leaf,)
            return None  # lowercase non-helper callee: unknown factory
        if isinstance(exc, ast.Name):
            if exc.id in bound:
                return bound[exc.id]
            if exc.id[:1].isupper():
                return (exc.id,)  # raise Cls (no call) — still the type
            return None
        return None


def _raise_helpers(tree: ast.Module) -> Dict[str, Optional[str]]:
    """Module functions that *return* an exception to be raised.

    ``def _bad_spec(reason): return ServeError(...)`` makes
    ``raise _bad_spec(...)`` resolvable.  A helper whose returns are not
    all one constructor maps to ``None`` (unknown, skipped).
    """
    helpers: Dict[str, Optional[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        returned: Set[Optional[str]] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Return) and sub.value is not None:
                if isinstance(sub.value, ast.Call):
                    returned.add(_class_leaf(sub.value.func))
                else:
                    returned.add(None)
        concrete = {r for r in returned if r is not None and r[:1].isupper()}
        if len(returned) == 1 and len(concrete) == 1:
            helpers[node.name] = next(iter(concrete))
    return helpers


def _swallowing_handlers(src: SourceFile, findings: List[Finding]) -> None:
    tree = src.tree
    if tree is None:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad(node):
            continue
        if _handler_engages(node):
            continue
        findings.append(
            make_finding(
                VIA602, src.rel, node.lineno,
                "broad except swallows the exception without re-raising, "
                "using, or logging it; crash evidence disappears — bind it "
                "(`except Exception as exc:`) and log or wrap it, or narrow "
                "the except to the types this code expects",
            )
        )


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return any(_class_leaf(t) in _BROAD for t in types)


def _handler_engages(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises, uses the exception, or logs."""
    name = handler.name
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if name is not None and isinstance(node, ast.Name) and node.id == name:
            return True
        if isinstance(node, ast.Call):
            leaf = _class_leaf(node.func)
            if leaf in _LOG_LEAVES:
                return True
    return False


@family_checker("errorflow")
def check_errorflow(
    project: Project,
    prefix: str = ERRORFLOW_PREFIX,
) -> List[Finding]:
    anchor = project.module(ANCHOR_MODULE)
    if anchor is None:
        # the boundary isn't part of this file set (fixture projects,
        # partial runs): nothing to cross-check against
        return []
    findings: List[Finding] = []
    mapped = _mapped_classes(anchor)
    if mapped is None:
        findings.append(
            make_finding(
                VIA603, anchor.rel, 1,
                f"{ANCHOR_FUNCTION}() in {ANCHOR_MODULE} exists but its "
                "isinstance mapping could not be extracted; the error "
                "contract is unverifiable — keep the mapping a plain "
                "isinstance chain",
            )
        )
        return findings
    closure = _subclass_closure(project, mapped)

    for src in project.iter_files([prefix]):
        tree = src.tree
        if tree is None:
            continue
        helpers = _raise_helpers(tree)
        scanner_targets: List[ast.AST] = [
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for func in scanner_targets:
            _FunctionScanner(src, helpers, closure, findings).scan(func)
        _swallowing_handlers(src, findings)
    return findings
