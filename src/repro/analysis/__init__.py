"""Project-specific static analysis for the VIA reproduction.

The repo's correctness story rests on three hand-maintained invariants
that no general-purpose linter checks:

* **cache-key hygiene** — every field of a configuration dataclass that
  feeds a content-addressed key builder must be consumed by the key or
  explicitly declared ``KEY_EXEMPT`` with a justification
  (:mod:`repro.analysis.keys`);
* **determinism** — code that runs inside sweep workers or the replay
  path must not read clocks, unseeded RNGs, process-unique ids, or
  unordered set iteration into ordered output
  (:mod:`repro.analysis.determinism`);
* **lock discipline** — :mod:`repro.serve` mutates shared state from
  executor threads; attributes crossing that boundary must be touched
  under the instance lock (:mod:`repro.analysis.locks`);
* **hot-path narration** — the record path buffers ops in the
  columnar builder; per-op ``Op(...)`` construction in ``Core``/kernel
  loops would silently restore the per-object cost
  (:mod:`repro.analysis.hotpath`);
* **resource lifecycle** — the serve pool and eval supervisor must
  close/join/terminate every pipe, process, socket, and temp file on
  every CFG path out of a function, exception edges included
  (:mod:`repro.analysis.lifecycle`);
* **error contract** — every resolvable raise in ``repro.serve`` must
  carry an exception type ``error_payload`` maps to a structured wire
  error, and broad handlers must not swallow silently
  (:mod:`repro.analysis.errorflow`);
* **dtype hygiene** — the columnar pricing kernels must keep cycle
  arithmetic integral; ``/``, ``np.mean``, and float literals that
  silently promote int arrays break the bit-identity contract
  (:mod:`repro.analysis.dtypes`).

The lifecycle and dtype families are flow-sensitive: they run fixpoint
dataflow (:mod:`repro.analysis.dataflow`) over per-function CFGs with
explicit exception edges (:mod:`repro.analysis.cfg`).

:mod:`repro.analysis.core` provides the rule framework (findings,
suppressions, baselines, JSON/human output); ``python -m repro.analysis``
is the CLI gate that CI runs next to ruff.
"""

from repro.analysis.core import (
    AnalysisReport,
    Finding,
    Project,
    RULES,
    run_analysis,
)

# importing the rule modules registers their family checkers
from repro.analysis import (  # noqa: F401  (registration)
    determinism,
    dtypes,
    errorflow,
    hotpath,
    keys,
    lifecycle,
    locks,
)

__all__ = [
    "AnalysisReport",
    "Finding",
    "Project",
    "RULES",
    "run_analysis",
]
