"""Project-specific static analysis for the VIA reproduction.

The repo's correctness story rests on three hand-maintained invariants
that no general-purpose linter checks:

* **cache-key hygiene** — every field of a configuration dataclass that
  feeds a content-addressed key builder must be consumed by the key or
  explicitly declared ``KEY_EXEMPT`` with a justification
  (:mod:`repro.analysis.keys`);
* **determinism** — code that runs inside sweep workers or the replay
  path must not read clocks, unseeded RNGs, process-unique ids, or
  unordered set iteration into ordered output
  (:mod:`repro.analysis.determinism`);
* **lock discipline** — :mod:`repro.serve` mutates shared state from
  executor threads; attributes crossing that boundary must be touched
  under the instance lock (:mod:`repro.analysis.locks`);
* **hot-path narration** — the record path buffers ops in the
  columnar builder; per-op ``Op(...)`` construction in ``Core``/kernel
  loops would silently restore the per-object cost
  (:mod:`repro.analysis.hotpath`).

:mod:`repro.analysis.core` provides the rule framework (findings,
suppressions, baselines, JSON/human output); ``python -m repro.analysis``
is the CLI gate that CI runs next to ruff.
"""

from repro.analysis.core import (
    AnalysisReport,
    Finding,
    Project,
    RULES,
    run_analysis,
)

# importing the rule modules registers their family checkers
from repro.analysis import (  # noqa: F401  (registration)
    determinism,
    hotpath,
    keys,
    locks,
)

__all__ = [
    "AnalysisReport",
    "Finding",
    "Project",
    "RULES",
    "run_analysis",
]
