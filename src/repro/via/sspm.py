"""The Smart Scratchpad Memory (SSPM) — paper Section IV-A.

The SSPM is the functional heart of VIA.  It consists of three blocks
(Figure 5):

1. **SRAM cells** — the value storage, organized as four-byte blocks, each
   holding one element;
2. **valid bitmap** — one bit per SRAM entry, used in direct-mapped mode to
   distinguish written entries (reads of unwritten entries return zero) and
   cleared wholesale by the flash-zeroing ``vidxclear`` instruction;
3. **index tracking logic** — the CAM functionality: an index table storing
   the application indices under which values were written, an insertion
   logic that allocates table/SRAM slots strictly *in order* (the paper's
   area optimization over out-of-order issue-queue CAMs), and an element
   count register.

Two operating modes share the SRAM:

* **direct-mapped** (sparse-dense kernels, e.g. SpMV): the application
  index addresses the SRAM directly;
* **CAM-based** (sparse-sparse kernels, e.g. SpMA/SpMM): the application
  index is searched in the index table; reads of unmatched indices return
  zero, writes of unmatched indices insert a new tracked entry.

The class also keeps event counters (reads, writes, searches, insertions,
active banks) feeding the timing and energy models.  Banked clock gating is
modeled through :meth:`active_banks`: only banks holding tracked indices
participate in a search (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SSPMCapacityError, SSPMError
from repro.via.config import CAM_BANK_ENTRIES, DEFAULT_VIA, ViaConfig


@dataclass
class SSPMCounters:
    """Dynamic-event counters for energy/timing accounting."""

    dm_reads: int = 0
    dm_writes: int = 0
    cam_reads: int = 0
    cam_writes: int = 0
    cam_searches: int = 0
    cam_insertions: int = 0
    clears: int = 0
    bank_activations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


class SSPM:
    """Functional + event-counting model of the smart scratchpad.

    Parameters
    ----------
    config:
        Hardware geometry (capacity, ports, CAM size).
    """

    def __init__(self, config: ViaConfig = DEFAULT_VIA):
        self.config = config
        self._sram = np.zeros(config.sram_entries, dtype=float)
        self._valid = np.zeros(config.sram_entries, dtype=bool)
        # CAM index table: tracked application indices, allocated in order.
        self._cam_index = np.full(config.cam_entries, -1, dtype=np.int64)
        self._cam_map: Dict[int, int] = {}
        self._element_count = 0
        self.counters = SSPMCounters()

    # ------------------------------------------------------------------
    # Shared state
    # ------------------------------------------------------------------
    @property
    def element_count(self) -> int:
        """Value of the element count register (tracked CAM indices)."""
        return self._element_count

    def active_banks(self) -> int:
        """Index-table banks with live entries (the rest are clock-gated)."""
        return -(-self._element_count // CAM_BANK_ENTRIES)

    def clear(self, *, segment: Optional[Tuple[int, int]] = None) -> None:
        """Flash-zero the valid bitmap and reset the index tracking logic.

        ``segment=(start, count)`` clears only that bitmap range, as the
        ``vidxclear`` segment mode does; the index table and element count
        register are reset in both modes (Section IV-C).
        """
        self.counters.clears += 1
        if segment is None:
            self._valid[:] = False
        else:
            start, count = segment
            self._check_range(start, count)
            self._valid[start : start + count] = False
        self._cam_index[: self._element_count] = -1
        self._cam_map.clear()
        self._element_count = 0

    # ------------------------------------------------------------------
    # Direct-mapped mode (Section III-B1)
    # ------------------------------------------------------------------
    def dm_write(self, indices, values) -> None:
        """Write ``values`` at SRAM positions ``indices``; set valid bits."""
        idx = self._check_indices(indices)
        vals = np.asarray(values, dtype=float)
        if vals.shape != idx.shape:
            raise SSPMError(
                f"indices and values must match, got {idx.shape} vs {vals.shape}"
            )
        # duplicate indices within one vector resolve in lane order, like a
        # scatter: the highest lane wins
        self._sram[idx] = vals
        self._valid[idx] = True
        self.counters.dm_writes += idx.size

    def dm_accumulate(self, indices, values, op: str = "add") -> np.ndarray:
        """Read-modify-write: ``sram[idx] = sram[idx] (op) value``.

        Unwritten entries behave as zero (valid bitmap semantics) and become
        valid afterwards.  Duplicate indices within the vector combine
        sequentially in lane order, matching the element-serial SSPM port
        pipeline.  Returns the values written back.
        """
        idx = self._check_indices(indices)
        vals = np.asarray(values, dtype=float)
        if vals.shape != idx.shape:
            raise SSPMError("indices and values must have the same shape")
        func = _OPS.get(op)
        if func is None:
            raise SSPMError(f"unknown accumulate op {op!r}")
        self.counters.dm_reads += idx.size
        self.counters.dm_writes += idx.size
        out = np.empty(idx.size, dtype=float)
        for lane in range(idx.size):  # lane order matters for duplicates
            i = int(idx[lane])
            current = self._sram[i] if self._valid[i] else 0.0
            result = func(current, float(vals[lane]))
            self._sram[i] = result
            self._valid[i] = True
            out[lane] = result
        return out

    def dm_read(self, indices) -> np.ndarray:
        """Read SRAM positions; unwritten entries return zero."""
        idx = self._check_indices(indices)
        self.counters.dm_reads += idx.size
        out = np.where(self._valid[idx], self._sram[idx], 0.0)
        return out.astype(float)

    # ------------------------------------------------------------------
    # CAM-based mode (Section III-B2)
    # ------------------------------------------------------------------
    def cam_write(self, indices, values, op: str = "store") -> None:
        """Write through the index table (Section IV-A, CAM write).

        Each application index is searched; a match updates the existing
        SRAM slot (``store`` overwrites, ``add``/``sub``/``mult``
        accumulate), a miss makes the insertion logic allocate the next
        free table/SRAM slot in order.
        """
        idx = np.asarray(indices, dtype=np.int64).ravel()
        vals = np.asarray(values, dtype=float).ravel()
        if vals.shape != idx.shape:
            raise SSPMError("indices and values must have the same shape")
        if op != "store" and op not in _OPS:
            raise SSPMError(f"unknown CAM write op {op!r}")
        for app_idx, v in zip(idx, vals):
            slot = self._cam_search(int(app_idx))
            if slot is None:
                slot = self._cam_insert(int(app_idx))
                self._sram[slot] = v if op == "store" else _OPS.get(op, _store)(0.0, v)
            else:
                if op == "store":
                    self._sram[slot] = v
                else:
                    self._sram[slot] = _OPS[op](self._sram[slot], v)
            self._valid[slot] = True
            self.counters.cam_writes += 1

    def cam_read(self, indices) -> Tuple[np.ndarray, np.ndarray]:
        """Search the index table and read matched SRAM slots.

        Returns ``(values, matched)``: unmatched indices yield 0.0 with a
        False match flag — this *is* the index-matching operation the FIVU
        exposes to the vector unit (Figure 4, step 3).
        """
        idx = np.asarray(indices, dtype=np.int64).ravel()
        values = np.zeros(idx.size, dtype=float)
        matched = np.zeros(idx.size, dtype=bool)
        for lane, app_idx in enumerate(idx):
            slot = self._cam_search(int(app_idx))
            if slot is not None:
                values[lane] = self._sram[slot]
                matched[lane] = True
                self.counters.cam_reads += 1
        return values, matched

    def cam_tracked_indices(self, offset: int, count: int) -> np.ndarray:
        """Read ``count`` consecutive tracked indices starting at ``offset``.

        This is the ``vidxmov`` index-drain used when SpMA stores the result
        row back to memory; reading past the element count yields -1.
        """
        if offset < 0 or count < 0:
            raise SSPMError(f"bad index-table window ({offset}, {count})")
        out = np.full(count, -1, dtype=np.int64)
        hi = min(offset + count, self._element_count)
        if hi > offset:
            out[: hi - offset] = self._cam_index[offset:hi]
        self.counters.cam_reads += count
        return out

    def cam_slot_values(self, offset: int, count: int) -> np.ndarray:
        """Read SRAM values of consecutive CAM slots (result-row drain)."""
        if offset < 0 or count < 0:
            raise SSPMError(f"bad slot window ({offset}, {count})")
        out = np.zeros(count, dtype=float)
        hi = min(offset + count, self._element_count)
        if hi > offset:
            out[: hi - offset] = self._sram[offset:hi]
        self.counters.cam_reads += count
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cam_search(self, app_idx: int) -> Optional[int]:
        self.counters.cam_searches += 1
        self.counters.bank_activations += self.active_banks()
        return self._cam_map.get(app_idx)

    def _cam_insert(self, app_idx: int) -> int:
        if self._element_count >= self.config.cam_entries:
            raise SSPMCapacityError(
                f"index table full ({self.config.cam_entries} entries); "
                "the working set must be tiled to fit the SSPM"
            )
        slot = self._element_count
        self._cam_index[slot] = app_idx
        self._cam_map[app_idx] = slot
        self._element_count += 1
        self.counters.cam_insertions += 1
        return slot

    def _check_indices(self, indices) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size and (idx.min() < 0 or idx.max() >= self.config.sram_entries):
            raise SSPMError(
                f"direct-mapped index out of range [0, {self.config.sram_entries})"
            )
        return idx

    def _check_range(self, start: int, count: int) -> None:
        if start < 0 or count < 0 or start + count > self.config.sram_entries:
            raise SSPMError(
                f"segment ({start}, {count}) outside "
                f"[0, {self.config.sram_entries})"
            )


def _store(_current: float, value: float) -> float:
    return value


_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mult": lambda a, b: a * b,
}
