"""Assembler, disassembler and executor for the VIA ISA extensions.

The paper adds its instructions to AVX2 (Section IV-C).  At the ISA level
an instruction names *registers*, not data, so this module provides the
register-level view that complements the data-level
:class:`~repro.via.isa.ViaInstruction`:

* :class:`AsmInstruction` — opcode + mode/dest + register numbers +
  immediates;
* :func:`assemble` / :func:`disassemble` — textual syntax, e.g.
  ``vidxblkmult.d v1, v2, idx_offset=11, offset=2048``;
* :func:`encode` / :func:`decode` — a fixed 64-bit machine encoding;
* :class:`Program` + :func:`execute_program` — run assembled code against
  a functional :class:`~repro.via.engine.ViaDevice` with a simple
  register file, which is how the ISA-level tests validate that the
  encoding carries everything the hardware needs.

64-bit encoding layout (LSB first)::

    [ 0: 8)  opcode        (8 bits)
    [ 8: 9)  mode          (0 = .d, 1 = .c)
    [ 9:10)  dest          (0 = VRF, 1 = SSPM)
    [10:15)  vsrc1 / data  (32 vector registers)
    [15:20)  vsrc2 / idx
    [20:25)  vdst (vector) or scalar destination register
    [25:41)  offset        (16-bit unsigned immediate)
    [41:47)  idx_offset    (6-bit unsigned immediate)
    [47:63)  count         (16-bit unsigned immediate)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ISAError
from repro.via.engine import ViaDevice
from repro.via.isa import ARITH_OPS, Dest, Mode, Opcode, ViaInstruction

NUM_VREGS = 32
MAX_OFFSET = (1 << 16) - 1
MAX_IDX_OFFSET = (1 << 6) - 1
MAX_COUNT = (1 << 16) - 1

_OPCODE_IDS = {op: i for i, op in enumerate(Opcode)}
_OPCODE_FROM_ID = {i: op for op, i in _OPCODE_IDS.items()}

#: which operands each opcode uses: (data_reg, idx_reg, dst_reg, count)
_OPERAND_PROFILE = {
    Opcode.VIDXLOAD: (True, True, False, False),
    Opcode.VIDXMOV: (False, False, True, True),
    Opcode.VIDXCOUNT: (False, False, True, False),
    Opcode.VIDXCLEAR: (False, False, False, True),
    Opcode.VIDXADD: (True, True, True, False),
    Opcode.VIDXSUB: (True, True, True, False),
    Opcode.VIDXMULT: (True, True, True, False),
    Opcode.VIDXBLKMULT: (True, True, False, False),
}


@dataclass(frozen=True)
class AsmInstruction:
    """One register-level VIA instruction."""

    opcode: Opcode
    mode: Optional[Mode] = None
    dest: Dest = Dest.VRF
    data_reg: int = 0
    idx_reg: int = 0
    dst_reg: int = 0
    offset: int = 0
    idx_offset: int = 0
    count: int = 0

    def __post_init__(self):
        if self.opcode not in _OPERAND_PROFILE:
            raise ISAError(f"unknown opcode {self.opcode!r}")
        for name, reg in (
            ("data_reg", self.data_reg),
            ("idx_reg", self.idx_reg),
            ("dst_reg", self.dst_reg),
        ):
            if not (0 <= reg < NUM_VREGS):
                raise ISAError(f"{name}={reg} outside v0..v{NUM_VREGS - 1}")
        if not (0 <= self.offset <= MAX_OFFSET):
            raise ISAError(f"offset={self.offset} exceeds 16-bit immediate")
        if not (0 <= self.idx_offset <= MAX_IDX_OFFSET):
            raise ISAError(f"idx_offset={self.idx_offset} exceeds 6 bits")
        if not (0 <= self.count <= MAX_COUNT):
            raise ISAError(f"count={self.count} exceeds 16-bit immediate")
        if self.opcode is Opcode.VIDXBLKMULT:
            if self.mode is not Mode.DIRECT:
                raise ISAError("vidxblkmult only supports .d mode")
            if self.idx_offset == 0:
                raise ISAError("vidxblkmult requires idx_offset > 0")
        if self.opcode in (Opcode.VIDXMOV,) and self.count == 0:
            raise ISAError("vidxmov requires count > 0")
        moded = self.opcode in (
            Opcode.VIDXLOAD,
            Opcode.VIDXADD,
            Opcode.VIDXSUB,
            Opcode.VIDXMULT,
            Opcode.VIDXBLKMULT,
        )
        if moded and self.mode is None:
            raise ISAError(f"{self.opcode.value} requires a .d/.c suffix")
        if not moded and self.mode is not None:
            raise ISAError(f"{self.opcode.value} takes no mode suffix")

    @property
    def mnemonic(self) -> str:
        if self.mode is not None:
            return f"{self.opcode.value}.{self.mode.value}"
        return self.opcode.value

    def render(self) -> str:
        """Assembly text, parseable by :func:`assemble`."""
        uses_data, uses_idx, uses_dst, uses_count = _OPERAND_PROFILE[self.opcode]
        parts: List[str] = []
        if uses_dst and self.dest is Dest.VRF:
            parts.append(f"v{self.dst_reg}")
        if uses_data:
            parts.append(f"v{self.data_reg}")
        if uses_idx:
            parts.append(f"v{self.idx_reg}")
        if self.opcode in ARITH_OPS and self.dest is Dest.SSPM:
            parts.append("sspm")
        if uses_count and self.count:
            parts.append(f"count={self.count}")
        if self.opcode is Opcode.VIDXBLKMULT:
            parts.append(f"idx_offset={self.idx_offset}")
        if self.offset:
            parts.append(f"offset={self.offset}")
        return f"{self.mnemonic} " + ", ".join(parts) if parts else self.mnemonic


# ---------------------------------------------------------------------------
# Binary encoding
# ---------------------------------------------------------------------------
def encode(instr: AsmInstruction) -> int:
    """Pack an instruction into its 64-bit machine word."""
    word = _OPCODE_IDS[instr.opcode]
    word |= (1 if instr.mode is Mode.CAM else 0) << 8
    word |= (1 if instr.dest is Dest.SSPM else 0) << 9
    word |= instr.data_reg << 10
    word |= instr.idx_reg << 15
    word |= instr.dst_reg << 20
    word |= instr.offset << 25
    word |= instr.idx_offset << 41
    word |= instr.count << 47
    return word


def decode(word: int) -> AsmInstruction:
    """Unpack a 64-bit machine word; raises :class:`ISAError` if invalid."""
    if not (0 <= word < 1 << 63):
        raise ISAError(f"machine word out of range: {word:#x}")
    opcode_id = word & 0xFF
    if opcode_id not in _OPCODE_FROM_ID:
        raise ISAError(f"unknown opcode id {opcode_id}")
    opcode = _OPCODE_FROM_ID[opcode_id]
    moded = opcode in (
        Opcode.VIDXLOAD,
        Opcode.VIDXADD,
        Opcode.VIDXSUB,
        Opcode.VIDXMULT,
        Opcode.VIDXBLKMULT,
    )
    mode = (Mode.CAM if word >> 8 & 1 else Mode.DIRECT) if moded else None
    return AsmInstruction(
        opcode=opcode,
        mode=mode,
        dest=Dest.SSPM if word >> 9 & 1 else Dest.VRF,
        data_reg=word >> 10 & 0x1F,
        idx_reg=word >> 15 & 0x1F,
        dst_reg=word >> 20 & 0x1F,
        offset=word >> 25 & 0xFFFF,
        idx_offset=word >> 41 & 0x3F,
        count=word >> 47 & 0xFFFF,
    )


def disassemble_word(word: int) -> str:
    """Decode a machine word straight to its assembly text."""
    return decode(word).render()


# ---------------------------------------------------------------------------
# Textual assembly
# ---------------------------------------------------------------------------
_REG_RE = re.compile(r"^v(\d+)$")
_KW_RE = re.compile(r"^(offset|idx_offset|count)=(\d+)$")


def assemble(text: str) -> AsmInstruction:
    """Parse one line of VIA assembly.

    Syntax: ``mnemonic[.d|.c] [vDST,] [vDATA, vIDX][, sspm][, key=value...]``
    """
    stripped = text.split("#", 1)[0].strip()
    if not stripped:
        raise ISAError("empty assembly line")
    head, _sep, rest = stripped.partition(" ")
    mnemonic = head.lower()
    mode: Optional[Mode] = None
    if "." in mnemonic:
        base, suffix = mnemonic.rsplit(".", 1)
        try:
            mode = Mode(suffix)
        except ValueError:
            raise ISAError(f"unknown mode suffix {suffix!r}") from None
        mnemonic = base
    try:
        opcode = Opcode(mnemonic)
    except ValueError:
        raise ISAError(f"unknown mnemonic {mnemonic!r}") from None

    regs: List[int] = []
    dest = Dest.VRF
    kwargs: Dict[str, int] = {}
    for token in filter(None, (t.strip() for t in rest.split(","))):
        m = _REG_RE.match(token)
        if m:
            regs.append(int(m.group(1)))
            continue
        if token.lower() == "sspm":
            dest = Dest.SSPM
            continue
        m = _KW_RE.match(token)
        if m:
            kwargs[m.group(1)] = int(m.group(2))
            continue
        raise ISAError(f"unparseable operand {token!r}")

    uses_data, uses_idx, uses_dst, _uses_count = _OPERAND_PROFILE[opcode]
    expected = int(uses_dst and dest is Dest.VRF) + int(uses_data) + int(uses_idx)
    # SSPM-destination arithmetic drops the vDST operand
    fields: Dict[str, int] = {}
    it = iter(regs)
    try:
        if uses_dst and dest is Dest.VRF:
            fields["dst_reg"] = next(it)
        if uses_data:
            fields["data_reg"] = next(it)
        if uses_idx:
            fields["idx_reg"] = next(it)
    except StopIteration:
        raise ISAError(
            f"{mnemonic} expects {expected} register operand(s), got {len(regs)}"
        ) from None
    if list(it):
        raise ISAError(f"too many register operands for {mnemonic}")
    return AsmInstruction(opcode=opcode, mode=mode, dest=dest, **fields, **kwargs)


# ---------------------------------------------------------------------------
# Programs and execution
# ---------------------------------------------------------------------------
@dataclass
class Program:
    """A sequence of VIA instructions with binary round-tripping."""

    instructions: List[AsmInstruction] = field(default_factory=list)

    @classmethod
    def parse(cls, source: str) -> "Program":
        """Assemble a multi-line program (``#`` comments allowed)."""
        instrs = []
        for line in source.splitlines():
            code = line.split("#", 1)[0].strip()
            if code:
                instrs.append(assemble(code))
        return cls(instrs)

    def to_words(self) -> List[int]:
        return [encode(i) for i in self.instructions]

    @classmethod
    def from_words(cls, words) -> "Program":
        return cls([decode(int(w)) for w in words])

    def render(self) -> str:
        return "\n".join(i.render() for i in self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


class RegisterFile:
    """32 vector registers plus a scalar view (element 0)."""

    def __init__(self, vl: int):
        self.vl = vl
        self._regs = np.zeros((NUM_VREGS, vl), dtype=float)

    def read(self, reg: int) -> np.ndarray:
        return self._regs[reg].copy()

    def write(self, reg: int, values) -> None:
        vals = np.asarray(values, dtype=float).ravel()
        if vals.size > self.vl:
            raise ISAError(f"value wider than VL={self.vl}")
        self._regs[reg] = 0.0
        self._regs[reg, : vals.size] = vals

    def scalar(self, reg: int) -> float:
        return float(self._regs[reg, 0])


def execute_program(
    program: Program, device: ViaDevice, regs: Optional[RegisterFile] = None
) -> RegisterFile:
    """Run an assembled program against a functional VIA device.

    Returns the final register file.  Vector register contents are bound
    to the data/idx operands of each instruction exactly as the hardware
    would read them from the VRF.
    """
    regs = regs or RegisterFile(device.vl)
    for instr in program.instructions:
        result = device.execute(_bind(instr, regs))
        if instr.opcode is Opcode.VIDXCOUNT:
            regs.write(instr.dst_reg, [float(result)])
        elif instr.opcode is Opcode.VIDXMOV:
            idx, vals = result
            regs.write(instr.dst_reg, vals)
        elif instr.opcode in ARITH_OPS and instr.dest is Dest.VRF:
            values = result[0] if isinstance(result, tuple) else result
            regs.write(instr.dst_reg, values)
    return regs


def _bind(instr: AsmInstruction, regs: RegisterFile) -> ViaInstruction:
    """Materialize a data-level instruction from the register file."""
    op = instr.opcode
    if op is Opcode.VIDXCLEAR:
        return ViaInstruction.clear()
    if op is Opcode.VIDXCOUNT:
        return ViaInstruction.count_()
    if op is Opcode.VIDXMOV:
        return ViaInstruction.mov(instr.offset, min(instr.count, regs.vl))
    data = regs.read(instr.data_reg)
    idx = regs.read(instr.idx_reg).astype(np.int64)
    if op is Opcode.VIDXLOAD:
        return ViaInstruction.load(data, idx, instr.mode)
    if op is Opcode.VIDXBLKMULT:
        return ViaInstruction.blkmult(data, idx, instr.idx_offset, instr.offset)
    return ViaInstruction.arith(
        op, data, idx, instr.mode, dest=instr.dest, offset=instr.offset
    )
