"""The VIA device: functional + timed execution of VIA instructions.

:class:`ViaDevice` bundles the SSPM with the FIVU timing model and plugs
into a :class:`repro.sim.core.Core`.  Kernels talk to it through
assembly-like helpers (``vidxload``, ``vidxadd`` ...) that chunk arbitrary
arrays into VL-sized instructions, execute each functionally against the
SSPM, and report the SSPM work to the core's cycle model.

Operand-order conventions for the arithmetic instructions (Section IV-C:
"These instructions always use data placed in the VRF (Data) to compute
with values stored in the SSPM"):

* destination **VRF**:   ``result = data (op) sspm[idx]``
  (``vidxsub`` computes ``data - sspm[idx]``);
* destination **SSPM**:  ``sspm[idx + offset] = sspm[idx + offset] (op) data``
  — an in-scratchpad accumulation, the pattern SpMV partial sums and
  histograms rely on (``vidxsub`` subtracts the VRF data).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ISAError
from repro.via import area
from repro.via.config import DEFAULT_VIA, ViaConfig
from repro.via.fivu import fivu_timing
from repro.via.isa import ARITH_OPS, Dest, Mode, Opcode, ViaInstruction
from repro.via.sspm import SSPM


class ViaDevice:
    """VIA hardware instance: SSPM + FIVU attached to a simulated core.

    The device is usable standalone (functional mode, e.g. in unit tests);
    when attached to a core every executed instruction also feeds the
    timing and energy accounting.
    """

    def __init__(self, config: ViaConfig = DEFAULT_VIA):
        self.config = config
        self.sspm = SSPM(config)
        self._core = None
        self.instructions_executed = 0
        #: set to the machine's 32-bit VL by kernels operating on 4-byte
        #: elements (the SSPM's native block size) — doubles lanes per op
        self.vl_override: Optional[int] = None

    # ------------------------------------------------------------------
    def attach(self, core) -> None:
        """Called by :class:`repro.sim.core.Core` when the device is fitted."""
        self._core = core

    @property
    def vl(self) -> int:
        """Vector length in elements (from the attached machine, or 4)."""
        if self.vl_override is not None:
            return self.vl_override
        return self._core.machine.vl if self._core is not None else 4

    @property
    def leakage_mw(self) -> float:
        """Static power the device adds to the core (Table II model)."""
        return area.leakage_mw(self.config)

    @property
    def area_mm2(self) -> float:
        """Silicon area of the device (Table II model)."""
        return area.area_mm2(self.config)

    # ------------------------------------------------------------------
    # Instruction execution
    # ------------------------------------------------------------------
    def execute(self, instr: ViaInstruction):
        """Execute one VIA instruction functionally and account its timing.

        Returns the instruction's architectural result: an ndarray for
        VRF-destination arithmetic, ``(values, matched)`` for CAM reads,
        ``(indices, values)`` for ``vidxmov``, an int for ``vidxcount``,
        ``None`` for pure SSPM writes.
        """
        if instr.num_elements > self.vl:
            raise ISAError(
                f"{instr.mnemonic} operates on {instr.num_elements} elements "
                f"but VL is {self.vl}; chunk the operands"
            )
        result = self._dispatch(instr)
        timing = fivu_timing(instr)
        self.instructions_executed += 1
        if self._core is not None:
            # pass the FIVU profile, not pre-computed port cycles: the op is
            # priced against the VIA config of whichever core replays it
            self._core.record_via_op(
                sspm_elements=timing.sspm_elements,
                cam_searches=timing.cam_searches,
                port_passes=timing.port_passes,
            )
        return result

    def _dispatch(self, instr: ViaInstruction):
        op = instr.opcode
        if op is Opcode.VIDXCLEAR:
            self.sspm.clear(segment=instr.segment)
            return None
        if op is Opcode.VIDXCOUNT:
            return self.sspm.element_count
        if op is Opcode.VIDXMOV:
            idx = self.sspm.cam_tracked_indices(instr.offset, instr.count)
            vals = self.sspm.cam_slot_values(instr.offset, instr.count)
            return idx, vals
        if op is Opcode.VIDXLOAD:
            if instr.mode is Mode.DIRECT:
                self.sspm.dm_write(instr.idx, instr.data)
            else:
                self.sspm.cam_write(instr.idx, instr.data, op="store")
            return None
        if op in ARITH_OPS:
            return self._arith(instr, ARITH_OPS[op])
        if op is Opcode.VIDXBLKMULT:
            return self._blkmult(instr)
        raise ISAError(f"unimplemented opcode {op}")

    def _arith(self, instr: ViaInstruction, op_name: str):
        data = np.asarray(instr.data, dtype=float)
        idx = np.asarray(instr.idx, dtype=np.int64)
        if instr.dest is Dest.VRF:
            if instr.mode is Mode.DIRECT:
                stored = self.sspm.dm_read(idx + instr.offset)
                matched = None
            else:
                stored, matched = self.sspm.cam_read(idx + instr.offset)
            result = _vrf_combine(op_name, data, stored)
            if matched is not None:
                return result, matched
            return result
        # destination SSPM: in-scratchpad accumulation at idx + offset
        out_idx = idx + instr.offset
        if instr.mode is Mode.DIRECT:
            self.sspm.dm_accumulate(out_idx, data, op=op_name)
        else:
            self.sspm.cam_write(out_idx, data, op=op_name)
        return None

    def _blkmult(self, instr: ViaInstruction):
        """Block multiply-accumulate (Section IV-C, ``vidxblkmult``)."""
        rows = instr.idx >> instr.idx_offset
        cols = instr.idx & ((1 << instr.idx_offset) - 1)
        vec = self.sspm.dm_read(cols)
        prod = np.asarray(instr.data, dtype=float) * vec
        self.sspm.dm_accumulate(instr.offset + rows, prod, op="add")
        return None

    # ------------------------------------------------------------------
    # Assembly-like helpers (auto-chunking to VL)
    # ------------------------------------------------------------------
    def vidxclear(self, segment: Optional[Tuple[int, int]] = None) -> None:
        """Reset the SSPM (``vidxclear``)."""
        self.execute(ViaInstruction.clear(segment))

    def vidxcount(self) -> int:
        """Read the element count register (``vidxcount``)."""
        return self.execute(ViaInstruction.count_())

    def vidxload(self, data, idx, mode: Mode = Mode.DIRECT) -> None:
        """Store VRF data into the SSPM, chunked to VL (``vidxload.X``)."""
        for d, i in _chunks(data, idx, self.vl):
            self.execute(ViaInstruction.load(d, i, mode))

    def vidxadd(self, data, idx, *, mode=Mode.DIRECT, dest=Dest.VRF, offset=0):
        return self._arith_helper(Opcode.VIDXADD, data, idx, mode, dest, offset)

    def vidxsub(self, data, idx, *, mode=Mode.DIRECT, dest=Dest.VRF, offset=0):
        return self._arith_helper(Opcode.VIDXSUB, data, idx, mode, dest, offset)

    def vidxmult(self, data, idx, *, mode=Mode.DIRECT, dest=Dest.VRF, offset=0):
        return self._arith_helper(Opcode.VIDXMULT, data, idx, mode, dest, offset)

    def vidxblkmult(self, data, idx, *, idx_offset: int, offset: int) -> None:
        """Block multiply-accumulate, chunked to VL (``vidxblkmult.d``)."""
        for d, i in _chunks(data, idx, self.vl):
            self.execute(ViaInstruction.blkmult(d, i, idx_offset, offset))

    def vidxmov(self, offset: int, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Drain ``count`` CAM entries starting at ``offset`` (``vidxmov``)."""
        idx_parts, val_parts = [], []
        done = 0
        while done < count:
            take = min(self.vl, count - done)
            i, v = self.execute(ViaInstruction.mov(offset + done, take))
            idx_parts.append(i)
            val_parts.append(v)
            done += take
        return np.concatenate(idx_parts), np.concatenate(val_parts)

    def drain(self) -> Tuple[np.ndarray, np.ndarray]:
        """Read back every tracked (index, value) pair: count + mov loop."""
        n = self.vidxcount()
        if n == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=float)
        return self.vidxmov(0, n)

    # ------------------------------------------------------------------
    # Bulk timing-only accounting
    # ------------------------------------------------------------------
    def account_bulk(
        self,
        opcode: Opcode,
        total_elements: int,
        *,
        mode: Mode = Mode.DIRECT,
        dest: Dest = Dest.VRF,
    ) -> None:
        """Record the timing of many identical VIA instructions at once.

        Some kernels (inner-product SpMM sweeps over every (row, column)
        pair) would need millions of functional SSPM calls per matrix; the
        semantics are identical across instructions, so the harness computes
        the functional result in numpy and accounts the instructions here.
        The per-instruction timing is the same FIVU model used by
        :meth:`execute` — one instruction per VL elements.

        Only vector-operand opcodes make sense in bulk.
        """
        if total_elements <= 0:
            return
        if opcode in (Opcode.VIDXCOUNT, Opcode.VIDXCLEAR):
            raise ISAError(f"{opcode.value} carries no vector elements")
        vl = self.vl
        n_instr = -(-int(total_elements) // vl)
        proto = self._prototype(opcode, mode, dest, min(vl, total_elements))
        timing = fivu_timing(proto)
        self.instructions_executed += n_instr
        # mirror the SSPM event counters the functional path would produce
        cnt = self.sspm.counters
        if mode is Mode.CAM:
            cnt.cam_searches += total_elements
            cnt.bank_activations += total_elements * self.sspm.active_banks()
            cnt.cam_reads += total_elements
        elif dest is Dest.SSPM or opcode is Opcode.VIDXBLKMULT:
            cnt.dm_reads += total_elements
            cnt.dm_writes += total_elements
        else:
            cnt.dm_reads += total_elements
        if self._core is not None:
            self._core.record_via_op(
                sspm_elements=timing.sspm_elements,
                cam_searches=timing.cam_searches,
                port_passes=timing.port_passes,
                count=n_instr,
            )

    def _prototype(self, opcode, mode, dest, k) -> ViaInstruction:
        data = np.zeros(k)
        idx = np.zeros(k, dtype=np.int64)
        if opcode is Opcode.VIDXBLKMULT:
            return ViaInstruction.blkmult(data, idx, 1, 0)
        if opcode is Opcode.VIDXLOAD:
            return ViaInstruction.load(data, idx, mode)
        if opcode in ARITH_OPS:
            return ViaInstruction.arith(opcode, data, idx, mode, dest=dest)
        if opcode is Opcode.VIDXMOV:
            return ViaInstruction.mov(0, k)
        raise ISAError(f"cannot build bulk prototype for {opcode}")

    def _arith_helper(self, op, data, idx, mode, dest, offset):
        outs, masks = [], []
        for d, i in _chunks(data, idx, self.vl):
            res = self.execute(
                ViaInstruction.arith(op, d, i, mode, dest=dest, offset=offset)
            )
            if res is None:
                continue
            if isinstance(res, tuple):
                outs.append(res[0])
                masks.append(res[1])
            else:
                outs.append(res)
        if not outs:
            return None
        values = np.concatenate(outs)
        if masks:
            return values, np.concatenate(masks)
        return values


def _vrf_combine(op_name: str, data: np.ndarray, stored: np.ndarray) -> np.ndarray:
    if op_name == "add":
        return data + stored
    if op_name == "sub":
        return data - stored
    return data * stored


def _chunks(data, idx, vl: int):
    """Split (data, idx) into VL-sized instruction operands."""
    data = np.asarray(data, dtype=float).ravel()
    idx = np.asarray(idx, dtype=np.int64).ravel()
    if data.size != idx.size:
        raise ISAError(f"data ({data.size}) and idx ({idx.size}) must match")
    for lo in range(0, data.size, vl):
        yield data[lo : lo + vl], idx[lo : lo + vl]
