"""The Vector Indexed Architecture (VIA) — the paper's core contribution.

* :class:`SSPM` — the smart scratchpad (SRAM + valid bitmap + CAM index
  tracking logic), Section IV-A;
* :mod:`repro.via.fivu` — the Fused Indexed Vector Unit timing model,
  Section IV-B;
* :mod:`repro.via.isa` — the eight ISA extensions, Section IV-C;
* :class:`ViaDevice` — functional + timed execution engine that plugs the
  SSPM/FIVU into the simulated out-of-order core (commit-time execution,
  Section IV-E);
* :mod:`repro.via.area` — Table II area/leakage model (RTL-synthesis
  substitute);
* :mod:`repro.via.energy` — geometry-aware dynamic-energy helpers.
"""

from repro.via.area import (
    PUBLISHED_SYNTHESIS,
    area_mm2,
    chip_area_overhead,
    core_area_overhead,
    leakage_mw,
    table2,
)
from repro.via.config import (
    DEFAULT_VIA,
    VIA_4_2P,
    VIA_4_4P,
    VIA_8_2P,
    VIA_8_4P,
    VIA_16_2P,
    VIA_16_4P,
    ViaConfig,
    all_configs,
    dse_configs,
)
from repro.via.assembler import (
    AsmInstruction,
    Program,
    RegisterFile,
    assemble,
    decode,
    disassemble_word,
    encode,
    execute_program,
)
from repro.via.engine import ViaDevice
from repro.via.energy import ViaEnergyBreakdown, via_energy
from repro.via.fivu import FivuTiming, fivu_timing
from repro.via.isa import Dest, Mode, Opcode, ViaInstruction
from repro.via.sspm import SSPM, SSPMCounters

__all__ = [
    "PUBLISHED_SYNTHESIS",
    "area_mm2",
    "chip_area_overhead",
    "core_area_overhead",
    "leakage_mw",
    "table2",
    "DEFAULT_VIA",
    "VIA_4_2P",
    "VIA_4_4P",
    "VIA_8_2P",
    "VIA_8_4P",
    "VIA_16_2P",
    "VIA_16_4P",
    "ViaConfig",
    "all_configs",
    "dse_configs",
    "ViaDevice",
    "AsmInstruction",
    "Program",
    "RegisterFile",
    "assemble",
    "decode",
    "disassemble_word",
    "encode",
    "execute_program",
    "ViaEnergyBreakdown",
    "via_energy",
    "FivuTiming",
    "fivu_timing",
    "Dest",
    "Mode",
    "Opcode",
    "ViaInstruction",
    "SSPM",
    "SSPMCounters",
]
