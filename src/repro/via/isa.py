"""VIA ISA extensions — paper Section IV-C.

Eight new instructions extend an AVX2-class vector ISA.  All of them are
pure register operations (their memory operands live in the VRF), which is
what lets VIA execute them at commit time without renaming the SSPM
(Section IV-E).

===============  =====================================================
Instruction      Semantics
===============  =====================================================
``vidxload.X``   VRF -> SSPM store.  ``.d``: ``sspm[idx] = data``;
                 ``.c``: CAM insert/update under application index.
``vidxmov``      Drain ``count`` consecutive index-table entries and
                 their SRAM values to the VRF, starting at ``offset``.
``vidxcount``    Element count register -> scalar destination.
``vidxclear``    Flash-zero the valid bitmap (full or segment) and reset
                 the index tracking logic.
``vidxadd.X``    ``data (+) sspm[idx]`` with destination VRF, or SSPM at
``vidxsub.X``    ``idx + offset``; ``.d`` addresses the SRAM directly,
``vidxmult.X``   ``.c`` goes through the index table (index matching).
``vidxblkmult``  Block multiply-accumulate for merged-index block
                 formats (CSB): split ``idx`` at bit ``idx_offset`` into
                 (row, col); ``sspm[offset + row] += data * sspm[col]``.
                 Destination is always the SSPM.
===============  =====================================================

Instruction objects are validated at construction (:class:`ISAError` on
malformed operands) and executed by :class:`repro.via.engine.ViaDevice`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ISAError


class Opcode(enum.Enum):
    """The eight VIA instruction opcodes."""

    VIDXLOAD = "vidxload"
    VIDXMOV = "vidxmov"
    VIDXCOUNT = "vidxcount"
    VIDXCLEAR = "vidxclear"
    VIDXADD = "vidxadd"
    VIDXSUB = "vidxsub"
    VIDXMULT = "vidxmult"
    VIDXBLKMULT = "vidxblkmult"


class Mode(enum.Enum):
    """SSPM addressing mode suffix (``.d`` / ``.c``)."""

    DIRECT = "d"
    CAM = "c"


class Dest(enum.Enum):
    """Writeback destination selected by the FIVU post-processing stage."""

    VRF = "vrf"
    SSPM = "sspm"


#: opcodes performing arithmetic, mapped to the SSPM accumulate op name
ARITH_OPS: Dict[Opcode, str] = {
    Opcode.VIDXADD: "add",
    Opcode.VIDXSUB: "sub",
    Opcode.VIDXMULT: "mult",
}

#: opcodes that accept a mode suffix
MODED_OPCODES = {
    Opcode.VIDXLOAD,
    Opcode.VIDXADD,
    Opcode.VIDXSUB,
    Opcode.VIDXMULT,
    Opcode.VIDXBLKMULT,
}


@dataclass(frozen=True)
class ViaInstruction:
    """One decoded VIA instruction.

    Vector operands (``data``, ``idx``) hold at most VL elements — the
    engine chunks longer arrays into multiple instructions, exactly as a
    compiler would emit one instruction per vector register.
    """

    opcode: Opcode
    mode: Optional[Mode] = None
    data: Optional[np.ndarray] = None
    idx: Optional[np.ndarray] = None
    dest: Dest = Dest.VRF
    offset: int = 0
    idx_offset: int = 0
    count: int = 0
    segment: Optional[Tuple[int, int]] = field(default=None)

    def __post_init__(self):
        self._validate()

    @property
    def mnemonic(self) -> str:
        """Assembly-style name, e.g. ``vidxmult.c``."""
        if self.mode is not None:
            return f"{self.opcode.value}.{self.mode.value}"
        return self.opcode.value

    @property
    def num_elements(self) -> int:
        """Vector elements the instruction operates on."""
        if self.idx is not None:
            return int(self.idx.size)
        if self.opcode is Opcode.VIDXMOV:
            return int(self.count)
        return 0

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        op = self.opcode
        if op in MODED_OPCODES:
            if self.mode is None:
                raise ISAError(f"{op.value} requires a .d or .c mode suffix")
        elif self.mode is not None:
            raise ISAError(f"{op.value} does not take a mode suffix")

        if op is Opcode.VIDXBLKMULT and self.mode is not Mode.DIRECT:
            raise ISAError("vidxblkmult only supports direct-mapped mode")
        if op is Opcode.VIDXBLKMULT and self.dest is not Dest.SSPM:
            raise ISAError("vidxblkmult always writes to the SSPM")
        if op is Opcode.VIDXBLKMULT and self.idx_offset <= 0:
            raise ISAError("vidxblkmult requires a positive idx_offset")

        needs_vectors = op in (
            Opcode.VIDXLOAD,
            Opcode.VIDXADD,
            Opcode.VIDXSUB,
            Opcode.VIDXMULT,
            Opcode.VIDXBLKMULT,
        )
        if needs_vectors:
            if self.data is None or self.idx is None:
                raise ISAError(f"{self.mnemonic} requires data and idx operands")
            if self.data.shape != self.idx.shape:
                raise ISAError(
                    f"{self.mnemonic}: data {self.data.shape} and idx "
                    f"{self.idx.shape} must match"
                )
        else:
            if self.data is not None or self.idx is not None:
                raise ISAError(f"{self.mnemonic} takes no vector operands")

        if op is Opcode.VIDXMOV and self.count <= 0:
            raise ISAError("vidxmov requires a positive count")
        if op is Opcode.VIDXLOAD and self.dest is not Dest.VRF:
            raise ISAError("vidxload has no writeback destination operand")
        if self.segment is not None and op is not Opcode.VIDXCLEAR:
            raise ISAError(f"{self.mnemonic} takes no segment operand")

    # ------------------------------------------------------------------
    # Assembly-style constructors
    # ------------------------------------------------------------------
    @staticmethod
    def load(data, idx, mode: Mode = Mode.DIRECT) -> "ViaInstruction":
        return ViaInstruction(
            Opcode.VIDXLOAD,
            mode=mode,
            data=np.asarray(data, dtype=float),
            idx=np.asarray(idx, dtype=np.int64),
        )

    @staticmethod
    def mov(offset: int, count: int) -> "ViaInstruction":
        return ViaInstruction(Opcode.VIDXMOV, offset=offset, count=count)

    @staticmethod
    def count_() -> "ViaInstruction":
        return ViaInstruction(Opcode.VIDXCOUNT)

    @staticmethod
    def clear(segment: Optional[Tuple[int, int]] = None) -> "ViaInstruction":
        return ViaInstruction(Opcode.VIDXCLEAR, segment=segment)

    @staticmethod
    def arith(
        op: Opcode,
        data,
        idx,
        mode: Mode,
        dest: Dest = Dest.VRF,
        offset: int = 0,
    ) -> "ViaInstruction":
        if op not in ARITH_OPS:
            raise ISAError(f"{op} is not an arithmetic VIA opcode")
        return ViaInstruction(
            op,
            mode=mode,
            data=np.asarray(data, dtype=float),
            idx=np.asarray(idx, dtype=np.int64),
            dest=dest,
            offset=offset,
        )

    @staticmethod
    def blkmult(data, idx, idx_offset: int, offset: int) -> "ViaInstruction":
        return ViaInstruction(
            Opcode.VIDXBLKMULT,
            mode=Mode.DIRECT,
            data=np.asarray(data, dtype=float),
            idx=np.asarray(idx, dtype=np.int64),
            dest=Dest.SSPM,
            offset=offset,
            idx_offset=idx_offset,
        )
