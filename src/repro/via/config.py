"""VIA hardware configuration (paper Table I, VIA rows, and Section VI).

The design-space exploration sizes two SSPM knobs:

* **memory size** — 4, 8 or 16 KB of SRAM (plus a CAM index table sized at
  a quarter of the SRAM, per the published ``8 KB, CAM:2KB`` data point);
* **ports** — 2 or 4, which set how many SSPM elements a VIA instruction
  can move per cycle.

Configurations are named as in the paper: ``16_2p`` means 16 KB, 2 ports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError
from repro.sim import calibration as cal

#: index-table bank granularity for clock gating (Section IV-A, Fig. 6)
CAM_BANK_ENTRIES = 8


@dataclass(frozen=True)
class ViaConfig:
    """Geometry of one VIA hardware configuration."""

    sram_kb: int
    ports: int

    def __post_init__(self):
        if self.sram_kb <= 0:
            raise ConfigError(f"sram_kb must be positive, got {self.sram_kb}")
        if self.ports <= 0:
            raise ConfigError(f"ports must be positive, got {self.ports}")

    @property
    def name(self) -> str:
        """Paper-style configuration name, e.g. ``16_2p``."""
        return f"{self.sram_kb}_{self.ports}p"

    @property
    def cam_kb(self) -> int:
        """Index-table size: a quarter of the SRAM (published 8 KB point)."""
        return max(1, self.sram_kb // 4)

    @property
    def sram_entries(self) -> int:
        """SRAM capacity in elements (four-byte blocks, Section IV-A)."""
        return self.sram_kb * 1024 // cal.SSPM_ELEMENT_BYTES

    @property
    def cam_entries(self) -> int:
        """Index-table capacity in tracked indices."""
        return self.cam_kb * 1024 // cal.SSPM_ELEMENT_BYTES

    @property
    def cam_banks(self) -> int:
        """Number of 8-entry banks the index table is split into."""
        return -(-self.cam_entries // CAM_BANK_ENTRIES)

    @property
    def csb_block_size(self) -> int:
        """CSB block edge tuned to half the SSPM capacity (Section V-B).

        Half the scratchpad holds the input-vector chunk of the current
        block column; the other half accumulates the output-vector chunk.
        """
        return self.sram_entries // 2


VIA_4_2P = ViaConfig(4, 2)
VIA_4_4P = ViaConfig(4, 4)
VIA_8_2P = ViaConfig(8, 2)
VIA_8_4P = ViaConfig(8, 4)
VIA_16_2P = ViaConfig(16, 2)
VIA_16_4P = ViaConfig(16, 4)

#: the configuration the paper selects after the DSE (Section VI-B)
DEFAULT_VIA = VIA_16_2P


def dse_configs() -> List[ViaConfig]:
    """The four configurations swept in Figure 9."""
    return [VIA_4_2P, VIA_4_4P, VIA_16_2P, VIA_16_4P]


def all_configs() -> List[ViaConfig]:
    """Every synthesized configuration (Table II plus the 8 KB prose points)."""
    return [VIA_4_2P, VIA_4_4P, VIA_8_2P, VIA_8_4P, VIA_16_2P, VIA_16_4P]
