"""VIA-side energy accounting helpers (McPAT/CACTI substitute).

The core-level energy model (:meth:`repro.sim.core.Core.finalize`) already
folds SSPM and CAM event energies into every kernel result.  This module
adds a finer, geometry-aware view used by reports: per-event energies that
scale with the configured SRAM size (CACTI-style ``sqrt(capacity)`` word
line/bit line scaling) and with the number of *active* CAM banks (the
clock-gating optimization of Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import calibration as cal
from repro.via.config import ViaConfig
from repro.via.sspm import SSPMCounters

#: reference geometry the flat calibration energies correspond to
_REF_SRAM_KB = 16.0
_REF_BANKS = 8.0


def sram_access_energy_pj(config: ViaConfig) -> float:
    """Per-access SRAM energy, scaled with sqrt of capacity (CACTI-like)."""
    scale = (config.sram_kb / _REF_SRAM_KB) ** 0.5
    return cal.ENERGY_PJ["sspm_access"] * scale


def cam_search_energy_pj(config: ViaConfig, active_banks: int) -> float:
    """Per-search CAM energy: only non-gated banks burn compare energy."""
    banks = max(1, min(active_banks, config.cam_banks))
    return cal.ENERGY_PJ["cam_search"] * banks / _REF_BANKS


@dataclass(frozen=True)
class ViaEnergyBreakdown:
    """Dynamic energy of the VIA device for one kernel run (picojoules)."""

    sram_pj: float
    cam_pj: float

    @property
    def total_pj(self) -> float:
        return self.sram_pj + self.cam_pj


def via_energy(config: ViaConfig, counters: SSPMCounters) -> ViaEnergyBreakdown:
    """Dynamic VIA energy from the SSPM's own event counters.

    ``bank_activations`` already accumulates the number of active banks at
    every search, so the CAM term uses it directly instead of an average.
    """
    sram_events = (
        counters.dm_reads
        + counters.dm_writes
        + counters.cam_reads
        + counters.cam_writes
    )
    sram_pj = sram_events * sram_access_energy_pj(config)
    cam_pj = (
        counters.bank_activations
        * cal.ENERGY_PJ["cam_search"]
        / _REF_BANKS
    )
    return ViaEnergyBreakdown(sram_pj=sram_pj, cam_pj=cam_pj)
