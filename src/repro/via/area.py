"""Area and leakage model — RTL-synthesis substitute (Table II).

The paper synthesizes the SSPM with Cadence Genus on a commercial 22 nm
library at 2 GHz and publishes six (area, leakage) points: the four Table II
configurations plus two 8 KB points in prose.  We reproduce those numbers
with a published-anchor table, and interpolate unseen geometries with a
power-law fit

    ``area ~ a * sram_kb^p * ports^q``

whose exponents are fitted to the anchors (multi-porting via the Live Value
Table technique scales area sub-linearly in port count; SRAM+CAM scale
slightly super-linearly in capacity because the index table and insertion
logic grow with it).

The model also reproduces the paper's chip-level comparisons: VIA's 16 KB
configurations add about 5 % (4 ports) / 3 % (2 ports) of a 22 nm Haswell
core's area, i.e. roughly 1.5 % / 1 % of the whole chip.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.via.config import ViaConfig

#: published synthesis results: (sram_kb, ports) -> (area mm^2, leakage mW)
PUBLISHED_SYNTHESIS: Dict[Tuple[int, int], Tuple[float, float]] = {
    (16, 4): (0.827, 0.69),
    (16, 2): (0.515, 0.50),
    (8, 4): (0.43, 0.39),
    (8, 2): (0.29, 0.28),
    (4, 4): (0.180, 0.22),
    (4, 2): (0.118, 0.14),
}

#: 22 nm Haswell reference areas used for the paper's percentage claims
HASWELL_CORE_AREA_MM2 = 17.0
HASWELL_CHIP_AREA_MM2 = 57.0


def _fit_power_law(values_index: int) -> Tuple[float, float, float]:
    """Least-squares fit of ``log v = log a + p log kb + q log ports``."""
    rows, targets = [], []
    for (kb, ports), vals in PUBLISHED_SYNTHESIS.items():
        rows.append([1.0, np.log(kb), np.log(ports)])
        targets.append(np.log(vals[values_index]))
    coef, *_ = np.linalg.lstsq(np.array(rows), np.array(targets), rcond=None)
    return float(np.exp(coef[0])), float(coef[1]), float(coef[2])


_AREA_FIT = _fit_power_law(0)
_LEAK_FIT = _fit_power_law(1)


def area_mm2(config: ViaConfig) -> float:
    """SSPM area in mm^2 at 22 nm (published anchors exact)."""
    key = (config.sram_kb, config.ports)
    if key in PUBLISHED_SYNTHESIS:
        return PUBLISHED_SYNTHESIS[key][0]
    a, p, q = _AREA_FIT
    return a * config.sram_kb**p * config.ports**q


def leakage_mw(config: ViaConfig) -> float:
    """SSPM leakage power in mW at 22 nm, 0.8 V (published anchors exact)."""
    key = (config.sram_kb, config.ports)
    if key in PUBLISHED_SYNTHESIS:
        return PUBLISHED_SYNTHESIS[key][1]
    a, p, q = _LEAK_FIT
    return a * config.sram_kb**p * config.ports**q


def core_area_overhead(config: ViaConfig) -> float:
    """VIA area as a fraction of one 22 nm Haswell core."""
    return area_mm2(config) / HASWELL_CORE_AREA_MM2


def chip_area_overhead(config: ViaConfig) -> float:
    """VIA area as a fraction of the whole 22 nm chip."""
    return area_mm2(config) / HASWELL_CHIP_AREA_MM2


def table2(configs=None) -> str:
    """Render Table II (area and leakage per configuration)."""
    from repro.via.config import all_configs

    configs = list(configs) if configs is not None else all_configs()
    lines = [
        "Table II — SSPM synthesis results (22 nm, 2 GHz)",
        "-" * 56,
        f"{'Config':<10}{'Area (mm^2)':>14}{'Leakage (mW)':>14}"
        f"{'Core ovh':>10}{'Chip ovh':>8}",
    ]
    for cfg in sorted(configs, key=lambda c: (-c.sram_kb, -c.ports)):
        lines.append(
            f"{cfg.name:<10}{area_mm2(cfg):>14.3f}{leakage_mw(cfg):>14.2f}"
            f"{core_area_overhead(cfg):>10.1%}{chip_area_overhead(cfg):>8.1%}"
        )
    return "\n".join(lines)
