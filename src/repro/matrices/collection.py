"""A seeded virtual matrix collection standing in for SuiteSparse.

The paper evaluates over 1,024 square matrices with <= 20,000 rows and
0.01 %-2.6 % non-zeros.  :class:`MatrixCollection` deterministically samples
matrix *specs* (domain + generator parameters + dimension) from the domain
taxonomy and materializes matrices lazily on access.

Two profiles are provided:

* :func:`paper_collection` — 1,024 specs, dimensions up to 20,000 (matching
  the paper; expensive to sweep in pure Python);
* :func:`small_collection` — the default for tests and benchmarks: same
  sampling distributions, scaled-down dimensions, configurable count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.errors import ReproError
from repro.formats.coo import COOMatrix
from repro.matrices.domains import DOMAINS, domain_names, domain_weights

PAPER_MAX_ROWS = 20_000
PAPER_MIN_DENSITY = 0.0001  # 0.01 %
PAPER_MAX_DENSITY = 0.026  # 2.6 %


@dataclass(frozen=True)
class MatrixSpec:
    """Recipe for one synthetic matrix.

    The spec is the unit of reproducibility: the same spec always generates
    the same matrix, so collections can be iterated lazily without pinning
    every matrix in memory.
    """

    name: str
    domain: str
    n: int
    seed: int
    params: dict = field(default_factory=dict)

    def build(self) -> COOMatrix:
        """Materialize the matrix this spec describes."""
        dom = DOMAINS[self.domain]
        return dom.build(self.n, self.seed, **self.params)


class MatrixCollection:
    """Deterministic, lazily-materialized collection of synthetic matrices.

    Parameters
    ----------
    count:
        Number of matrices.
    seed:
        Master seed; the whole collection is a pure function of
        ``(count, seed, min_n, max_n)``.
    min_n, max_n:
        Dimension envelope.  Dimensions are drawn log-uniformly so small and
        large matrices are both represented, as in SuiteSparse.
    cache:
        When True (default) materialized matrices are memoized.
    """

    def __init__(
        self,
        count: int = 1024,
        seed: int = 2021,
        *,
        min_n: int = 64,
        max_n: int = PAPER_MAX_ROWS,
        cache: bool = True,
        specs: Optional[List[MatrixSpec]] = None,
    ):
        if specs is not None:
            if not specs:
                raise ReproError("explicit spec list must not be empty")
            self._specs = list(specs)
        else:
            if count <= 0:
                raise ReproError(f"count must be positive, got {count}")
            if not (0 < min_n <= max_n):
                raise ReproError(f"bad dimension envelope [{min_n}, {max_n}]")
            self._specs = _sample_specs(count, seed, min_n, max_n)
        self._cache: Optional[Dict[str, COOMatrix]] = {} if cache else None

    # ------------------------------------------------------------------
    @property
    def specs(self) -> List[MatrixSpec]:
        return list(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[MatrixSpec]:
        return iter(self._specs)

    def matrix(self, spec: MatrixSpec) -> COOMatrix:
        """Materialize (and possibly cache) the matrix for ``spec``."""
        if self._cache is not None and spec.name in self._cache:
            return self._cache[spec.name]
        mat = spec.build()
        if self._cache is not None:
            self._cache[spec.name] = mat
        return mat

    def matrices(self) -> Iterator[COOMatrix]:
        """Iterate over materialized matrices in spec order."""
        for spec in self._specs:
            yield self.matrix(spec)

    def by_domain(self, domain: str) -> List[MatrixSpec]:
        """All specs belonging to one structural family."""
        return [s for s in self._specs if s.domain == domain]

    def summary(self) -> dict:
        """Aggregate description of the collection (for reports)."""
        dims = np.array([s.n for s in self._specs])
        domains = {}
        for s in self._specs:
            domains[s.domain] = domains.get(s.domain, 0) + 1
        return {
            "count": len(self._specs),
            "dims": {
                "min": int(dims.min()),
                "median": int(np.median(dims)),
                "max": int(dims.max()),
            },
            "domains": domains,
        }


def _sample_specs(count: int, seed: int, min_n: int, max_n: int) -> List[MatrixSpec]:
    rng = np.random.default_rng(seed)
    names = domain_names()
    weights = domain_weights()
    specs: List[MatrixSpec] = []
    for i in range(count):
        domain = names[int(rng.choice(len(names), p=weights))]
        # log-uniform dimension draw, mirroring SuiteSparse's size spread
        log_n = rng.uniform(np.log(min_n), np.log(max_n))
        n = int(round(np.exp(log_n)))
        params = DOMAINS[domain].sample(rng, n)
        matrix_seed = int(rng.integers(0, 2**31 - 1))
        specs.append(
            MatrixSpec(
                name=f"{domain}_{i:04d}",
                domain=domain,
                n=n,
                seed=matrix_seed,
                params=params,
            )
        )
    return specs


def paper_collection(seed: int = 2021) -> MatrixCollection:
    """The full-scale 1,024-matrix collection used by the paper's envelope.

    Materializing and sweeping all of it in pure Python is slow; the
    benchmark harness defaults to :func:`small_collection` and exposes this
    via the ``REPRO_FULL_COLLECTION`` environment knob.
    """
    return MatrixCollection(1024, seed, min_n=256, max_n=PAPER_MAX_ROWS)


def small_collection(
    count: int = 64, seed: int = 2021, *, max_n: int = 1024
) -> MatrixCollection:
    """A scaled-down collection with the same sampling distributions."""
    return MatrixCollection(count, seed, min_n=64, max_n=max_n)


def dse_specs() -> List[MatrixSpec]:
    """Hand-picked specs for the design-space exploration (Figure 9).

    The DSE needs matrices that actually stress the SSPM knobs: dimensions
    well above the 4 KB configuration's CSB block size (512), plus denser
    matrices whose row unions exceed the small index table — the regimes
    where capacity separates the configurations.
    """
    mk = MatrixSpec
    return [
        mk("dse_banded_a", "structural", 3072, 11, {"bandwidth": 24, "fill": 0.7}),
        mk("dse_blocked_a", "chemical", 4096, 12,
           {"block_dim": 32, "block_density": 0.02, "in_block_fill": 0.5}),
        mk("dse_graph_a", "graph", 3000, 13, {"avg_nnz_per_row": 8.0, "alpha": 1.8}),
        mk("dse_random_sparse", "random", 2500, 14, {"density": 0.003}),
        mk("dse_random_dense", "random", 3500, 15, {"density": 0.012}),
        mk("dse_circuit_a", "circuit", 2800, 16, {"avg_fanout": 3.0, "n_rails": 3}),
        mk("dse_econ_a", "economics", 3200, 17, {"n_diagonals": 16}),
        mk("dse_pde_a", "pde", 3600, 18, {"connectivity": 9}),
    ]


def dse_collection() -> MatrixCollection:
    """Collection wrapper around :func:`dse_specs`."""
    return MatrixCollection(specs=dse_specs())
