"""MatrixMarket (.mtx) reader/writer.

SuiteSparse distributes its matrices in MatrixMarket coordinate format.
The paper's evaluation pulls 1,024 such files; this module lets a user
with access to the real collection run the harness on them unchanged:

    from repro.matrices.io import read_matrix_market
    coo = read_matrix_market("bcsstk01.mtx")

Supported: ``matrix coordinate`` with ``real``/``integer``/``pattern``
fields and ``general``/``symmetric``/``skew-symmetric`` symmetries — the
combinations that cover the collection's real square matrices.  Complex
matrices are out of scope (the paper excludes them too).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseFormat
from repro.formats.coo import COOMatrix

_SUPPORTED_FIELDS = ("real", "integer", "pattern")
_SUPPORTED_SYMMETRIES = ("general", "symmetric", "skew-symmetric")


def read_matrix_market(source: Union[str, Path, TextIO]) -> COOMatrix:
    """Parse a MatrixMarket coordinate file into a canonical COO matrix.

    ``source`` may be a path or an open text stream.  Raises
    :class:`FormatError` on malformed or unsupported content.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as fh:
            return _parse(fh)
    return _parse(source)


def reads_matrix_market(text: str) -> COOMatrix:
    """Parse MatrixMarket content from a string."""
    return _parse(io.StringIO(text))


def write_matrix_market(
    matrix: SparseFormat, target: Union[str, Path, TextIO], *, comment: str = ""
) -> None:
    """Write a sparse matrix as ``matrix coordinate real general``.

    Entries are emitted in canonical (row-major) order with 1-based
    indices, ready for any MatrixMarket consumer.
    """
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="ascii") as fh:
            _emit(matrix, fh, comment)
    else:
        _emit(matrix, target, comment)


def writes_matrix_market(matrix: SparseFormat, *, comment: str = "") -> str:
    """Render a sparse matrix as MatrixMarket text."""
    buf = io.StringIO()
    _emit(matrix, buf, comment)
    return buf.getvalue()


# ---------------------------------------------------------------------------
def _parse(fh: TextIO) -> COOMatrix:
    header = fh.readline()
    if not header.startswith("%%MatrixMarket"):
        raise FormatError("missing %%MatrixMarket header")
    parts = header.strip().split()
    if len(parts) < 5:
        raise FormatError(f"malformed header: {header.strip()!r}")
    _tag, obj, fmt, field, symmetry = parts[:5]
    obj, fmt = obj.lower(), fmt.lower()
    field, symmetry = field.lower(), symmetry.lower()
    if obj != "matrix" or fmt != "coordinate":
        raise FormatError(
            f"only 'matrix coordinate' is supported, got '{obj} {fmt}'"
        )
    if field not in _SUPPORTED_FIELDS:
        raise FormatError(f"unsupported field {field!r}")
    if symmetry not in _SUPPORTED_SYMMETRIES:
        raise FormatError(f"unsupported symmetry {symmetry!r}")

    # skip comments and blank lines up to the size line
    size_line = None
    for line in fh:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        size_line = stripped
        break
    if size_line is None:
        raise FormatError("missing size line")
    try:
        rows_s, cols_s, nnz_s = size_line.split()
        rows, cols, nnz = int(rows_s), int(cols_s), int(nnz_s)
    except ValueError as exc:
        raise FormatError(f"malformed size line: {size_line!r}") from exc
    if rows < 0 or cols < 0 or nnz < 0:
        raise FormatError(f"negative dimensions in size line: {size_line!r}")

    rr = np.empty(nnz, dtype=np.int64)
    cc = np.empty(nnz, dtype=np.int64)
    vv = np.empty(nnz, dtype=float)
    count = 0
    for line in fh:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        if count >= nnz:
            raise FormatError(f"more than the declared {nnz} entries")
        fields = stripped.split()
        expected = 2 if field == "pattern" else 3
        if len(fields) < expected:
            raise FormatError(f"malformed entry line: {stripped!r}")
        try:
            r, c = int(fields[0]), int(fields[1])
            v = 1.0 if field == "pattern" else float(fields[2])
        except ValueError as exc:
            raise FormatError(f"malformed entry line: {stripped!r}") from exc
        if not (1 <= r <= rows and 1 <= c <= cols):
            raise FormatError(f"entry ({r}, {c}) outside {rows}x{cols}")
        rr[count], cc[count], vv[count] = r - 1, c - 1, v
        count += 1
    if count != nnz:
        raise FormatError(f"declared {nnz} entries but found {count}")

    if symmetry in ("symmetric", "skew-symmetric"):
        off_diag = rr != cc
        if symmetry == "skew-symmetric" and np.any(~off_diag):
            raise FormatError("skew-symmetric matrices must have empty diagonal")
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        mirror_r, mirror_c = cc[off_diag], rr[off_diag]
        rr = np.concatenate([rr, mirror_r])
        cc = np.concatenate([cc, mirror_c])
        vv = np.concatenate([vv, sign * vv[off_diag]])
    return COOMatrix((rows, cols), rr, cc, vv)


def _emit(matrix: SparseFormat, fh: TextIO, comment: str) -> None:
    coo = matrix.to_coo()
    fh.write("%%MatrixMarket matrix coordinate real general\n")
    for line in comment.splitlines():
        fh.write(f"% {line}\n")
    fh.write(f"{coo.rows} {coo.cols} {coo.nnz}\n")
    for r, c, v in zip(coo.row, coo.col, coo.data):
        fh.write(f"{int(r) + 1} {int(c) + 1} {float(v)!r}\n")
