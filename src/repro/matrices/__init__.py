"""Synthetic matrix collection — SuiteSparse (UF collection) substitute.

See DESIGN.md section 1 for the substitution rationale: VIA's speedups are
driven by structural properties (nnz/row, block density, index locality),
which the seeded generator families reproduce across the paper's envelope
(square, <= 20,000 rows, 0.01 %-2.6 % density).
"""

from repro.matrices.collection import (
    MatrixCollection,
    MatrixSpec,
    dse_collection,
    dse_specs,
    paper_collection,
    small_collection,
)
from repro.matrices.domains import DOMAINS, Domain, domain_names, domain_weights
from repro.matrices.io import (
    read_matrix_market,
    reads_matrix_market,
    write_matrix_market,
    writes_matrix_market,
)
from repro.matrices.generators import (
    banded,
    blocked,
    circuit,
    diagonal_dominant,
    grid_2d,
    kronecker,
    power_law,
    random_uniform,
)
from repro.matrices.stats import (
    StructureStats,
    block_density_metric,
    nnz_per_row_metric,
    quartile_split,
    structure_stats,
)

__all__ = [
    "MatrixCollection",
    "MatrixSpec",
    "dse_collection",
    "dse_specs",
    "paper_collection",
    "small_collection",
    "DOMAINS",
    "Domain",
    "domain_names",
    "domain_weights",
    "banded",
    "blocked",
    "circuit",
    "diagonal_dominant",
    "grid_2d",
    "kronecker",
    "power_law",
    "random_uniform",
    "StructureStats",
    "block_density_metric",
    "nnz_per_row_metric",
    "quartile_split",
    "structure_stats",
    "read_matrix_market",
    "reads_matrix_market",
    "write_matrix_market",
    "writes_matrix_market",
]
