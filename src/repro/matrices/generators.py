"""Synthetic sparse-matrix generators — SuiteSparse substitute.

The paper evaluates on 1,024 square matrices (rows <= 20,000, density
0.01 %-2.6 %) drawn from 56 application domains of the University of Florida
SuiteSparse collection.  That collection cannot be downloaded here, so this
module provides seeded generators for the structural *families* that
dominate it.  What matters to VIA is structure, not provenance:

* nnz-per-row distribution (drives SpMA/SpMM index-matching work);
* block clustering (drives CSB block density, the Fig. 10 category metric);
* index locality / bandwidth (drives cache behaviour of gathers);
* overall density (drives the memory-bound balance).

Every generator takes an explicit ``seed`` and returns a canonical
:class:`~repro.formats.coo.COOMatrix`, always square, to mirror the paper's
matrix selection criteria.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError
from repro.formats.coo import COOMatrix


def _values(rng: np.random.Generator, n: int) -> np.ndarray:
    """Non-zero values: unit-scale normals, nudged away from exact zero."""
    vals = rng.standard_normal(n)
    vals[vals == 0.0] = 1.0
    return vals


def _coo_from_pairs(n: int, rows, cols, rng) -> COOMatrix:
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    # deduplicate coordinates so nnz is exact
    key = rows * n + cols
    key = np.unique(key)
    rows, cols = key // n, key % n
    return COOMatrix((n, n), rows, cols, _values(rng, rows.size))


def random_uniform(n: int, density: float, seed: int) -> COOMatrix:
    """Uniformly random pattern (Erdos-Renyi): optimization/statistics-like.

    Worst-case locality for gathers — entries land anywhere in the row space.
    """
    _check(n, density)
    rng = np.random.default_rng(seed)
    nnz = max(1, int(round(n * n * density)))
    nnz = min(nnz, n * n)
    flat = rng.choice(n * n, size=nnz, replace=False) if nnz < n * n // 2 else (
        np.random.default_rng(seed).permutation(n * n)[:nnz]
    )
    return _coo_from_pairs(n, flat // n, flat % n, rng)


def banded(n: int, bandwidth: int, fill: float, seed: int) -> COOMatrix:
    """Banded pattern: FEM / structural engineering / PDE discretizations.

    Entries fall within ``|i - j| <= bandwidth`` with probability ``fill``,
    plus a guaranteed main diagonal.  High index locality, CSB blocks on the
    diagonal are dense.
    """
    _check(n, None)
    if bandwidth < 0:
        raise FormatError(f"bandwidth must be >= 0, got {bandwidth}")
    rng = np.random.default_rng(seed)
    offsets = np.arange(-bandwidth, bandwidth + 1)
    rows_list = [np.arange(n)]
    cols_list = [np.arange(n)]
    for off in offsets:
        if off == 0:
            continue
        rr = np.arange(max(0, -off), min(n, n - off))
        keep = rng.random(rr.size) < fill
        rows_list.append(rr[keep])
        cols_list.append(rr[keep] + off)
    return _coo_from_pairs(
        n, np.concatenate(rows_list), np.concatenate(cols_list), rng
    )


def blocked(
    n: int,
    block_dim: int,
    block_density: float,
    in_block_fill: float,
    seed: int,
) -> COOMatrix:
    """Clustered-block pattern: chemical engineering / multiphysics coupling.

    The matrix is tiled into ``block_dim x block_dim`` tiles; a fraction
    ``block_density`` of tiles is active, and active tiles are filled with
    probability ``in_block_fill``.  This is the structure CSB exploits best.
    """
    _check(n, None)
    rng = np.random.default_rng(seed)
    grid = max(1, n // block_dim)
    n_tiles = grid * grid
    active = rng.random(n_tiles) < block_density
    active_ids = np.flatnonzero(active)
    if active_ids.size == 0:
        active_ids = np.array([0])
    rows_list, cols_list = [np.arange(n)], [np.arange(n)]  # keep the diagonal
    for tid in active_ids:
        br, bc = tid // grid, tid % grid
        r0, c0 = br * block_dim, bc * block_dim
        h = min(block_dim, n - r0)
        w = min(block_dim, n - c0)
        count = max(1, int(round(h * w * in_block_fill)))
        rr = rng.integers(0, h, size=count) + r0
        cc = rng.integers(0, w, size=count) + c0
        rows_list.append(rr)
        cols_list.append(cc)
    return _coo_from_pairs(
        n, np.concatenate(rows_list), np.concatenate(cols_list), rng
    )


def power_law(n: int, avg_nnz_per_row: float, alpha: float, seed: int) -> COOMatrix:
    """Scale-free pattern: social / web / citation graph adjacency.

    Column targets are drawn from a Zipf-like distribution so a few hub
    columns are extremely popular — the access pattern the paper's YouTube
    example exhibits.  Row degrees follow a heavy-tailed distribution too.
    """
    _check(n, None)
    if avg_nnz_per_row <= 0:
        raise FormatError("avg_nnz_per_row must be positive")
    rng = np.random.default_rng(seed)
    # heavy-tailed row degrees with the requested mean
    raw = rng.pareto(alpha, size=n) + 1.0
    deg = np.maximum(1, np.round(raw * avg_nnz_per_row / raw.mean()).astype(np.int64))
    deg = np.minimum(deg, n)
    rows = np.repeat(np.arange(n, dtype=np.int64), deg)
    # Zipf-ish column popularity via inverse-CDF on a power law
    u = rng.random(rows.size)
    cols = np.minimum((n * u ** alpha).astype(np.int64), n - 1)
    perm = rng.permutation(n)  # decouple popularity rank from column id
    cols = perm[cols]
    return _coo_from_pairs(n, rows, cols, rng)


def circuit(n: int, avg_fanout: float, n_rails: int, seed: int) -> COOMatrix:
    """Circuit-simulation pattern: sparse near-diagonal + dense rails.

    Most nodes couple to a handful of near neighbours; a few global nets
    (power rails, clocks) produce nearly dense rows *and* columns.
    """
    _check(n, None)
    rng = np.random.default_rng(seed)
    rows_list, cols_list = [np.arange(n)], [np.arange(n)]
    # local couplings within a short random reach
    count = max(1, int(n * avg_fanout))
    rr = rng.integers(0, n, size=count)
    reach = rng.integers(1, 16, size=count)
    cc = np.clip(rr + rng.choice([-1, 1], size=count) * reach, 0, n - 1)
    rows_list.append(rr)
    cols_list.append(cc)
    # global rails: dense-ish rows and columns
    rails = rng.choice(n, size=max(1, n_rails), replace=False)
    for rail in rails:
        touched = rng.choice(n, size=max(1, n // 20), replace=False)
        rows_list.append(np.full(touched.size, rail))
        cols_list.append(touched)
        rows_list.append(touched)
        cols_list.append(np.full(touched.size, rail))
    return _coo_from_pairs(
        n, np.concatenate(rows_list), np.concatenate(cols_list), rng
    )


def grid_2d(side: int, seed: int, *, connectivity: int = 5) -> COOMatrix:
    """2-D grid Laplacian (5- or 9-point): heat/fluid PDE meshes.

    The matrix is ``side**2`` square.  Perfectly regular structure, very
    narrow effective bandwidth.
    """
    if side <= 0:
        raise FormatError(f"side must be positive, got {side}")
    if connectivity not in (5, 9):
        raise FormatError(f"connectivity must be 5 or 9, got {connectivity}")
    n = side * side
    rng = np.random.default_rng(seed)
    ii, jj = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    node = (ii * side + jj).ravel()
    if connectivity == 5:
        offsets = [(-1, 0), (1, 0), (0, -1), (0, 1)]
    else:
        offsets = [
            (di, dj)
            for di in (-1, 0, 1)
            for dj in (-1, 0, 1)
            if (di, dj) != (0, 0)
        ]
    rows_list, cols_list = [node], [node]
    for di, dj in offsets:
        ni, nj = ii + di, jj + dj
        ok = ((ni >= 0) & (ni < side) & (nj >= 0) & (nj < side)).ravel()
        rows_list.append(node[ok])
        cols_list.append((ni * side + nj).ravel()[ok])
    return _coo_from_pairs(
        n, np.concatenate(rows_list), np.concatenate(cols_list), rng
    )


def kronecker(scale: int, edge_factor: int, seed: int) -> COOMatrix:
    """R-MAT / Graph500-style Kronecker graph: big-data graph kernels.

    ``n = 2**scale`` nodes, about ``edge_factor * n`` directed edges with
    the standard (0.57, 0.19, 0.19, 0.05) partition probabilities.
    """
    if scale <= 0 or scale > 16:
        raise FormatError(f"scale must be in [1, 16], got {scale}")
    n = 1 << scale
    rng = np.random.default_rng(seed)
    m = max(1, edge_factor * n)
    a, b, c = 0.57, 0.19, 0.19
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    for _bit in range(scale):
        rows <<= 1
        cols <<= 1
        u = rng.random(m)
        right = u >= a + b  # falls in the c+d quadrants -> column bit set
        down = (u >= a) & (u < a + b) | (u >= a + b + c)  # b or d -> row bit
        rows |= down.astype(np.int64)
        cols |= right.astype(np.int64)
    return _coo_from_pairs(n, rows, cols, rng)


def diagonal_dominant(n: int, n_diagonals: int, seed: int) -> COOMatrix:
    """Multi-diagonal pattern: structured economics / queueing models."""
    _check(n, None)
    rng = np.random.default_rng(seed)
    offs = np.unique(
        np.concatenate([[0], rng.integers(-n // 2, n // 2, size=max(1, n_diagonals))])
    )
    rows_list, cols_list = [], []
    for off in offs:
        rr = np.arange(max(0, -off), min(n, n - off))
        rows_list.append(rr)
        cols_list.append(rr + off)
    return _coo_from_pairs(
        n, np.concatenate(rows_list), np.concatenate(cols_list), rng
    )


def _check(n: int, density) -> None:
    if n <= 0:
        raise FormatError(f"matrix dimension must be positive, got {n}")
    if density is not None and not (0.0 < density <= 1.0):
        raise FormatError(f"density must be in (0, 1], got {density}")
