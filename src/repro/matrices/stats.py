"""Structural statistics used to categorize matrices in the evaluation.

Figure 10 splits the collection into four categories by CSB block density
(median non-zeros per block); Figure 11 uses non-zeros per row.  This module
computes those metrics plus general structure descriptors used in reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.formats.base import SparseFormat
from repro.formats.csb import CSBMatrix
from repro.formats.csr import CSRMatrix


@dataclass(frozen=True)
class StructureStats:
    """Structure descriptors for one matrix."""

    rows: int
    cols: int
    nnz: int
    density: float
    avg_nnz_per_row: float
    max_nnz_per_row: int
    empty_rows: int
    bandwidth: int
    csb_block_size: int
    csb_num_blocks: int
    median_nnz_per_block: float

    def as_dict(self) -> dict:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


def structure_stats(
    matrix: SparseFormat,
    *,
    csb_block_size: int = 256,
    csb: Optional[CSBMatrix] = None,
) -> StructureStats:
    """Compute :class:`StructureStats` for any sparse matrix.

    Pass ``csb`` when a CSB build of the same matrix is already in hand
    (the sweep planners build one for the Fig. 10 metric) to avoid
    re-blocking; its block size then overrides ``csb_block_size``.
    """
    coo = matrix.to_coo()
    rows, cols = coo.shape
    nnz = coo.nnz
    per_row = np.bincount(coo.row, minlength=rows) if rows else np.zeros(0, int)
    bw = int(np.abs(coo.row - coo.col).max()) if nnz else 0
    if csb is None:
        csb = CSBMatrix.from_coo(coo, block_size=csb_block_size)
    per_block = csb.nnz_per_block()
    return StructureStats(
        rows=rows,
        cols=cols,
        nnz=nnz,
        density=coo.density,
        avg_nnz_per_row=float(per_row.mean()) if rows else 0.0,
        max_nnz_per_row=int(per_row.max()) if rows else 0,
        empty_rows=int((per_row == 0).sum()) if rows else 0,
        bandwidth=bw,
        csb_block_size=csb.block_size,
        csb_num_blocks=csb.num_blocks,
        median_nnz_per_block=float(np.median(per_block)) if per_block.size else 0.0,
    )


def nnz_per_row_metric(matrix: SparseFormat) -> float:
    """Average stored entries per non-empty row (Fig. 11 category metric)."""
    csr = CSRMatrix.from_coo(matrix.to_coo())
    lengths = csr.row_lengths()
    nonempty = lengths[lengths > 0]
    return float(nonempty.mean()) if nonempty.size else 0.0


def block_density_metric(matrix: SparseFormat, *, block_size: int = 256) -> float:
    """Median non-zeros per stored CSB block (Fig. 10 category metric)."""
    csb = CSBMatrix.from_coo(matrix.to_coo(), block_size=block_size)
    per_block = csb.nnz_per_block()
    return float(np.median(per_block)) if per_block.size else 0.0


def quartile_split(values: Sequence[float]) -> Tuple[List[np.ndarray], List[float]]:
    """Split items into four equal-population categories by metric value.

    Mirrors the paper's "sorted by X and evenly split among 4 categories".

    Degenerate inputs have defined results instead of empty/NaN bins:

    * empty input returns ``([], [])``;
    * fewer than 4 values yield ``len(values)`` single-member-or-larger
      categories — every group is non-empty and every median is finite
      (for finite input);
    * all-equal values split into four equal-population groups in stable
      input order, each with the shared value as its median.

    Returns
    -------
    (groups, medians):
        ``groups[k]`` holds the item indices of category *k* (ascending
        metric), ``medians[k]`` its median metric value (the x-axis labels
        of Figures 10 and 11).
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return [], []
    order = np.argsort(arr, kind="stable")
    parts = min(4, arr.size)
    groups = [np.array(g, dtype=np.int64) for g in np.array_split(order, parts)]
    medians = [float(np.median(arr[g])) for g in groups]
    return groups, medians
