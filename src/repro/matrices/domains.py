"""Application-domain taxonomy for the synthetic collection.

SuiteSparse tags every matrix with an application domain (56 distinct ones
appear in the paper's selection).  We group those domains into structural
families, each backed by one generator from
:mod:`repro.matrices.generators` plus a parameter sampler.  The sampler
draws parameters from ranges chosen so the generated matrices land inside
the paper's envelope: square, <= 20,000 rows, 0.01 %-2.6 % non-zeros.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.formats.coo import COOMatrix
from repro.matrices import generators as gen


@dataclass(frozen=True)
class Domain:
    """A structural family standing in for a group of SuiteSparse domains.

    Attributes
    ----------
    name:
        Family identifier (e.g. ``"structural"``).
    suite_sparse_domains:
        The real collection domains this family represents, for
        documentation purposes.
    sample:
        ``sample(rng, n) -> dict`` draws generator parameters for a matrix
        of dimension ``n``.
    build:
        ``build(n, seed, **params) -> COOMatrix``.
    weight:
        Relative share of the collection drawn from this family.
    """

    name: str
    suite_sparse_domains: List[str]
    sample: Callable[[np.random.Generator, int], dict]
    build: Callable[..., COOMatrix]
    weight: float


def _structural(rng: np.random.Generator, n: int) -> dict:
    return {
        "bandwidth": int(rng.integers(2, max(3, n // 64))),
        "fill": float(rng.uniform(0.25, 0.9)),
    }


def _chemical(rng: np.random.Generator, n: int) -> dict:
    return {
        "block_dim": int(rng.choice([8, 16, 32, 64])),
        "block_density": float(rng.uniform(0.005, 0.05)),
        "in_block_fill": float(rng.uniform(0.2, 0.8)),
    }


def _graph(rng: np.random.Generator, n: int) -> dict:
    return {
        "avg_nnz_per_row": float(rng.uniform(2.0, 12.0)),
        "alpha": float(rng.uniform(1.5, 2.5)),
    }


def _circuit(rng: np.random.Generator, n: int) -> dict:
    return {
        "avg_fanout": float(rng.uniform(1.5, 4.0)),
        "n_rails": int(rng.integers(1, 4)),
    }


def _random(rng: np.random.Generator, n: int) -> dict:
    return {"density": float(rng.uniform(0.0005, 0.026))}


def _economics(rng: np.random.Generator, n: int) -> dict:
    return {"n_diagonals": int(rng.integers(3, 24))}


def _pde(rng: np.random.Generator, n: int) -> dict:
    return {"connectivity": int(rng.choice([5, 9]))}


def _kron(rng: np.random.Generator, n: int) -> dict:
    return {"edge_factor": int(rng.integers(4, 16))}


def _build_structural(n, seed, **p):
    return gen.banded(n, seed=seed, **p)


def _build_chemical(n, seed, **p):
    return gen.blocked(n, seed=seed, **p)


def _build_graph(n, seed, **p):
    return gen.power_law(n, seed=seed, **p)


def _build_circuit(n, seed, **p):
    return gen.circuit(n, seed=seed, **p)


def _build_random(n, seed, **p):
    return gen.random_uniform(n, seed=seed, **p)


def _build_economics(n, seed, **p):
    return gen.diagonal_dominant(n, seed=seed, **p)


def _build_pde(n, seed, **p):
    side = max(4, int(round(np.sqrt(n))))
    return gen.grid_2d(side, seed=seed, **p)


def _build_kron(n, seed, **p):
    scale = max(4, int(np.log2(max(n, 16))))
    return gen.kronecker(scale, seed=seed, **p)


DOMAINS: Dict[str, Domain] = {
    d.name: d
    for d in (
        Domain(
            "structural",
            ["structural problem", "civil engineering", "materials", "acoustics"],
            _structural,
            _build_structural,
            weight=0.18,
        ),
        Domain(
            "chemical",
            ["chemical process simulation", "thermal", "multiphysics"],
            _chemical,
            _build_chemical,
            weight=0.14,
        ),
        Domain(
            "graph",
            ["directed graph", "social network", "web graph", "citation"],
            _graph,
            _build_graph,
            weight=0.18,
        ),
        Domain(
            "circuit",
            ["circuit simulation", "semiconductor device"],
            _circuit,
            _build_circuit,
            weight=0.14,
        ),
        Domain(
            "random",
            ["optimization", "linear programming", "statistics"],
            _random,
            _build_random,
            weight=0.12,
        ),
        Domain(
            "economics",
            ["economic problem", "queueing model"],
            _economics,
            _build_economics,
            weight=0.08,
        ),
        Domain(
            "pde",
            ["computational fluid dynamics", "electromagnetics", "2D/3D mesh"],
            _pde,
            _build_pde,
            weight=0.10,
        ),
        Domain(
            "kronecker",
            ["combinatorics", "graph500-style synthetic graphs"],
            _kron,
            _build_kron,
            weight=0.06,
        ),
    )
}


def domain_names() -> List[str]:
    """Stable ordering of the structural families."""
    return sorted(DOMAINS)


def domain_weights() -> np.ndarray:
    """Normalized sampling weights aligned with :func:`domain_names`."""
    w = np.array([DOMAINS[d].weight for d in domain_names()], dtype=float)
    return w / w.sum()
