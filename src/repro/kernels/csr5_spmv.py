"""CSR5 SpMV — extension kernel (paper related work, Section VIII).

The paper's related-work section compares against CSR5 (Liu & Vinter), the
strongest pure-software SpMV of its generation.  This module prices the
CSR5 segmented-sum SpMV on the same machine model so the comparison the
paper makes qualitatively ("software approaches leave the gather problem
in place") can be measured:

* the tiled, column-major layout makes every *matrix* access a perfect
  stream — CSR5's genuine win over CSR;
* the ``x`` accesses remain gathers (Challenge 1 is untouched);
* each tile pays a segmented-sum network (log2(omega) shuffle/add rounds)
  plus scalar fix-up stores on row boundaries.

The VIA variant again accumulates partial rows in the SSPM, removing the
segmented sum's cross-tile fix-up traffic but not the gathers — the same
~1.2x class of gain the paper reports for the other software formats.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.formats.csr5 import CSR5Matrix
from repro.kernels import reference
from repro.kernels.common import (
    INDEX_BYTES,
    VALUE_BYTES,
    make_core,
    make_via_core,
)
from repro.sim.backends import Backend
from repro.sim import KernelResult, MachineConfig, calibration as cal
from repro.via import Dest, Opcode, ViaConfig


def _check_x(matrix, x) -> np.ndarray:
    x = np.asarray(x, dtype=float)
    if x.shape != (matrix.cols,):
        raise ShapeError(f"x must have shape ({matrix.cols},), got {x.shape}")
    return x


def spmv_csr5_baseline(
    m: CSR5Matrix, x, machine: Optional[MachineConfig] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """Segmented-sum CSR5 SpMV on a conventional vector machine."""
    x = _check_x(m, x)
    core = make_core(machine, backend)
    vl = core.machine.vl
    a_ci = core.alloc("col_idx", max(m.nnz, 1), INDEX_BYTES)
    a_dt = core.alloc("data", max(m.nnz, 1), VALUE_BYTES)
    a_desc = core.alloc("descriptors", max(3 * m.num_tiles, 1), INDEX_BYTES)
    a_x = core.alloc("x", m.cols, VALUE_BYTES)
    a_y = core.alloc("y", m.rows, VALUE_BYTES)

    core.load_stream(a_desc, 0, 3 * max(m.num_tiles, 1))
    core.load_stream(a_ci, 0, m.nnz)
    core.load_stream(a_dt, 0, m.nnz)
    # tile body: per sigma step one gather + one FMA across omega lanes
    steps = m.num_tiles * m.sigma
    core.gather(a_x, m.col_idx[: m.num_tiles * m.tile_size], n_instr=max(steps, 1))
    core.vector_op("fma", steps)
    # segmented sum: log2(omega) shuffle+add rounds per tile, plus a scalar
    # fix-up store per row segment crossing the tile
    rounds = max(1, int(np.ceil(np.log2(max(m.omega, 2)))))
    core.vector_op("permute", rounds * m.num_tiles)
    core.vector_op("alu", rounds * m.num_tiles)
    total_segments = sum(m.tile_segments(t) for t in range(m.num_tiles))
    core.scalar_ops(4 * total_segments)
    # boundary-row fix-up: read-modify-write of y at the tile seams; the
    # seam rows ascend monotonically, so the accesses prefetch like a stream
    seam_rows = [m.rows_spanned(t)[0] for t in range(m.num_tiles)]
    core.scalar_load(a_y, seam_rows)
    core.scalar_store(a_y, seam_rows)
    # each fix-up read-modify-write depends on the tile's segmented-sum
    # output: a short exposed chain per row segment
    core.dependency_stall(2 * total_segments)
    # the scalar tail runs CSR-style
    if m.tail_size:
        core.gather(a_x, m.col_idx[-m.tail_size:],
                    n_instr=-(-m.tail_size // vl))
        core.vector_op("fma", -(-m.tail_size // vl))
        core.vector_op("reduce", 1)
        core.dependency_stall(cal.VREDUCE_LATENCY)
    core.scalar_ops(6 * max(m.num_tiles, 1))
    core.store_stream(a_y, 0, m.rows)

    return core.finalize("spmv_csr5_baseline", output=reference.spmv(m, x))


def spmv_csr5_via(
    m: CSR5Matrix,
    x,
    machine: Optional[MachineConfig] = None,
    via_config: Optional[ViaConfig] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """CSR5 SpMV with VIA output accumulation.

    The tile body (streams + gathers + FMAs) matches the baseline; the
    segmented sum's cross-tile fix-up — scalar read-modify-writes on the
    boundary rows — becomes ``vidxadd.d`` accumulation in the SSPM, and
    ``y`` drains once at the end.
    """
    x = _check_x(m, x)
    core, dev = make_via_core(machine, via_config, backend)
    a_ci = core.alloc("col_idx", max(m.nnz, 1), INDEX_BYTES)
    a_dt = core.alloc("data", max(m.nnz, 1), VALUE_BYTES)
    a_desc = core.alloc("descriptors", max(3 * m.num_tiles, 1), INDEX_BYTES)
    a_x = core.alloc("x", m.cols, VALUE_BYTES)
    a_y = core.alloc("y", m.rows, VALUE_BYTES)

    core.load_stream(a_desc, 0, 3 * max(m.num_tiles, 1))
    core.load_stream(a_ci, 0, m.nnz)
    core.load_stream(a_dt, 0, m.nnz)
    steps = m.num_tiles * m.sigma
    core.gather(a_x, m.col_idx[: m.num_tiles * m.tile_size], n_instr=max(steps, 1))
    core.vector_op("fma", steps)
    rounds = max(1, int(np.ceil(np.log2(max(m.omega, 2)))))
    core.vector_op("permute", rounds * m.num_tiles)
    core.vector_op("alu", rounds * m.num_tiles)
    # per-tile segment results accumulate straight into the SSPM
    total_segments = sum(m.tile_segments(t) for t in range(m.num_tiles))
    dev.account_bulk(Opcode.VIDXADD, max(total_segments, 1), dest=Dest.SSPM)
    if m.tail_size:
        vl = core.machine.vl
        core.gather(a_x, m.col_idx[-m.tail_size:], n_instr=-(-m.tail_size // vl))
        core.vector_op("fma", -(-m.tail_size // vl))
        dev.account_bulk(Opcode.VIDXADD, 1, dest=Dest.SSPM)
    core.scalar_ops(6 * max(m.num_tiles, 1))
    # strip drain
    dev.account_bulk(Opcode.VIDXADD, m.rows, dest=Dest.VRF)
    core.store_stream(a_y, 0, m.rows)

    return core.finalize(
        f"spmv_csr5_via_{dev.config.name}", output=reference.spmv(m, x)
    )
