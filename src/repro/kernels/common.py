"""Shared plumbing for the timed kernels.

Every timed kernel follows the same contract:

* it takes its functional inputs plus a :class:`MachineConfig` and, for VIA
  variants, a :class:`ViaConfig`;
* it builds a fresh :class:`Core` (so cache state never leaks between
  kernels), allocates its arrays in the simulated address space, narrates
  its execution, computes the real result with numpy, and returns a
  :class:`KernelResult` whose ``output`` holds that result;
* the VIA variant and its baseline narrate against the *same* machine
  model, so their ratio isolates the architectural delta, exactly as the
  paper's gem5 methodology does.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro.sim import Core, MachineConfig
from repro.sim.backends import Backend
from repro.sim.config import DEFAULT_MACHINE
from repro.via import DEFAULT_VIA, ViaConfig, ViaDevice

#: element sizes used by every kernel (bytes)
VALUE_BYTES = 8  # f64 values
INDEX_BYTES = 4  # i32 indices, as compressed formats store them


def make_core(
    machine: Optional[MachineConfig] = None,
    backend: Optional[Backend] = None,
) -> Core:
    """A fresh baseline core (no VIA hardware)."""
    return Core(machine or DEFAULT_MACHINE, backend=backend)


def make_via_core(
    machine: Optional[MachineConfig] = None,
    via_config: Optional[ViaConfig] = None,
    backend: Optional[Backend] = None,
) -> Tuple[Core, ViaDevice]:
    """A fresh core with a VIA device fitted."""
    device = ViaDevice(via_config or DEFAULT_VIA)
    core = Core(machine or DEFAULT_MACHINE, via=device, backend=backend)
    return core, device


def chunk_instr_count(lengths: npt.ArrayLike, vl: int) -> int:
    """Vector instructions needed to cover runs of the given lengths.

    A run of ``k`` elements needs ``ceil(k / VL)`` instructions; runs do
    not share instructions (a two-entry row still occupies a whole gather).
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.size == 0:
        return 0
    return int(np.sum((lengths + vl - 1) // vl))


def row_fragmented_elements(lengths: npt.ArrayLike, vl: int) -> int:
    """Total vector lanes occupied when runs are padded up to VL."""
    return chunk_instr_count(lengths, vl) * vl
