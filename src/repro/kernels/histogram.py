"""Histogram kernels — paper Section IV-F1 and VII-D (use case 1).

Three variants, matching the paper's comparison ("intel scalar", "intel
vector", VIA):

* **scalar** — the classic read-modify-write loop.  Its cost is dominated
  by the dependence chain through memory: incrementing the same bin twice
  in a row serializes on the L1 round trip (store-to-load forwarding).
* **vector** — AVX512CD-style: ``vpconflict`` detects intra-vector bin
  collisions, a permute sequence merges them, then the bins are updated
  with a gather + add + scatter.  The indexed memory instructions dominate.
* **VIA** — Algorithm 5: conflict detection stays, but the gather/scatter
  pair becomes one ``vidxadd.d`` accumulation in the SSPM; bins live in the
  scratchpad until a final drain, eliminating the store-load traffic.

Bin counts larger than the SSPM tile into multiple passes over the key
stream (bin-range partitioning), which the timing accounts for.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.kernels import reference
from repro.kernels.common import INDEX_BYTES, VALUE_BYTES, make_core, make_via_core
from repro.sim.backends import Backend
from repro.sim import KernelResult, MachineConfig, calibration as cal
from repro.via import Dest, Opcode, ViaConfig

#: scalar RMW chain: window within which a repeated bin serializes
_CHAIN_WINDOW = 4


def _check_keys(keys, num_bins: int) -> np.ndarray:
    keys = np.asarray(keys, dtype=np.int64)
    if num_bins <= 0:
        raise ShapeError(f"num_bins must be positive, got {num_bins}")
    if keys.size and (keys.min() < 0 or keys.max() >= num_bins):
        raise ShapeError("histogram keys out of range")
    return keys


def _collision_count(keys: np.ndarray, window: int) -> int:
    """Keys that repeat within ``window`` predecessors (RMW serialization)."""
    hits = 0
    for d in range(1, window + 1):
        if keys.size > d:
            hits += int(np.sum(keys[d:] == keys[:-d]))
    return hits


def histogram_scalar_baseline(
    keys, num_bins: int, machine: Optional[MachineConfig] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """Scalar read-modify-write histogram."""
    keys = _check_keys(keys, num_bins)
    core = make_core(machine, backend)
    a_keys = core.alloc("keys", max(keys.size, 1), INDEX_BYTES)
    a_bins = core.alloc("bins", num_bins, VALUE_BYTES)

    core.load_stream(a_keys, 0, keys.size)
    # per element: load bin, increment, store bin (dependent addresses)
    core.scalar_load(a_bins, keys, dependent=True)
    core.scalar_store(a_bins, keys, dependent=True)
    core.scalar_ops(4 * keys.size)
    # the load-increment-store chain limits throughput well below the
    # issue width ...
    core.dependency_stall(keys.size * cal.HISTOGRAM_RMW_CHAIN)
    # ... and repeated bins inside the window additionally serialize on the
    # L1 round trip (store-to-load forwarding)
    collisions = _collision_count(keys, _CHAIN_WINDOW)
    core.dependency_stall(collisions * (core.machine.l1.latency + 1))

    return core.finalize(
        "histogram_scalar", output=reference.histogram(keys, num_bins)
    )


def histogram_vector_baseline(
    keys, num_bins: int, machine: Optional[MachineConfig] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """AVX512CD-style vectorized histogram (conflict detect + gather/scatter)."""
    keys = _check_keys(keys, num_bins)
    core = make_core(machine, backend)
    vl = core.machine.vl32  # 32-bit keys and counts
    a_keys = core.alloc("keys", max(keys.size, 1), INDEX_BYTES)
    a_bins = core.alloc("bins", num_bins, VALUE_BYTES)

    n_chunks = -(-keys.size // vl) if keys.size else 0
    core.load_stream(a_keys, 0, keys.size)
    core.vector_op("conflict", n_chunks)
    core.vector_op("permute", 2 * n_chunks)  # merge matching lanes
    core.gather(a_bins, keys, n_instr=n_chunks)
    core.vector_op("alu", n_chunks)  # add merged counts
    core.scatter(a_bins, keys, n_instr=n_chunks)
    core.scalar_ops(2 * n_chunks)

    return core.finalize(
        "histogram_vector", output=reference.histogram(keys, num_bins)
    )


def histogram_via(
    keys,
    num_bins: int,
    machine: Optional[MachineConfig] = None,
    via_config: Optional[ViaConfig] = None,
    *,
    functional: Optional[bool] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """Histogram on VIA (Algorithm 5).

    Conflict detection and lane merging stay in the vector unit; the bin
    update becomes ``vidxadd.d`` with SSPM destination — the scratchpad
    absorbs the read-modify-write traffic.  Bins beyond the SSPM capacity
    partition into ranges, each requiring another pass over the keys.

    ``functional=True`` routes every accumulation through the functional
    SSPM (default for small inputs); ``False`` uses bulk FIVU accounting
    with a numpy result (identical timing, used for large sweeps).
    """
    keys = _check_keys(keys, num_bins)
    core, dev = make_via_core(machine, via_config, backend)
    vl = core.machine.vl32  # 32-bit keys and counts
    dev.vl_override = vl  # SSPM blocks are 4 bytes: 8 lanes per VIA op
    a_keys = core.alloc("keys", max(keys.size, 1), INDEX_BYTES)
    a_bins = core.alloc("bins", num_bins, VALUE_BYTES)

    entries = dev.config.sram_entries
    passes = max(1, -(-num_bins // entries))
    if functional is None:
        functional = keys.size * passes <= 20_000

    out = np.zeros(num_bins, dtype=np.int64)
    for p in range(passes):
        lo, hi = p * entries, min((p + 1) * entries, num_bins)
        core.load_stream(a_keys, 0, keys.size)
        n_chunks = -(-keys.size // vl) if keys.size else 0
        core.vector_op("conflict", n_chunks)
        core.vector_op("permute", 2 * n_chunks)
        in_range = keys[(keys >= lo) & (keys < hi)]
        dev.vidxclear()
        if functional:
            dev.vidxadd(
                np.ones(in_range.size), in_range - lo, dest=Dest.SSPM
            )
            drained = dev.vidxadd(np.zeros(hi - lo), np.arange(hi - lo))
            out[lo:hi] = drained.astype(np.int64)
        else:
            dev.account_bulk(Opcode.VIDXADD, int(in_range.size), dest=Dest.SSPM)
            dev.account_bulk(Opcode.VIDXADD, hi - lo, dest=Dest.VRF)
        core.store_stream(a_bins, lo, hi - lo)
        core.scalar_ops(2 * n_chunks)
    if not functional:
        out = reference.histogram(keys, num_bins)

    return core.finalize(f"histogram_via_{dev.config.name}", output=out)
