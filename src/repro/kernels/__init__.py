"""Timed kernels: baselines and VIA variants for the paper's evaluation.

Each kernel narrates its execution to the machine model while computing the
true result (see :mod:`repro.kernels.common` for the contract), so every
:class:`repro.sim.KernelResult` carries both cycles and a checkable output.
"""

from repro.kernels import reference
from repro.kernels.csr5_spmv import spmv_csr5_baseline, spmv_csr5_via
from repro.kernels.histogram import (
    histogram_scalar_baseline,
    histogram_vector_baseline,
    histogram_via,
)
from repro.kernels.spma import spma_csr_baseline, spma_via
from repro.kernels.spmm import spmm_csr_baseline, spmm_via
from repro.kernels.spmv import (
    SPMV_VARIANTS,
    spmv_csb_baseline,
    spmv_csb_via,
    spmv_csr_baseline,
    spmv_csr_via,
    spmv_sellcs_baseline,
    spmv_sellcs_via,
    spmv_spc5_baseline,
    spmv_spc5_via,
)
from repro.kernels.stencil import stencil_vector_baseline, stencil_via

__all__ = [
    "reference",
    "spmv_csr5_baseline",
    "spmv_csr5_via",
    "histogram_scalar_baseline",
    "histogram_vector_baseline",
    "histogram_via",
    "spma_csr_baseline",
    "spma_via",
    "spmm_csr_baseline",
    "spmm_via",
    "SPMV_VARIANTS",
    "spmv_csb_baseline",
    "spmv_csb_via",
    "spmv_csr_baseline",
    "spmv_csr_via",
    "spmv_sellcs_baseline",
    "spmv_sellcs_via",
    "spmv_spc5_baseline",
    "spmv_spc5_via",
    "stencil_vector_baseline",
    "stencil_via",
]
