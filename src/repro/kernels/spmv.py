"""SpMV kernels: four formats, baseline and VIA variants (paper VII-A).

For every supported compressed format we provide

* a **baseline** — the vectorized flow a conventional AVX2-class machine
  executes (gathers for indexed reads, per-row reductions, scatters for
  permuted outputs), priced on the machine model; and
* a **VIA** variant — the same computation using the SSPM: the CSB flow is
  the paper's Algorithm 4 (input-vector chunk direct-mapped in the SSPM,
  ``vidxblkmult`` multiply-accumulate); the CSR/SPC5/Sell-C-sigma flows use
  VIA "as an accumulator for the output vector" (Section VII-A), which is
  where the paper's ~1.25x gains for those formats come from.

Every function computes the true ``y = A @ x`` and returns it as
``KernelResult.output``; the CSR-VIA and CSB-VIA flows extract ``y`` from
the functional SSPM itself, so the scratchpad semantics are exercised
end-to-end.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.formats.csb import CSBMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.sellcs import SellCSigmaMatrix
from repro.formats.spc5 import SPC5Matrix
from repro.kernels import reference
from repro.kernels.common import (
    INDEX_BYTES,
    VALUE_BYTES,
    chunk_instr_count,
    make_core,
    make_via_core,
)
from repro.sim.backends import Backend
from repro.sim import KernelResult, MachineConfig, calibration as cal
from repro.via import Dest, Opcode, ViaConfig


def _check_x(matrix, x) -> np.ndarray:
    x = np.asarray(x, dtype=float)
    if x.shape != (matrix.cols,):
        raise ShapeError(f"x must have shape ({matrix.cols},), got {x.shape}")
    return x


# ---------------------------------------------------------------------------
# CSR
# ---------------------------------------------------------------------------
def spmv_csr_baseline(
    csr: CSRMatrix, x, machine: Optional[MachineConfig] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """Vectorized CSR SpMV (Algorithm 1 flow, Eigen-style).

    Per row chunk: stream ``col_idx``/``data``, gather ``x[col]``
    (Challenge 1), FMA, then a horizontal reduction and a scalar store per
    row.  The reduction tail is a true dependence chain, partially exposed.
    """
    x = _check_x(csr, x)
    core = make_core(machine, backend)
    rows = csr.rows
    a_rp = core.alloc("row_ptr", rows + 1, INDEX_BYTES)
    a_ci = core.alloc("col_idx", csr.nnz, INDEX_BYTES)
    a_dt = core.alloc("data", csr.nnz, VALUE_BYTES)
    a_x = core.alloc("x", csr.cols, VALUE_BYTES)
    a_y = core.alloc("y", rows, VALUE_BYTES)

    lengths = csr.row_lengths()
    n_chunks = chunk_instr_count(lengths, core.machine.vl)
    nonempty = int((lengths > 0).sum())

    core.load_stream(a_rp, 0, rows + 1)
    core.load_stream(a_ci, 0, csr.nnz)
    core.load_stream(a_dt, 0, csr.nnz)
    core.gather(a_x, csr.col_idx, n_instr=n_chunks)
    core.vector_op("fma", n_chunks)
    core.vector_op("reduce", nonempty)
    # the row sum feeds the scalar store and the loop-carried row pointer:
    # the reduce tail is exposed per row
    core.dependency_stall(nonempty * cal.VREDUCE_LATENCY)
    # the row accumulator is a loop-carried FMA dependence; unrolling with
    # multiple accumulators hides about half the latency
    core.dependency_stall(
        max(n_chunks - nonempty, 0) * cal.VFU_FMA_LATENCY / 2
    )
    core.scalar_ops(2 * rows + 2 * n_chunks)
    core.store_stream(a_y, 0, rows)

    return core.finalize("spmv_csr_baseline", output=csr.spmv_reference(x))


def spmv_csr_via(
    csr: CSRMatrix,
    x,
    machine: Optional[MachineConfig] = None,
    via_config: Optional[ViaConfig] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """CSR SpMV with VIA as output accumulator (Section VII-A).

    The gathers for ``x`` remain (CSR indices span the whole vector), but
    per-row reductions and output stores disappear: partial products are
    accumulated in the SSPM with ``vidxadd.d`` (destination SSPM), and the
    output vector is drained in row strips sized to the scratchpad.

    This flow runs *functionally through the SSPM*: the returned ``y`` is
    read back out of the scratchpad model.
    """
    x = _check_x(csr, x)
    core, dev = make_via_core(machine, via_config, backend)
    rows = csr.rows
    a_rp = core.alloc("row_ptr", rows + 1, INDEX_BYTES)
    a_ci = core.alloc("col_idx", csr.nnz, INDEX_BYTES)
    a_dt = core.alloc("data", csr.nnz, VALUE_BYTES)
    a_x = core.alloc("x", csr.cols, VALUE_BYTES)
    a_y = core.alloc("y", rows, VALUE_BYTES)

    lengths = csr.row_lengths()
    n_chunks = chunk_instr_count(lengths, core.machine.vl)

    core.load_stream(a_rp, 0, rows + 1)
    core.load_stream(a_ci, 0, csr.nnz)
    core.load_stream(a_dt, 0, csr.nnz)
    core.gather(a_x, csr.col_idx, n_instr=n_chunks)
    core.vector_op("fma", n_chunks)
    core.scalar_ops(2 * rows + 2 * n_chunks)

    entry_rows = np.repeat(np.arange(rows, dtype=np.int64), lengths)
    products = csr.data * x[csr.col_idx]

    strip = dev.config.sram_entries
    y = np.zeros(rows, dtype=float)
    for start in range(0, max(rows, 1), strip):
        stop = min(start + strip, rows)
        dev.vidxclear()
        mask = (entry_rows >= start) & (entry_rows < stop)
        if np.any(mask):
            dev.vidxadd(products[mask], entry_rows[mask] - start, dest=Dest.SSPM)
        # drain the strip back to the VRF and stream it to memory
        drained = dev.vidxadd(np.zeros(stop - start), np.arange(stop - start))
        y[start:stop] = drained
        core.store_stream(a_y, start, stop - start)

    return core.finalize(f"spmv_csr_via_{dev.config.name}", output=y)


# ---------------------------------------------------------------------------
# CSB
# ---------------------------------------------------------------------------
def spmv_csb_baseline(
    csb: CSBMatrix, x, machine: Optional[MachineConfig] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """Vectorized software CSB SpMV on a conventional machine.

    CSB's in-block indices are indexed-access poison on a plain vector ISA
    (Section II-B): per entry chunk the kernel must split the merged index
    (two vector ops) and gather ``x`` at the block's columns; and because
    AVX2 has no scatter, the per-entry partial-result update of ``y`` at
    arbitrary in-block rows falls back to scalar read-modify-write — extra
    work CSR does not pay, which is exactly why VIA's Figure 10 gains are
    largest for CSB.
    """
    x = _check_x(csb, x)
    core = make_core(machine, backend)
    a_hdr = core.alloc("block_hdr", 3 * max(csb.num_blocks, 1), INDEX_BYTES)
    a_ix = core.alloc("idx", csb.nnz, INDEX_BYTES)
    a_dt = core.alloc("data", csb.nnz, VALUE_BYTES)
    a_x = core.alloc("x", csb.cols, VALUE_BYTES)
    a_y = core.alloc("y", csb.rows, VALUE_BYTES)

    per_block = csb.nnz_per_block()
    n_chunks = chunk_instr_count(per_block, core.machine.vl)

    core.load_stream(a_hdr, 0, 3 * max(csb.num_blocks, 1))
    core.load_stream(a_ix, 0, csb.nnz)
    core.load_stream(a_dt, 0, csb.nnz)

    in_r, in_c = csb.split_idx(csb.idx)
    reps = np.diff(csb.block_ptr)
    global_rows = np.repeat(csb.block_row, reps) * csb.block_size + in_r
    global_cols = np.repeat(csb.block_col, reps) * csb.block_size + in_c

    core.vector_op("alu", 2 * n_chunks)  # merged-index split (shift + mask)
    core.gather(a_x, global_cols, n_instr=n_chunks)
    core.vector_op("fma", n_chunks)
    # AVX2 has no scatter: partial y updates are scalar read-modify-write
    core.scalar_load(a_y, global_rows, dependent=True)
    core.scalar_store(a_y, global_rows, dependent=True)
    core.scalar_ops(3 * csb.nnz)
    core.dependency_stall(csb.nnz * 2)  # y RMW chain within blocks
    core.scalar_ops(6 * max(csb.num_blocks, 1) + 2 * n_chunks)

    return core.finalize("spmv_csb_baseline", output=reference.spmv(csb, x))


def spmv_csb_via(
    csb: CSBMatrix,
    x,
    machine: Optional[MachineConfig] = None,
    via_config: Optional[ViaConfig] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """CSB SpMV on VIA — the paper's Algorithm 4, executed functionally.

    Per block: the input-vector chunk for the block column is loaded into
    the SSPM's first half (``vidxload.d``, skipped when the previous block
    shares the column); entries stream from memory and ``vidxblkmult.d``
    multiplies against the scratchpad and accumulates into the output half
    at ``offset = block_size``.  When the block row changes, the output
    chunk is drained to memory and its bitmap segment flash-cleared.
    """
    x = _check_x(csb, x)
    core, dev = make_via_core(machine, via_config, backend)
    beta = csb.block_size
    if 2 * beta > dev.config.sram_entries:
        raise ShapeError(
            f"CSB block size {beta} needs {2 * beta} SSPM entries; "
            f"{dev.config.name} has {dev.config.sram_entries}"
        )
    a_hdr = core.alloc("block_hdr", 3 * max(csb.num_blocks, 1), INDEX_BYTES)
    a_ix = core.alloc("idx", csb.nnz, INDEX_BYTES)
    a_dt = core.alloc("data", csb.nnz, VALUE_BYTES)
    a_x = core.alloc("x", csb.cols, VALUE_BYTES)
    a_y = core.alloc("y", csb.rows, VALUE_BYTES)

    core.load_stream(a_hdr, 0, 3 * max(csb.num_blocks, 1))
    dev.vidxclear()

    y = np.zeros(csb.rows, dtype=float)
    rows_n, cols_n = csb.shape
    current_col = -1
    current_row = -1

    def drain_row_chunk(block_row: int) -> None:
        r0 = block_row * beta
        h = min(beta, rows_n - r0)
        vals = dev.vidxadd(np.zeros(h), beta + np.arange(h))
        y[r0 : r0 + h] = vals
        core.store_stream(a_y, r0, h)
        dev.vidxclear(segment=(beta, h))

    for b in range(csb.num_blocks):
        br, bc = int(csb.block_row[b]), int(csb.block_col[b])
        if br != current_row:
            if current_row >= 0:
                drain_row_chunk(current_row)
            current_row = br
            current_col = -1  # bitmap clear invalidated nothing in x half,
            # but a new block row starts a fresh column sweep
        if bc != current_col:
            c0 = bc * beta
            w = min(beta, cols_n - c0)
            core.load_stream(a_x, c0, w)
            dev.vidxload(x[c0 : c0 + w], np.arange(w))
            current_col = bc
        lo, hi = int(csb.block_ptr[b]), int(csb.block_ptr[b + 1])
        core.load_stream(a_ix, lo, hi - lo)
        core.load_stream(a_dt, lo, hi - lo)
        dev.vidxblkmult(
            csb.data[lo:hi], csb.idx[lo:hi], idx_offset=csb.col_bits, offset=beta
        )
        core.scalar_ops(6)
    if current_row >= 0:
        drain_row_chunk(current_row)
    # rows in block rows with no stored blocks stay zero (y initialised)

    return core.finalize(f"spmv_csb_via_{dev.config.name}", output=y)


# ---------------------------------------------------------------------------
# SPC5
# ---------------------------------------------------------------------------
def spmv_spc5_baseline(
    spc5: SPC5Matrix, x, machine: Optional[MachineConfig] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """SPC5 (1rVc) SpMV: mask-expanded blocks, no gathers.

    Per block: scalar header decode, a plain (possibly unaligned) vector
    load of ``x[col0 : col0+VL]``, a mask expansion permute and an FMA.
    Rows finish with a horizontal reduction and a store — SPC5 avoids
    gathers but keeps the per-row reduction tail.
    """
    x = _check_x(spc5, x)
    core = make_core(machine, backend)
    nb = max(spc5.num_blocks, 1)
    a_hdr = core.alloc("hdr", 3 * nb, INDEX_BYTES)
    a_dt = core.alloc("data", spc5.nnz, VALUE_BYTES)
    a_x = core.alloc("x", spc5.cols, VALUE_BYTES)
    a_y = core.alloc("y", spc5.rows, VALUE_BYTES)

    core.load_stream(a_hdr, 0, 3 * nb)
    core.load_stream(a_dt, 0, spc5.nnz)
    core.load_windows(a_x, spc5.block_col, min(spc5.vl, core.machine.vl))
    core.vector_op("permute", spc5.num_blocks)  # mask expansion
    core.vector_op("fma", spc5.num_blocks)
    rows_touched = int(np.unique(spc5.block_row).size)
    core.vector_op("reduce", rows_touched)
    core.dependency_stall(rows_touched * cal.VREDUCE_LATENCY / 2)
    # blocks of the same row chain through the register accumulator
    core.dependency_stall(
        max(spc5.num_blocks - rows_touched, 0) * cal.VFU_FMA_LATENCY / 2
    )
    core.scalar_ops(4 * nb + 2 * spc5.rows)
    core.store_stream(a_y, 0, spc5.rows)

    return core.finalize("spmv_spc5_baseline", output=reference.spmv(spc5, x))


def spmv_spc5_via(
    spc5: SPC5Matrix,
    x,
    machine: Optional[MachineConfig] = None,
    via_config: Optional[ViaConfig] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """SPC5 SpMV with VIA output accumulation.

    The block flow matches the baseline, but the per-row reduction and the
    output store-load traffic are replaced by ``vidxadd.d`` accumulation in
    the SSPM, drained in row strips.  (Timing uses the bulk FIVU account;
    the functional result is computed in numpy — the identical SSPM
    semantics are exercised end-to-end by the CSR/CSB VIA flows.)
    """
    x = _check_x(spc5, x)
    core, dev = make_via_core(machine, via_config, backend)
    nb = max(spc5.num_blocks, 1)
    a_hdr = core.alloc("hdr", 3 * nb, INDEX_BYTES)
    a_dt = core.alloc("data", spc5.nnz, VALUE_BYTES)
    a_x = core.alloc("x", spc5.cols, VALUE_BYTES)
    a_y = core.alloc("y", spc5.rows, VALUE_BYTES)

    core.load_stream(a_hdr, 0, 3 * nb)
    core.load_stream(a_dt, 0, spc5.nnz)
    core.load_windows(a_x, spc5.block_col, min(spc5.vl, core.machine.vl))
    core.vector_op("permute", spc5.num_blocks)
    core.vector_op("fma", spc5.num_blocks)
    core.scalar_ops(4 * nb)
    # one in-SSPM accumulate per block (all lanes share the block's row)
    dev.account_bulk(
        Opcode.VIDXADD, spc5.num_blocks * core.machine.vl, dest=Dest.SSPM
    )
    # strip drains: read out + stream to memory
    strips = -(-max(spc5.rows, 1) // dev.config.sram_entries)
    dev.account_bulk(Opcode.VIDXADD, spc5.rows, dest=Dest.VRF)
    core.scalar_ops(4 * strips)
    core.store_stream(a_y, 0, spc5.rows)

    return core.finalize(
        f"spmv_spc5_via_{dev.config.name}", output=reference.spmv(spc5, x)
    )


# ---------------------------------------------------------------------------
# Sell-C-sigma
# ---------------------------------------------------------------------------
def spmv_sellcs_baseline(
    m: SellCSigmaMatrix, x, machine: Optional[MachineConfig] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """Sell-C-sigma SpMV: chunk-column gathers, permuted scatter stores.

    Per chunk column: stream padded ``col_idx``/``data``, gather ``x``
    across the C row lanes, FMA into the accumulator vector.  Per chunk:
    scatter the C accumulated outputs to ``y[perm]`` (the local sorting
    permutes the output rows).  Padding lanes do wasted work — the format's
    documented inefficiency (Section II-C).
    """
    x = _check_x(m, x)
    core = make_core(machine, backend)
    padded = max(m.padded_entries, 1)
    a_ci = core.alloc("col_idx", padded, INDEX_BYTES)
    a_dt = core.alloc("data", padded, VALUE_BYTES)
    a_meta = core.alloc("meta", 2 * max(m.num_chunks, 1) + m.rows, INDEX_BYTES)
    a_x = core.alloc("x", m.cols, VALUE_BYTES)
    a_y = core.alloc("y", m.rows, VALUE_BYTES)

    core.load_stream(a_meta, 0, 2 * max(m.num_chunks, 1) + m.rows)
    core.load_stream(a_ci, 0, padded)
    core.load_stream(a_dt, 0, padded)

    # one gather + one FMA per padded chunk column
    total_cols = int(m.chunk_len.sum())
    core.gather(a_x, m.col_idx, n_instr=max(total_cols, 1))
    core.vector_op("fma", total_cols)
    core.scatter(a_y, m.perm, n_instr=m.num_chunks)
    core.scalar_ops(4 * max(m.num_chunks, 1) + 2 * total_cols)

    return core.finalize("spmv_sellcs_baseline", output=reference.spmv(m, x))


def spmv_sellcs_via(
    m: SellCSigmaMatrix,
    x,
    machine: Optional[MachineConfig] = None,
    via_config: Optional[ViaConfig] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """Sell-C-sigma SpMV with VIA output accumulation.

    Gathers for ``x`` remain; the permuted output scatter (and its
    store-load traffic) becomes ``vidxadd.d`` into the SSPM keyed by the
    original row index, drained sequentially at the end.
    """
    x = _check_x(m, x)
    core, dev = make_via_core(machine, via_config, backend)
    padded = max(m.padded_entries, 1)
    a_ci = core.alloc("col_idx", padded, INDEX_BYTES)
    a_dt = core.alloc("data", padded, VALUE_BYTES)
    a_meta = core.alloc("meta", 2 * max(m.num_chunks, 1) + m.rows, INDEX_BYTES)
    a_x = core.alloc("x", m.cols, VALUE_BYTES)
    a_y = core.alloc("y", m.rows, VALUE_BYTES)

    core.load_stream(a_meta, 0, 2 * max(m.num_chunks, 1) + m.rows)
    core.load_stream(a_ci, 0, padded)
    core.load_stream(a_dt, 0, padded)

    total_cols = int(m.chunk_len.sum())
    core.gather(a_x, m.col_idx, n_instr=max(total_cols, 1))
    core.vector_op("fma", total_cols)
    core.scalar_ops(4 * max(m.num_chunks, 1) + 2 * total_cols)
    # accumulate chunk outputs in the SSPM instead of scattering to memory
    dev.account_bulk(
        Opcode.VIDXADD, m.num_chunks * core.machine.vl, dest=Dest.SSPM
    )
    dev.account_bulk(Opcode.VIDXADD, m.rows, dest=Dest.VRF)
    core.store_stream(a_y, 0, m.rows)

    return core.finalize(
        f"spmv_sellcs_via_{dev.config.name}", output=reference.spmv(m, x)
    )


#: format name -> (builder kwargs hint, baseline fn, via fn)
SPMV_VARIANTS = {
    "csr": (spmv_csr_baseline, spmv_csr_via),
    "csb": (spmv_csb_baseline, spmv_csb_via),
    "spc5": (spmv_spc5_baseline, spmv_spc5_via),
    "sellcs": (spmv_sellcs_baseline, spmv_sellcs_via),
}
