"""Sparse matrix addition (SpMA) kernels — paper Algorithm 2 and VII-B.

``C = A + B`` with CSR operands.  The baseline is the Eigen-style merge:
two sorted index streams compared element by element, with data-dependent
branches the predictor cannot learn.  The VIA variant loads one row into
the CAM-mode SSPM, accumulates the other row with ``vidxadd.c`` (index
matching in hardware, misses insert in order), then drains the result row
with ``vidxcount`` + ``vidxmov`` — no comparisons, no branches.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels.common import (
    INDEX_BYTES,
    VALUE_BYTES,
    chunk_instr_count,
    make_core,
    make_via_core,
)
from repro.sim.backends import Backend
from repro.sim import KernelResult, MachineConfig, calibration as cal
from repro.via import Dest, Mode, ViaConfig


def _check_pair(a: CSRMatrix, b: CSRMatrix) -> None:
    if a.shape != b.shape:
        raise ShapeError(f"SpMA operands differ in shape: {a.shape} vs {b.shape}")


def spma_csr_baseline(
    a: CSRMatrix, b: CSRMatrix, machine: Optional[MachineConfig] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """Merge-based CSR SpMA (Algorithm 2, Eigen-style).

    Per output row the two sorted column streams are merged: every step
    compares the heads, consumes one (or both on a match) and appends to
    ``C``.  The comparison outcome depends on unrelated index streams, so a
    fixed fraction of the branches mispredict (see calibration).
    """
    _check_pair(a, b)
    core = make_core(machine, backend)
    rows = a.rows
    a_arr = core.alloc("a_entries", a.nnz, INDEX_BYTES + VALUE_BYTES)
    b_arr = core.alloc("b_entries", b.nnz, INDEX_BYTES + VALUE_BYTES)
    a_rp = core.alloc("a_row_ptr", rows + 1, INDEX_BYTES)
    b_rp = core.alloc("b_row_ptr", rows + 1, INDEX_BYTES)

    result = _spma_reference(a, b)
    c_arr = core.alloc("c_entries", max(result.nnz, 1), INDEX_BYTES + VALUE_BYTES)

    core.load_stream(a_rp, 0, rows + 1)
    core.load_stream(b_rp, 0, rows + 1)
    core.load_stream(a_arr, 0, a.nnz)
    core.load_stream(b_arr, 0, b.nnz)

    # merge work: one iteration per consumed input entry (compare, select,
    # pointer advances, bounds check, result append) plus per-row result
    # setup — the Eigen-style software cost model from the calibration file
    steps = a.nnz + b.nnz
    core.scalar_ops(cal.SPMA_STEP_UOPS * steps + cal.SPMA_ROW_UOPS * rows)
    core.branches(steps, cal.SPMA_MERGE_MISPREDICT)
    core.branches(steps, cal.SPMA_INSERT_MISPREDICT)  # result-append checks
    core.branches(2 * rows, cal.SPMA_MERGE_MISPREDICT)  # row loop exits
    core.store_stream(c_arr, 0, result.nnz)

    return core.finalize("spma_csr_baseline", output=result)


def spma_via(
    a: CSRMatrix,
    b: CSRMatrix,
    machine: Optional[MachineConfig] = None,
    via_config: Optional[ViaConfig] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """SpMA on VIA: CAM-mode index matching (Section III-B2).

    Rows are packed into SSPM *fills*: as many consecutive rows as the
    index table holds are processed per ``vidxclear`` (the tracked index
    is the linearized ``row * cols + col`` key, which keeps VL lanes from
    different rows independent).  Per fill: ``vidxload.c`` inserts the A
    entries; ``vidxadd.c`` streams the B entries through the index table —
    matching keys accumulate, new keys insert in order; ``vidxcount`` +
    ``vidxmov`` drain the result entries to memory.

    Larger SSPMs pack more rows per fill and amortize the fill overheads —
    the capacity effect the paper's Figure 9 measures for SpMA.  Single
    rows wider than the index table fall back to column-segment tiling.

    The flow runs functionally through the SSPM: the returned matrix is
    assembled from the scratchpad drains.
    """
    _check_pair(a, b)
    core, dev = make_via_core(machine, via_config, backend)
    rows, cols = a.shape
    a_arr = core.alloc("a_entries", a.nnz, INDEX_BYTES + VALUE_BYTES)
    b_arr = core.alloc("b_entries", b.nnz, INDEX_BYTES + VALUE_BYTES)
    a_rp = core.alloc("a_row_ptr", rows + 1, INDEX_BYTES)
    b_rp = core.alloc("b_row_ptr", rows + 1, INDEX_BYTES)

    core.load_stream(a_rp, 0, rows + 1)
    core.load_stream(b_rp, 0, rows + 1)
    core.load_stream(a_arr, 0, a.nnz)
    core.load_stream(b_arr, 0, b.nnz)

    cap = dev.config.cam_entries
    out_rows, out_cols, out_vals = [], [], []
    total_out = 0

    def flush(batch_rows) -> None:
        nonlocal total_out
        if not batch_rows:
            return
        dev.vidxclear()
        for r in batch_rows:
            ac, av = a.row_slice(r)
            bc, bv = b.row_slice(r)
            if ac.size:
                dev.vidxload(av, r * cols + ac, Mode.CAM)
            if bc.size:
                dev.vidxadd(bv, r * cols + bc, mode=Mode.CAM, dest=Dest.SSPM)
            core.scalar_ops(6)
        n = dev.vidxcount()
        if n:
            keys, vals = dev.vidxmov(0, n)
            # decode linearized keys back to (row, col): shift + mask class
            core.vector_op("alu", 2 * (-(-n // core.machine.vl)))
            out_rows.append(keys // cols)
            out_cols.append(keys % cols)
            out_vals.append(vals)
            total_out += n
        core.scalar_ops(4)

    a_len, b_len = a.row_lengths(), b.row_lengths()
    batch, batch_fill = [], 0
    for r in range(rows):
        upper = int(a_len[r] + b_len[r])  # union upper bound
        if upper == 0:
            core.scalar_ops(2)
            continue
        if upper > cap:
            # a single row wider than the index table: segment its columns
            flush(batch)
            batch, batch_fill = [], 0
            ac, av = a.row_slice(r)
            bc, bv = b.row_slice(r)
            for a_seg, b_seg in _column_segments(ac, bc, cap):
                dev.vidxclear()
                if a_seg.size:
                    dev.vidxload(av[a_seg], ac[a_seg], Mode.CAM)
                if b_seg.size:
                    dev.vidxadd(bv[b_seg], bc[b_seg], mode=Mode.CAM, dest=Dest.SSPM)
                n = dev.vidxcount()
                idx, vals = dev.vidxmov(0, n)
                out_rows.append(np.full(n, r, dtype=np.int64))
                out_cols.append(idx)
                out_vals.append(vals)
                total_out += n
            core.scalar_ops(6)
            continue
        if batch_fill + upper > cap:
            flush(batch)
            batch, batch_fill = [], 0
        batch.append(r)
        batch_fill += upper
    flush(batch)

    c_arr = core.alloc("c_entries", max(total_out, 1), INDEX_BYTES + VALUE_BYTES)
    core.store_stream(c_arr, 0, total_out)

    if out_rows:
        result = COOMatrix(
            a.shape,
            np.concatenate(out_rows),
            np.concatenate(out_cols),
            np.concatenate(out_vals),
        )
    else:
        result = COOMatrix.empty(a.shape)
    return core.finalize(f"spma_via_{dev.config.name}", output=CSRMatrix.from_coo(result))


def _spma_reference(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    from repro.kernels import reference

    return CSRMatrix.from_coo(reference.spma(a, b))


def _column_segments(ac: np.ndarray, bc: np.ndarray, cap: int):
    """Split two sorted column-index rows so each segment's union fits.

    Yields ``(a_positions, b_positions)`` index arrays.  The common case —
    the whole union fits the index table — yields a single full segment.
    """
    union = np.union1d(ac, bc)
    if union.size <= cap:
        yield np.arange(ac.size), np.arange(bc.size)
        return
    for lo in range(0, union.size, cap):
        seg_cols = union[lo : lo + cap]
        lo_col, hi_col = seg_cols[0], seg_cols[-1]
        a_pos = np.flatnonzero((ac >= lo_col) & (ac <= hi_col))
        b_pos = np.flatnonzero((bc >= lo_col) & (bc <= hi_col))
        yield a_pos, b_pos
