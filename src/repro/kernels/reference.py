"""Golden (untimed) kernel implementations used for functional checking.

Every timed kernel in this package computes its real output while narrating
its execution to the machine model; tests and the harness's paranoia mode
compare those outputs against the plain-numpy implementations here.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.formats.base import SparseFormat
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix


def spmv(matrix: SparseFormat, x: np.ndarray) -> np.ndarray:
    """Golden ``y = A @ x``."""
    csr = CSRMatrix.from_coo(matrix.to_coo())
    return csr.spmv_reference(np.asarray(x, dtype=float))


def spma(a: SparseFormat, b: SparseFormat) -> COOMatrix:
    """Golden ``C = A + B`` for same-shape sparse operands."""
    if a.shape != b.shape:
        raise ShapeError(f"SpMA operands differ in shape: {a.shape} vs {b.shape}")
    ca, cb = a.to_coo(), b.to_coo()
    return COOMatrix(
        a.shape,
        np.concatenate([ca.row, cb.row]),
        np.concatenate([ca.col, cb.col]),
        np.concatenate([ca.data, cb.data]),
    )


def spmm(a: SparseFormat, b: SparseFormat) -> COOMatrix:
    """Golden ``C = A @ B`` (dense product of the sparse operands)."""
    if a.shape[1] != b.shape[0]:
        raise ShapeError(
            f"SpMM inner dimensions differ: {a.shape} @ {b.shape}"
        )
    dense = a.to_dense() @ b.to_dense()
    return COOMatrix.from_dense(dense)


def histogram(keys: np.ndarray, num_bins: int) -> np.ndarray:
    """Golden histogram: count occurrences of each key in ``[0, num_bins)``."""
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size and (keys.min() < 0 or keys.max() >= num_bins):
        raise ShapeError("histogram keys out of range")
    return np.bincount(keys, minlength=num_bins).astype(np.int64)


def gaussian_filter(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Golden 'valid' 2-D convolution (correlation) of image with kernel."""
    image = np.asarray(image, dtype=float)
    kernel = np.asarray(kernel, dtype=float)
    if image.ndim != 2 or kernel.ndim != 2:
        raise ShapeError("image and kernel must be 2-D")
    kh, kw = kernel.shape
    oh, ow = image.shape[0] - kh + 1, image.shape[1] - kw + 1
    if oh <= 0 or ow <= 0:
        raise ShapeError("kernel larger than image")
    out = np.zeros((oh, ow))
    for di in range(kh):
        for dj in range(kw):
            out += kernel[di, dj] * image[di : di + oh, dj : dj + ow]
    return out


def gaussian_kernel_4x4() -> np.ndarray:
    """The paper's 4x4 Gaussian convolution filter (binomial weights)."""
    row = np.array([1.0, 3.0, 3.0, 1.0])
    k = np.outer(row, row)
    return k / k.sum()
