"""Sparse matrix-matrix multiplication (SpMM) — paper Algorithm 3, VII-C.

``C = A @ B`` as the classic inner-product formulation: ``A`` in CSR
(row-major traversal), ``B`` in CSC (column-major traversal).  For every
non-empty (row, column) pair the kernel must *index match* the row's
column indices against the column's row indices — the paper's Challenge 2.

Baseline: a sorted two-pointer merge per pair (how a vector-ISA CPU
actually finds matches in sorted streams), with data-dependent branches and
a full re-stream of ``B`` per row of ``A``.

VIA: the row of ``A`` is loaded once into the CAM-mode SSPM, then every
column of ``B`` streams through ``vidxmult.c`` — the index table resolves
the matching in hardware, unmatched lanes contribute zero, and the vector
unit reduces the products (Figure 4).

Because the pair loop touches ``rows(A) x cols(B)`` combinations, the
timing here is narrated with aggregate counts (numpy reductions over the
row/column length vectors) and the functional result is computed with the
golden reference — the CAM semantics themselves are exercised end-to-end
by the SpMA kernel and the VIA unit tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels import reference
from repro.kernels.common import (
    INDEX_BYTES,
    VALUE_BYTES,
    make_core,
    make_via_core,
)
from repro.sim.backends import Backend
from repro.sim import KernelResult, MachineConfig, calibration as cal
from repro.via import Mode, Opcode, ViaConfig


def _check_pair(a: CSRMatrix, b: CSCMatrix) -> None:
    if a.shape[1] != b.shape[0]:
        raise ShapeError(f"SpMM inner dimensions differ: {a.shape} @ {b.shape}")


def spmm_csr_baseline(
    a: CSRMatrix, b: CSCMatrix, machine: Optional[MachineConfig] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """Inner-product SpMM with software index matching (Algorithm 3).

    Work model per non-empty (row i, column j) pair: a two-pointer merge
    over the ``len(row_i) + len(col_j)`` sorted indices, each step a
    compare/advance with an unpredictable branch.  Memory: ``A``'s row
    streams once; all of ``B`` re-streams once per non-empty row of ``A``
    (served from whatever cache level holds it).
    """
    _check_pair(a, b)
    core = make_core(machine, backend)
    rows = a.rows
    a_arr = core.alloc("a_entries", a.nnz, INDEX_BYTES + VALUE_BYTES)
    a_rp = core.alloc("a_row_ptr", rows + 1, INDEX_BYTES)
    b_arr = core.alloc("b_entries", b.nnz, INDEX_BYTES + VALUE_BYTES)
    b_cp = core.alloc("b_col_ptr", b.cols + 1, INDEX_BYTES)

    row_len = a.row_lengths()
    col_len = b.col_lengths()
    ne_rows = int((row_len > 0).sum())
    ne_cols = int((col_len > 0).sum())

    core.load_stream(a_rp, 0, rows + 1)
    core.load_stream(a_arr, 0, a.nnz)
    core.bulk_stream(b_cp, passes=max(ne_rows, 1))
    core.bulk_stream(b_arr, passes=max(ne_rows, 1))

    # sum over non-empty pairs of (row_len + col_len)
    merge_steps = int(a.nnz) * ne_cols + ne_rows * int(b.nnz)
    core.scalar_ops(cal.SPMM_STEP_UOPS * merge_steps + 4 * ne_rows * ne_cols)
    core.branches(merge_steps, cal.SPMM_SEARCH_MISPREDICT)

    result = CSRMatrix.from_coo(reference.spmm(a, b))
    c_arr = core.alloc("c_entries", max(result.nnz, 1), INDEX_BYTES + VALUE_BYTES)
    core.scalar_ops(2 * result.nnz)
    core.store_stream(c_arr, 0, result.nnz)

    return core.finalize("spmm_csr_baseline", output=result)


def spmm_via(
    a: CSRMatrix,
    b: CSCMatrix,
    machine: Optional[MachineConfig] = None,
    via_config: Optional[ViaConfig] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """SpMM on VIA: hardware index matching in the CAM-mode SSPM (Fig. 4).

    Per non-empty row of ``A``: ``vidxclear`` + ``vidxload.c`` of the row
    (its column indices become the tracked indices).  Then every non-empty
    column of ``B`` streams through ``vidxmult.c`` in VL chunks: matched
    lanes return ``a_val * b_val``, unmatched return zero, and a vector
    reduction accumulates the pair's dot product.  Rows longer than the
    index table are tiled, multiplying the number of ``B`` passes.
    """
    _check_pair(a, b)
    core, dev = make_via_core(machine, via_config, backend)
    rows = a.rows
    a_arr = core.alloc("a_entries", a.nnz, INDEX_BYTES + VALUE_BYTES)
    a_rp = core.alloc("a_row_ptr", rows + 1, INDEX_BYTES)
    # B's indices and values stream as separate arrays (as CSC stores them)
    b_idx = core.alloc("b_row_idx", b.nnz, INDEX_BYTES)
    b_dat = core.alloc("b_data", b.nnz, VALUE_BYTES)
    b_cp = core.alloc("b_col_ptr", b.cols + 1, INDEX_BYTES)

    row_len = a.row_lengths()
    col_len = b.col_lengths()
    ne_cols = int((col_len > 0).sum())
    cap = dev.config.cam_entries
    # rows longer than the index table tile into ceil(len/cap) passes
    tiles_per_row = np.where(row_len > 0, -(-row_len // cap), 0)
    total_passes = int(tiles_per_row.sum())

    core.load_stream(a_rp, 0, rows + 1)
    core.load_stream(a_arr, 0, a.nnz)
    core.bulk_stream(b_cp, passes=max(total_passes, 1))
    core.bulk_stream(b_idx, passes=max(total_passes, 1))
    core.bulk_stream(b_dat, passes=max(total_passes, 1))

    # row loads into the CAM (once per tile; a.nnz total elements)
    dev.account_bulk(Opcode.VIDXLOAD, int(a.nnz), mode=Mode.CAM)
    # every B column streams through vidxmult.c once per row pass
    dev.account_bulk(
        Opcode.VIDXMULT, total_passes * int(b.nnz), mode=Mode.CAM
    )
    result = CSRMatrix.from_coo(reference.spmm(a, b))
    # one reduction + scalar store per produced output entry
    core.vector_op("reduce", result.nnz)
    core.scalar_ops(4 * total_passes * ne_cols + 2 * result.nnz)

    c_arr = core.alloc("c_entries", max(result.nnz, 1), INDEX_BYTES + VALUE_BYTES)
    core.store_stream(c_arr, 0, result.nnz)

    return core.finalize(f"spmm_via_{dev.config.name}", output=result)
