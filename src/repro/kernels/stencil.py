"""Stencil (Gaussian convolution) kernels — paper Section IV-F2 and VII-D.

The paper's representative stencil is a 4x4 Gaussian filter over 2-D
images (single-precision pixels, so the 32-bit vector length applies).
Both implementations use *access-pattern vectors* to address the window of
each output pixel (the paper's VR1/VR2 vectors, Algorithm 6); the
difference is where the pattern reads are served:

* **baseline (VIA-oblivious)** — the pattern reads go to memory as
  gathers: ``ceil(kh*kw / VL32)`` gather instructions per output window,
  plus the multiplies, the horizontal reduction and the output store.  The
  gathered lines are L1-resident (sliding windows reuse heavily), but the
  gather instructions' fixed serialization cost dominates — the paper's
  Challenge 1 in stencil clothing.
* **VIA** — the filter and the current image segment live in the SSPM;
  pattern reads become ``vidxmult.d`` scratchpad accesses (``ceil(VL /
  ports)`` cycles instead of a 22-cycle gather), and output pixels
  accumulate in the scratchpad until the segment drains.

Images larger than the SSPM process in row segments with a ``kh - 1`` row
halo re-loaded per segment, which the timing accounts for.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.kernels import reference
from repro.kernels.common import make_core, make_via_core
from repro.sim.backends import Backend
from repro.sim import KernelResult, MachineConfig, calibration as cal
from repro.via import Dest, Opcode, ViaConfig

#: pixels are single-precision
PIXEL_BYTES = 4


def _check(image, kernel):
    image = np.asarray(image, dtype=float)
    kernel = np.asarray(kernel, dtype=float)
    if image.ndim != 2 or kernel.ndim != 2:
        raise ShapeError("image and kernel must be 2-D")
    if kernel.shape[0] > image.shape[0] or kernel.shape[1] > image.shape[1]:
        raise ShapeError("kernel larger than image")
    return image, kernel


def stencil_vector_baseline(
    image, kernel=None, machine: Optional[MachineConfig] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """Gather-based vectorized convolution (VIA-oblivious Algorithm 6).

    Per output window: the access-pattern vector gathers the window pixels
    from memory, the filter multiplies them, a horizontal reduction
    produces the pixel and a store writes it out.  The reduce-store tail is
    a dependence chain, partially exposed.
    """
    image, kernel = _check(
        image, kernel if kernel is not None else reference.gaussian_kernel_4x4()
    )
    core = make_core(machine, backend)
    h, w = image.shape
    kh, kw = kernel.shape
    oh, ow = h - kh + 1, w - kw + 1
    outputs = oh * ow
    vl = core.machine.vl32
    ksize = kh * kw
    window_chunks = -(-ksize // vl)

    a_img = core.alloc("image", h * w, PIXEL_BYTES)
    a_out = core.alloc("out", max(outputs, 1), PIXEL_BYTES)
    a_k = core.alloc("kernel", ksize, PIXEL_BYTES)

    core.load_stream(a_k, 0, ksize)
    # the image streams in once; window re-reads stay L1-resident and are
    # billed through the gathers' fixed serialization cost below
    core.load_stream(a_img, 0, h * w)
    core.gather_serial(outputs * window_chunks, vl)
    core.vector_op("fma", outputs * window_chunks)
    core.vector_op("reduce", outputs)
    core.dependency_stall(outputs * cal.VREDUCE_LATENCY / 2)
    core.scalar_ops(4 * outputs)
    core.store_stream(a_out, 0, outputs)

    return core.finalize(
        "stencil_vector", output=reference.gaussian_filter(image, kernel)
    )


def stencil_via(
    image,
    kernel=None,
    machine: Optional[MachineConfig] = None,
    via_config: Optional[ViaConfig] = None,
    *,
    functional: Optional[bool] = None,
    backend: Optional[Backend] = None,
) -> KernelResult:
    """Stencil on VIA (Algorithm 6).

    The filter is stored in the SSPM once; the image streams through in row
    segments sized to the scratchpad (with a ``kh - 1`` row halo re-loaded
    per segment).  Per output window the pattern reads are ``vidxmult.d``
    scratchpad accesses; the window reduction stays in the vector unit and
    output pixels accumulate in the SSPM (one ``vidxadd.d`` per output-row
    chunk) until the segment drains to memory.

    ``functional=True`` routes everything through the functional SSPM
    (default for small images); ``False`` uses bulk FIVU accounting with
    the golden result (identical timing, used for the paper-size sweeps).
    """
    image, kernel = _check(
        image, kernel if kernel is not None else reference.gaussian_kernel_4x4()
    )
    core, dev = make_via_core(machine, via_config, backend)
    h, w = image.shape
    kh, kw = kernel.shape
    oh, ow = h - kh + 1, w - kw + 1
    outputs = oh * ow
    vl = core.machine.vl32
    dev.vl_override = vl  # 4-byte pixels: 8 lanes per VIA op
    ksize = kh * kw
    window_chunks = -(-ksize // vl)
    if functional is None:
        functional = outputs <= 1_024

    a_img = core.alloc("image", h * w, PIXEL_BYTES)
    a_out = core.alloc("out", max(outputs, 1), PIXEL_BYTES)
    a_k = core.alloc("kernel", ksize, PIXEL_BYTES)

    entries = dev.config.sram_entries
    # layout: [0, ksize) filter | [img_base, +seg_in*w) image segment
    #         | [out_base, +seg_out*ow) output accumulator
    max_out_rows = ((entries - ksize) // max(w, 1) - (kh - 1)) // 2
    if max_out_rows < 1:
        raise ShapeError(
            f"image rows of width {w} do not fit the {dev.config.name} SSPM"
        )
    img_base = ksize
    out_base = ksize + (max_out_rows + kh - 1) * w

    core.load_stream(a_k, 0, ksize)
    dev.vidxclear()
    dev.vidxload(kernel.ravel(), np.arange(ksize))

    out = np.zeros((oh, ow), dtype=float)
    filt = kernel.ravel()
    row0 = 0
    while row0 < oh:
        seg_out_rows = min(max_out_rows, oh - row0)
        seg_in_rows = seg_out_rows + kh - 1
        n_out = seg_out_rows * ow
        core.load_stream(a_img, row0 * w, seg_in_rows * w)
        if functional:
            seg = image[row0 : row0 + seg_in_rows].ravel()
            dev.vidxload(seg, img_base + np.arange(seg.size))
            for oi in range(seg_out_rows):
                row_pixels = np.empty(ow)
                for oj in range(ow):
                    win_idx = (
                        img_base
                        + (oi + np.arange(kh))[:, None] * w
                        + (oj + np.arange(kw))[None, :]
                    ).ravel()
                    prods = dev.vidxmult(filt, win_idx, dest=Dest.VRF)
                    core.vector_op("fma", window_chunks)
                    core.vector_op("reduce", 1)
                    row_pixels[oj] = float(prods.sum())
                dev.vidxadd(
                    row_pixels,
                    out_base + oi * ow + np.arange(ow),
                    dest=Dest.SSPM,
                )
                out[row0 + oi] = row_pixels
            drained = dev.vidxadd(np.zeros(n_out), out_base + np.arange(n_out))
            np.testing.assert_allclose(
                drained, out[row0 : row0 + seg_out_rows].ravel()
            )
            dev.vidxclear(segment=(out_base, n_out))
        else:
            dev.account_bulk(Opcode.VIDXLOAD, seg_in_rows * w)
            dev.account_bulk(Opcode.VIDXMULT, ksize * n_out)
            core.vector_op("fma", window_chunks * n_out)
            core.vector_op("reduce", n_out)
            dev.account_bulk(Opcode.VIDXADD, n_out, dest=Dest.SSPM)
            dev.account_bulk(Opcode.VIDXADD, n_out, dest=Dest.VRF)
        core.store_stream(a_out, row0 * ow, n_out)
        core.scalar_ops(4 * seg_out_rows + 2 * n_out)
        row0 += seg_out_rows
    if not functional:
        out = reference.gaussian_filter(image, kernel)

    return core.finalize(f"stencil_via_{dev.config.name}", output=out)
