"""SPC5-style row-block format — Section V-B baseline (Bramas et al.).

SPC5 packs the non-zeros of each row into blocks of at most ``vl``
consecutive *column positions*, described by a start column and a bitmask of
occupied positions.  Unlike zero-padded formats it stores only the actual
values; the mask tells the vector unit which lanes are active.  This is the
``1rVc`` flavour of SPC5 (one row, ``vl`` columns per block), the variant the
SPC5 authors report as the best general performer for AVX-512.

Arrays
------
* ``block_row``   — row of each block;
* ``block_col``   — first column position covered by each block;
* ``block_mask``  — ``vl``-bit occupancy mask (bit *i* set means column
  ``block_col + i`` holds a stored value);
* ``block_ptr``   — start of each block's values in ``data``;
* ``data``        — stored values, block-major, column order within a block.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import (
    INDEX_DTYPE,
    SparseFormat,
    as_index_array,
    as_value_array,
    check_shape,
)
from repro.formats.coo import COOMatrix

DEFAULT_VL = 8


class SPC5Matrix(SparseFormat):
    """SPC5 ``1rVc`` row-block matrix with per-block occupancy masks."""

    format_name = "spc5"

    def __init__(self, shape, vl, block_row, block_col, block_mask, block_ptr, data):
        self._shape = check_shape(shape)
        self._vl = int(vl)
        if self._vl <= 0 or self._vl > 64:
            raise FormatError(f"vl must be in [1, 64], got {vl}")
        self._block_row = as_index_array(block_row, "block_row")
        self._block_col = as_index_array(block_col, "block_col")
        self._block_mask = as_index_array(block_mask, "block_mask")
        self._block_ptr = as_index_array(block_ptr, "block_ptr")
        self._data = as_value_array(data, "data")
        self._validate()

    def _validate(self) -> None:
        rows, cols = self._shape
        nb = self._block_row.size
        if not (self._block_col.size == self._block_mask.size == nb):
            raise FormatError("block arrays must have equal lengths")
        if self._block_ptr.size != nb + 1:
            raise FormatError(
                f"block_ptr must have length num_blocks+1={nb + 1}, "
                f"got {self._block_ptr.size}"
            )
        if self._block_ptr.size and self._block_ptr[0] != 0:
            raise FormatError("block_ptr[0] must be 0")
        if np.any(np.diff(self._block_ptr) < 0):
            raise FormatError("block_ptr must be non-decreasing")
        if self._block_ptr.size and self._block_ptr[-1] != self._data.size:
            raise FormatError("block_ptr[-1] does not match data length")
        if nb:
            if self._block_row.min() < 0 or self._block_row.max() >= rows:
                raise FormatError("block_row out of range")
            if self._block_col.min() < 0 or self._block_col.max() >= cols:
                raise FormatError("block_col out of range")
            if self._block_mask.min() <= 0:
                raise FormatError("empty blocks (mask == 0) must not be stored")
            if self._block_mask.max() >= (1 << self._vl):
                raise FormatError(f"block_mask wider than vl={self._vl} bits")
        pops = _popcount(self._block_mask)
        if not np.array_equal(pops, np.diff(self._block_ptr)):
            raise FormatError("mask popcounts disagree with block_ptr extents")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, *, vl: int = DEFAULT_VL) -> "SPC5Matrix":
        vl = int(vl)
        if vl <= 0 or vl > 64:
            raise FormatError(f"vl must be in [1, 64], got {vl}")
        if coo.nnz == 0:
            return cls(coo.shape, vl, [], [], [], [0], [])
        # COO canonical order is row-major, col-minor: exactly block order.
        row, col, data = coo.row, coo.col, coo.data
        block_rows, block_cols, block_masks, block_ptr = [], [], [], [0]
        i, n = 0, row.size
        while i < n:
            r, c0 = int(row[i]), int(col[i])
            mask = 0
            j = i
            while j < n and row[j] == r and col[j] - c0 < vl:
                mask |= 1 << int(col[j] - c0)
                j += 1
            block_rows.append(r)
            block_cols.append(c0)
            block_masks.append(mask)
            block_ptr.append(j)
            i = j
        return cls(
            coo.shape, vl, block_rows, block_cols, block_masks, block_ptr, data
        )

    @classmethod
    def from_dense(cls, dense, *, vl: int = DEFAULT_VL) -> "SPC5Matrix":
        return cls.from_coo(COOMatrix.from_dense(dense), vl=vl)

    # ------------------------------------------------------------------
    # SparseFormat interface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._data.size)

    def to_coo(self) -> COOMatrix:
        rows, cols, vals = [], [], []
        for b in range(self.num_blocks):
            r = int(self._block_row[b])
            c0 = int(self._block_col[b])
            mask = int(self._block_mask[b])
            lo = int(self._block_ptr[b])
            k = 0
            for lane in range(self._vl):
                if mask >> lane & 1:
                    rows.append(r)
                    cols.append(c0 + lane)
                    vals.append(self._data[lo + k])
                    k += 1
        return COOMatrix(self._shape, rows, cols, vals)

    # ------------------------------------------------------------------
    # SPC5-specific accessors
    # ------------------------------------------------------------------
    @property
    def vl(self) -> int:
        """Block width in column positions (the vector length)."""
        return self._vl

    @property
    def num_blocks(self) -> int:
        return int(self._block_row.size)

    @property
    def block_row(self) -> np.ndarray:
        return self._block_row

    @property
    def block_col(self) -> np.ndarray:
        return self._block_col

    @property
    def block_mask(self) -> np.ndarray:
        return self._block_mask

    @property
    def block_ptr(self) -> np.ndarray:
        return self._block_ptr

    @property
    def data(self) -> np.ndarray:
        return self._data

    def iter_blocks(self) -> Iterator[Tuple[int, int, int, np.ndarray]]:
        """Yield ``(row, col_start, mask, values)`` per block."""
        for b in range(self.num_blocks):
            lo, hi = int(self._block_ptr[b]), int(self._block_ptr[b + 1])
            yield (
                int(self._block_row[b]),
                int(self._block_col[b]),
                int(self._block_mask[b]),
                self._data[lo:hi],
            )

    def block_lane_cols(self, b: int) -> np.ndarray:
        """Absolute column index of every stored value in block ``b``."""
        mask = int(self._block_mask[b])
        lanes = np.flatnonzero(
            (mask >> np.arange(self._vl, dtype=np.int64)) & 1
        )
        return self._block_col[b] + lanes

    def fill_ratio(self) -> float:
        """Average fraction of occupied lanes per block (1.0 = dense blocks)."""
        if self.num_blocks == 0:
            return 0.0
        return float(self.nnz) / (self.num_blocks * self._vl)


def _popcount(masks: np.ndarray) -> np.ndarray:
    """Vectorized population count for int64 masks."""
    out = np.zeros_like(masks)
    work = masks.copy()
    while np.any(work):
        out += work & 1
        work >>= 1
    return out
