"""Sparse-matrix compressed formats (paper Sections II-A and II-B).

Implemented from scratch on plain numpy arrays:

* :class:`COOMatrix` — canonical interchange format;
* :class:`CSRMatrix` / :class:`CSCMatrix` — the compressed-sparse family;
* :class:`CSBMatrix` — Compressed Sparse Block with merged in-block indices
  (the format the ``vidxblkmult`` instruction consumes);
* :class:`SPC5Matrix` — mask-based row blocks (Bramas et al. baseline);
* :class:`SellCSigmaMatrix` — sliced ELL with local sorting (Kreutzer et al.
  baseline);
* :class:`CSR5Matrix` — tiled segmented-sum CSR (Liu & Vinter; the
  related-work extension, Section VIII).
"""

from repro.formats.base import SparseFormat
from repro.formats.convert import FORMATS, convert, format_class
from repro.formats.coo import COOMatrix
from repro.formats.csb import CSBMatrix
from repro.formats.csr5 import CSR5Matrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.sellcs import SellCSigmaMatrix
from repro.formats.spc5 import SPC5Matrix

__all__ = [
    "SparseFormat",
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "CSBMatrix",
    "CSR5Matrix",
    "SPC5Matrix",
    "SellCSigmaMatrix",
    "FORMATS",
    "convert",
    "format_class",
]
