"""COO (coordinate) format — the canonical interchange representation.

COO stores one ``(row, col, value)`` triple per non-zero.  It is not used by
any timed kernel in the paper, but serves here as the hub every other format
converts through, and as the target of the synthetic matrix generators.

A :class:`COOMatrix` is always *canonical*: triples sorted row-major then
column-major, duplicates summed, explicit zeros kept (a stored zero is still
a stored entry — sparse kernels and the hardware model both traverse stored
entries, whatever their value).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import (
    INDEX_DTYPE,
    SparseFormat,
    as_index_array,
    as_value_array,
    check_shape,
)


class COOMatrix(SparseFormat):
    """Canonical coordinate-list sparse matrix.

    Parameters
    ----------
    shape:
        ``(rows, cols)`` matrix dimensions.
    row, col:
        Per-entry row / column indices.
    data:
        Per-entry values.
    sum_duplicates:
        When True (default) repeated coordinates are combined by addition,
        mirroring the usual sparse-assembly semantics.
    """

    format_name = "coo"

    def __init__(self, shape, row, col, data, *, sum_duplicates: bool = True):
        self._shape = check_shape(shape)
        row = as_index_array(row, "row")
        col = as_index_array(col, "col")
        data = as_value_array(data, "data")
        if not (row.size == col.size == data.size):
            raise FormatError(
                "row, col and data must have equal lengths, got "
                f"{row.size}, {col.size}, {data.size}"
            )
        if row.size:
            if row.min(initial=0) < 0 or col.min(initial=0) < 0:
                raise FormatError("negative indices are not allowed")
            if row.max(initial=-1) >= self._shape[0]:
                raise FormatError(
                    f"row index {int(row.max())} out of range for {self._shape[0]} rows"
                )
            if col.max(initial=-1) >= self._shape[1]:
                raise FormatError(
                    f"col index {int(col.max())} out of range for {self._shape[1]} cols"
                )
        self._row, self._col, self._data = _canonicalize(
            self._shape, row, col, data, sum_duplicates
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense) -> "COOMatrix":
        """Build a COO matrix keeping every non-zero cell of ``dense``."""
        arr = np.asarray(dense, dtype=float)
        if arr.ndim != 2:
            raise FormatError(f"dense input must be 2-D, got ndim={arr.ndim}")
        rr, cc = np.nonzero(arr)
        return cls(arr.shape, rr, cc, arr[rr, cc])

    @classmethod
    def empty(cls, shape) -> "COOMatrix":
        """A matrix of the given shape with no stored entries."""
        return cls(shape, [], [], [])

    @classmethod
    def from_coo(cls, coo, **kwargs) -> "COOMatrix":
        return coo

    # ------------------------------------------------------------------
    # SparseFormat interface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._data.size)

    def to_coo(self) -> "COOMatrix":
        return self

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self._shape, dtype=float)
        # canonical form has unique coordinates, plain assignment suffices
        dense[self._row, self._col] = self._data
        return dense

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    @property
    def row(self) -> np.ndarray:
        """Row index of each entry (read-only view)."""
        return self._row

    @property
    def col(self) -> np.ndarray:
        """Column index of each entry (read-only view)."""
        return self._col

    @property
    def data(self) -> np.ndarray:
        """Value of each entry (read-only view)."""
        return self._data

    def transpose(self) -> "COOMatrix":
        """Return the transposed matrix (cols become rows)."""
        return COOMatrix(
            (self._shape[1], self._shape[0]), self._col, self._row, self._data
        )

    def prune_zeros(self, tol: float = 0.0) -> "COOMatrix":
        """Drop stored entries whose magnitude is <= ``tol``."""
        keep = np.abs(self._data) > tol
        return COOMatrix(
            self._shape, self._row[keep], self._col[keep], self._data[keep]
        )


def _canonicalize(shape, row, col, data, sum_duplicates):
    """Sort triples row-major and optionally combine duplicates."""
    if row.size == 0:
        return (
            row.astype(INDEX_DTYPE),
            col.astype(INDEX_DTYPE),
            data.astype(float),
        )
    order = np.lexsort((col, row))
    row, col, data = row[order], col[order], data[order]
    if not sum_duplicates:
        return row, col, data
    # linear key identifies duplicates after sorting
    key = row * shape[1] + col
    boundary = np.empty(key.size, dtype=bool)
    boundary[0] = True
    np.not_equal(key[1:], key[:-1], out=boundary[1:])
    if boundary.all():
        return row, col, data
    group = np.cumsum(boundary) - 1
    summed = np.zeros(int(group[-1]) + 1, dtype=float)
    np.add.at(summed, group, data)
    keep = np.flatnonzero(boundary)
    for arr in (row, col):
        arr.setflags(write=True)
    return row[keep], col[keep], summed
