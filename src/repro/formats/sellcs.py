"""Sell-C-sigma format — Section V-B baseline (Kreutzer et al.).

Sell-C-sigma ("Sliced ELL with sorting window sigma") is a SIMD-friendly
format:

1. rows are sorted by descending length *within windows of sigma rows*
   (local sorting keeps reordering overhead and result-permutation locality
   bounded);
2. sorted rows are grouped into *chunks* of ``c`` rows (``c`` matches the
   hardware vector length);
3. every chunk is padded to the length of its longest row and stored
   column-major, so one vector load grabs lane-``c`` adjacent entries of
   ``c`` different rows.

Padding entries carry column index 0 and value 0.0 — they are computed but
contribute nothing, exactly the inefficiency the paper points at for
zero-padded formats (Section II-C).

Arrays
------
* ``perm``       — ``perm[i]`` is the original row stored at sorted slot *i*;
* ``chunk_ptr``  — start of each chunk in the entry arrays;
* ``chunk_len``  — padded length (columns) of each chunk;
* ``col_idx`` / ``data`` — entries, chunk-major, column-major inside a chunk;
* ``row_len``    — true (unpadded) length of each sorted slot.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import (
    INDEX_DTYPE,
    SparseFormat,
    as_index_array,
    as_value_array,
    check_shape,
)
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix

DEFAULT_CHUNK = 8
DEFAULT_SIGMA = 64


class SellCSigmaMatrix(SparseFormat):
    """Sliced ELLPACK with local row sorting (Sell-C-sigma)."""

    format_name = "sellcs"

    def __init__(self, shape, c, sigma, perm, chunk_ptr, chunk_len, row_len, col_idx, data):
        self._shape = check_shape(shape)
        self._c = int(c)
        self._sigma = int(sigma)
        if self._c <= 0:
            raise FormatError(f"chunk height c must be positive, got {c}")
        if self._sigma < self._c:
            raise FormatError(
                f"sorting window sigma={sigma} must be >= chunk height c={c}"
            )
        self._perm = as_index_array(perm, "perm")
        self._chunk_ptr = as_index_array(chunk_ptr, "chunk_ptr")
        self._chunk_len = as_index_array(chunk_len, "chunk_len")
        self._row_len = as_index_array(row_len, "row_len")
        self._col_idx = as_index_array(col_idx, "col_idx")
        self._data = as_value_array(data, "data")
        self._validate()

    def _validate(self) -> None:
        rows, cols = self._shape
        if self._perm.size != rows:
            raise FormatError(f"perm must have length rows={rows}")
        if rows and not np.array_equal(np.sort(self._perm), np.arange(rows)):
            raise FormatError("perm must be a permutation of 0..rows-1")
        nchunks = (rows + self._c - 1) // self._c
        if self._chunk_len.size != nchunks:
            raise FormatError(f"chunk_len must have length {nchunks}")
        if self._chunk_ptr.size != nchunks + 1:
            raise FormatError(f"chunk_ptr must have length {nchunks + 1}")
        if self._chunk_ptr.size and self._chunk_ptr[0] != 0:
            raise FormatError("chunk_ptr[0] must be 0")
        if self._row_len.size != rows:
            raise FormatError("row_len must have length rows")
        expected = 0
        for k in range(nchunks):
            height = min(self._c, rows - k * self._c)
            expected += int(self._chunk_len[k]) * height
            if self._chunk_ptr[k + 1] - self._chunk_ptr[k] != self._chunk_len[k] * height:
                raise FormatError(f"chunk {k} extent disagrees with chunk_len")
        if self._col_idx.size != expected or self._data.size != expected:
            raise FormatError("entry arrays disagree with chunk extents")
        if self._col_idx.size and (
            self._col_idx.min() < 0 or self._col_idx.max() >= max(cols, 1)
        ):
            raise FormatError("col_idx out of range")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        *,
        c: int = DEFAULT_CHUNK,
        sigma: int = DEFAULT_SIGMA,
    ) -> "SellCSigmaMatrix":
        csr = CSRMatrix.from_coo(coo)
        rows = coo.shape[0]
        c = int(c)
        sigma = int(sigma)
        if c <= 0:
            raise FormatError(f"chunk height c must be positive, got {c}")
        if sigma < c:
            raise FormatError(
                f"sorting window sigma={sigma} must be >= chunk height c={c}"
            )
        lengths = csr.row_lengths()

        # local sort: descending length within each sigma window
        perm = np.arange(rows, dtype=INDEX_DTYPE)
        for start in range(0, rows, sigma):
            stop = min(start + sigma, rows)
            window = perm[start:stop]
            order = np.argsort(-lengths[window], kind="stable")
            perm[start:stop] = window[order]

        nchunks = (rows + c - 1) // c
        chunk_len = np.zeros(nchunks, dtype=INDEX_DTYPE)
        chunk_ptr = np.zeros(nchunks + 1, dtype=INDEX_DTYPE)
        row_len = lengths[perm] if rows else np.zeros(0, dtype=INDEX_DTYPE)

        col_parts, data_parts = [], []
        for k in range(nchunks):
            lo_slot, hi_slot = k * c, min((k + 1) * c, rows)
            height = hi_slot - lo_slot
            width = int(row_len[lo_slot:hi_slot].max(initial=0))
            chunk_len[k] = width
            chunk_ptr[k + 1] = chunk_ptr[k] + width * height
            cols_pad = np.zeros((width, height), dtype=INDEX_DTYPE)
            vals_pad = np.zeros((width, height), dtype=float)
            for lane in range(height):
                r = int(perm[lo_slot + lane])
                rc, rv = csr.row_slice(r)
                cols_pad[: rc.size, lane] = rc
                vals_pad[: rv.size, lane] = rv
            col_parts.append(cols_pad.ravel())
            data_parts.append(vals_pad.ravel())

        col_idx = (
            np.concatenate(col_parts) if col_parts else np.zeros(0, dtype=INDEX_DTYPE)
        )
        data = np.concatenate(data_parts) if data_parts else np.zeros(0, dtype=float)
        return cls(
            coo.shape, c, sigma, perm, chunk_ptr, chunk_len, row_len, col_idx, data
        )

    @classmethod
    def from_dense(cls, dense, *, c: int = DEFAULT_CHUNK, sigma: int = DEFAULT_SIGMA):
        return cls.from_coo(COOMatrix.from_dense(dense), c=c, sigma=sigma)

    # ------------------------------------------------------------------
    # SparseFormat interface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        """True non-zero count — padding entries are excluded."""
        return int(self._row_len.sum())

    def to_coo(self) -> COOMatrix:
        rows_out, cols_out, vals_out = [], [], []
        for k in range(self.num_chunks):
            lo_slot = k * self._c
            height = min(self._c, self._shape[0] - lo_slot)
            width = int(self._chunk_len[k])
            base = int(self._chunk_ptr[k])
            for lane in range(height):
                slot = lo_slot + lane
                r = int(self._perm[slot])
                n = int(self._row_len[slot])
                offs = base + np.arange(n) * height + lane
                rows_out.append(np.full(n, r, dtype=INDEX_DTYPE))
                cols_out.append(self._col_idx[offs])
                vals_out.append(self._data[offs])
        if not rows_out:
            return COOMatrix.empty(self._shape)
        return COOMatrix(
            self._shape,
            np.concatenate(rows_out),
            np.concatenate(cols_out),
            np.concatenate(vals_out),
        )

    # ------------------------------------------------------------------
    # Sell-C-sigma-specific accessors
    # ------------------------------------------------------------------
    @property
    def c(self) -> int:
        """Chunk height (rows per chunk, matches the vector length)."""
        return self._c

    @property
    def sigma(self) -> int:
        """Sorting-window size in rows."""
        return self._sigma

    @property
    def num_chunks(self) -> int:
        return int(self._chunk_len.size)

    @property
    def perm(self) -> np.ndarray:
        return self._perm

    @property
    def chunk_ptr(self) -> np.ndarray:
        return self._chunk_ptr

    @property
    def chunk_len(self) -> np.ndarray:
        return self._chunk_len

    @property
    def row_len(self) -> np.ndarray:
        return self._row_len

    @property
    def col_idx(self) -> np.ndarray:
        return self._col_idx

    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def padded_entries(self) -> int:
        """Stored slots including padding (the format's real footprint)."""
        return int(self._data.size)

    def padding_ratio(self) -> float:
        """Fraction of stored slots that are padding (wasted lanes)."""
        if self._data.size == 0:
            return 0.0
        return 1.0 - self.nnz / self._data.size

    def chunk_view(self, k: int) -> Tuple[np.ndarray, np.ndarray, int]:
        """``(col_idx, data, height)`` of chunk ``k``, column-major flattened."""
        lo, hi = int(self._chunk_ptr[k]), int(self._chunk_ptr[k + 1])
        height = min(self._c, self._shape[0] - k * self._c)
        return self._col_idx[lo:hi], self._data[lo:hi], height
