"""CSC (Compressed Sparse Column) — Section II-A of the paper.

CSC mirrors CSR with the roles of rows and columns swapped: ``col_ptr``
delimits columns, ``row_idx`` stores the row index of each entry.  The
paper's SpMM kernel (Algorithm 3) traverses matrix ``B`` column-major in CSC
while ``A`` is traversed row-major in CSR.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import (
    INDEX_DTYPE,
    SparseFormat,
    as_index_array,
    as_value_array,
    check_shape,
)
from repro.formats.coo import COOMatrix


class CSCMatrix(SparseFormat):
    """Compressed Sparse Column matrix with sorted intra-column rows."""

    format_name = "csc"

    def __init__(self, shape, col_ptr, row_idx, data):
        self._shape = check_shape(shape)
        self._col_ptr = as_index_array(col_ptr, "col_ptr")
        self._row_idx = as_index_array(row_idx, "row_idx")
        self._data = as_value_array(data, "data")
        self._validate()

    def _validate(self) -> None:
        rows, cols = self._shape
        cp = self._col_ptr
        if cp.size != cols + 1:
            raise FormatError(
                f"col_ptr must have length cols+1={cols + 1}, got {cp.size}"
            )
        if cp.size and cp[0] != 0:
            raise FormatError("col_ptr[0] must be 0")
        if np.any(np.diff(cp) < 0):
            raise FormatError("col_ptr must be non-decreasing")
        if self._row_idx.size != self._data.size:
            raise FormatError("row_idx and data must have equal lengths")
        if cp.size and cp[-1] != self._row_idx.size:
            raise FormatError(
                f"col_ptr[-1]={int(cp[-1])} does not match nnz={self._row_idx.size}"
            )
        ri = self._row_idx
        if ri.size and (ri.min() < 0 or ri.max() >= rows):
            raise FormatError("row_idx out of range")
        for c in range(cols):
            seg = ri[cp[c] : cp[c + 1]]
            if seg.size > 1 and np.any(np.diff(seg) <= 0):
                raise FormatError(
                    f"column {c} rows are not strictly increasing; "
                    "duplicates or unsorted entries are not valid CSC"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, **kwargs) -> "CSCMatrix":
        _rows, cols = coo.shape
        order = np.lexsort((coo.row, coo.col))
        col_sorted = coo.col[order]
        col_ptr = np.zeros(cols + 1, dtype=INDEX_DTYPE)
        np.add.at(col_ptr, col_sorted + 1, 1)
        np.cumsum(col_ptr, out=col_ptr)
        return cls(coo.shape, col_ptr, coo.row[order], coo.data[order])

    @classmethod
    def from_dense(cls, dense) -> "CSCMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    # ------------------------------------------------------------------
    # SparseFormat interface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._data.size)

    def to_coo(self) -> COOMatrix:
        cols = np.repeat(
            np.arange(self._shape[1], dtype=INDEX_DTYPE), np.diff(self._col_ptr)
        )
        return COOMatrix(self._shape, self._row_idx, cols, self._data)

    # ------------------------------------------------------------------
    # Raw array access
    # ------------------------------------------------------------------
    @property
    def col_ptr(self) -> np.ndarray:
        return self._col_ptr

    @property
    def row_idx(self) -> np.ndarray:
        return self._row_idx

    @property
    def data(self) -> np.ndarray:
        return self._data

    def col_slice(self, c: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(row_idx, data)`` views of column ``c``."""
        lo, hi = int(self._col_ptr[c]), int(self._col_ptr[c + 1])
        return self._row_idx[lo:hi], self._data[lo:hi]

    def iter_cols(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(col, row_idx, data)`` for every column."""
        for c in range(self._shape[1]):
            rows, vals = self.col_slice(c)
            yield c, rows, vals

    def col_lengths(self) -> np.ndarray:
        """Number of stored entries in every column."""
        return np.diff(self._col_ptr)

    def transpose(self):
        """Transpose as a :class:`repro.formats.csr.CSRMatrix` (free swap)."""
        from repro.formats.csr import CSRMatrix

        return CSRMatrix(
            (self._shape[1], self._shape[0]),
            self._col_ptr.copy(),
            self._row_idx.copy(),
            self._data.copy(),
        )
