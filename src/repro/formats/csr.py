"""CSR (Compressed Sparse Row) — Section II-A of the paper.

CSR uses three arrays:

* ``row_ptr`` — index of the first entry of each row within the other two
  arrays (length ``rows + 1``);
* ``col_idx`` — column index of each stored entry;
* ``data``    — value of each stored entry.

It is the representation used by Eigen and most sparse libraries, and the
baseline format for the paper's SpMA and SpMM kernels (Algorithms 2 and 3).
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np
import numpy.typing as npt

from repro.errors import FormatError
from repro.formats.base import (
    INDEX_DTYPE,
    SparseFormat,
    as_index_array,
    as_value_array,
    check_shape,
)
from repro.formats.coo import COOMatrix


class CSRMatrix(SparseFormat):
    """Compressed Sparse Row matrix.

    Entries within a row are kept sorted by column index — the invariant the
    merge-based SpMA kernel (Algorithm 2) and the index-matching SpMM kernel
    (Algorithm 3) both rely on.
    """

    format_name = "csr"

    def __init__(self, shape: Tuple[int, int], row_ptr: npt.ArrayLike,
                 col_idx: npt.ArrayLike, data: npt.ArrayLike) -> None:
        self._shape = check_shape(shape)
        self._row_ptr = as_index_array(row_ptr, "row_ptr")
        self._col_idx = as_index_array(col_idx, "col_idx")
        self._data = as_value_array(data, "data")
        self._validate()

    def _validate(self) -> None:
        rows, cols = self._shape
        rp = self._row_ptr
        if rp.size != rows + 1:
            raise FormatError(
                f"row_ptr must have length rows+1={rows + 1}, got {rp.size}"
            )
        if rp.size and rp[0] != 0:
            raise FormatError("row_ptr[0] must be 0")
        if np.any(np.diff(rp) < 0):
            raise FormatError("row_ptr must be non-decreasing")
        if self._col_idx.size != self._data.size:
            raise FormatError("col_idx and data must have equal lengths")
        if rp.size and rp[-1] != self._col_idx.size:
            raise FormatError(
                f"row_ptr[-1]={int(rp[-1])} does not match nnz={self._col_idx.size}"
            )
        ci = self._col_idx
        if ci.size:
            if ci.min() < 0 or ci.max() >= cols:
                raise FormatError("col_idx out of range")
        # verify intra-row column ordering
        for r in range(rows):
            seg = ci[rp[r] : rp[r + 1]]
            if seg.size > 1 and np.any(np.diff(seg) <= 0):
                raise FormatError(
                    f"row {r} columns are not strictly increasing; "
                    "duplicates or unsorted entries are not valid CSR"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, **kwargs) -> "CSRMatrix":
        rows, _cols = coo.shape
        row_ptr = np.zeros(rows + 1, dtype=INDEX_DTYPE)
        np.add.at(row_ptr, coo.row + 1, 1)
        np.cumsum(row_ptr, out=row_ptr)
        # COO canonical order is already row-major / col-minor
        return cls(coo.shape, row_ptr, coo.col.copy(), coo.data.copy())

    @classmethod
    def from_dense(cls, dense) -> "CSRMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    # ------------------------------------------------------------------
    # SparseFormat interface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._data.size)

    def to_coo(self) -> COOMatrix:
        rows = np.repeat(
            np.arange(self._shape[0], dtype=INDEX_DTYPE), np.diff(self._row_ptr)
        )
        return COOMatrix(self._shape, rows, self._col_idx, self._data)

    # ------------------------------------------------------------------
    # Raw array access (used by the timed kernels)
    # ------------------------------------------------------------------
    @property
    def row_ptr(self) -> np.ndarray:
        return self._row_ptr

    @property
    def col_idx(self) -> np.ndarray:
        return self._col_idx

    @property
    def data(self) -> np.ndarray:
        return self._data

    def row_slice(self, r: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(col_idx, data)`` views of row ``r``."""
        lo, hi = int(self._row_ptr[r]), int(self._row_ptr[r + 1])
        return self._col_idx[lo:hi], self._data[lo:hi]

    def iter_rows(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(row, col_idx, data)`` for every row, including empty ones."""
        for r in range(self._shape[0]):
            cols, vals = self.row_slice(r)
            yield r, cols, vals

    def row_lengths(self) -> np.ndarray:
        """Number of stored entries in every row."""
        return np.diff(self._row_ptr)

    def transpose(self):
        """Transpose as a :class:`repro.formats.csc.CSCMatrix` (free swap)."""
        from repro.formats.csc import CSCMatrix

        return CSCMatrix(
            (self._shape[1], self._shape[0]),
            self._row_ptr.copy(),
            self._col_idx.copy(),
            self._data.copy(),
        )

    def spmv_reference(self, x: np.ndarray) -> np.ndarray:
        """Golden ``y = A @ x`` used to verify timed SpMV kernels."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self._shape[1],):
            raise FormatError(
                f"x must have shape ({self._shape[1]},), got {x.shape}"
            )
        y = np.zeros(self._shape[0], dtype=float)
        rows = np.repeat(
            np.arange(self._shape[0], dtype=INDEX_DTYPE), np.diff(self._row_ptr)
        )
        np.add.at(y, rows, self._data * x[self._col_idx])
        return y
