"""CSB (Compressed Sparse Block) — Section II-B of the paper.

CSB (Buluc et al.) tiles the matrix into ``beta x beta`` blocks and stores,
per non-empty block, the entries with *in-block relative* indices.  The paper
uses the memory-footprint optimization it describes explicitly: the in-block
row and column indices of each entry are merged into a single index

    ``merged = (in_block_row << col_bits) | in_block_col``

which is exactly the operand layout consumed by the ``vidxblkmult``
instruction (Section IV-C): the instruction splits the merged index at bit
position ``idx_offset == col_bits``.

Arrays
------
* ``block_ptr``  — start of each stored block in the entry arrays
  (length ``num_blocks + 1``), blocks ordered row-major over the block grid;
* ``block_row`` / ``block_col`` — grid coordinates of each stored block;
* ``idx``        — merged in-block index of each entry;
* ``data``       — value of each entry.

Only non-empty blocks are stored.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import (
    INDEX_DTYPE,
    SparseFormat,
    as_index_array,
    as_value_array,
    check_shape,
)
from repro.formats.coo import COOMatrix

DEFAULT_BLOCK_SIZE = 1024


def col_bits_for(block_size: int) -> int:
    """Bits needed to encode an in-block column index (``ceil(log2(beta))``)."""
    if block_size <= 0:
        raise FormatError(f"block_size must be positive, got {block_size}")
    return max(1, int(np.ceil(np.log2(block_size))))


class CSBMatrix(SparseFormat):
    """Compressed Sparse Block matrix with merged in-block indices."""

    format_name = "csb"

    def __init__(self, shape, block_size, block_ptr, block_row, block_col, idx, data):
        self._shape = check_shape(shape)
        self._block_size = int(block_size)
        if self._block_size <= 0:
            raise FormatError(f"block_size must be positive, got {block_size}")
        self._block_ptr = as_index_array(block_ptr, "block_ptr")
        self._block_row = as_index_array(block_row, "block_row")
        self._block_col = as_index_array(block_col, "block_col")
        self._idx = as_index_array(idx, "idx")
        self._data = as_value_array(data, "data")
        self._col_bits = col_bits_for(self._block_size)
        self._validate()

    def _validate(self) -> None:
        bp = self._block_ptr
        nb = self._block_row.size
        if self._block_col.size != nb:
            raise FormatError("block_row and block_col must have equal lengths")
        if bp.size != nb + 1:
            raise FormatError(
                f"block_ptr must have length num_blocks+1={nb + 1}, got {bp.size}"
            )
        if bp.size and bp[0] != 0:
            raise FormatError("block_ptr[0] must be 0")
        if np.any(np.diff(bp) < 0):
            raise FormatError("block_ptr must be non-decreasing")
        if self._idx.size != self._data.size:
            raise FormatError("idx and data must have equal lengths")
        if bp.size and bp[-1] != self._idx.size:
            raise FormatError("block_ptr[-1] does not match nnz")
        if np.any(np.diff(bp) == 0):
            raise FormatError("empty blocks must not be stored")
        grid_r, grid_c = self.grid_shape
        if nb:
            if self._block_row.min() < 0 or self._block_row.max() >= grid_r:
                raise FormatError("block_row out of range")
            if self._block_col.min() < 0 or self._block_col.max() >= grid_c:
                raise FormatError("block_col out of range")
        max_idx = (self._block_size - 1) << self._col_bits | (self._block_size - 1)
        if self._idx.size and (self._idx.min() < 0 or self._idx.max() > max_idx):
            raise FormatError("merged in-block index out of range")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, *, block_size: int = DEFAULT_BLOCK_SIZE) -> "CSBMatrix":
        rows, cols = coo.shape
        beta = int(block_size)
        bits = col_bits_for(beta)
        grid_cols = (cols + beta - 1) // beta if cols else 0

        brow = coo.row // beta
        bcol = coo.col // beta
        in_r = coo.row - brow * beta
        in_c = coo.col - bcol * beta
        merged = (in_r << bits) | in_c

        # order entries by (block_row, block_col, in-block row-major)
        order = np.lexsort((merged, bcol, brow))
        brow, bcol, merged = brow[order], bcol[order], merged[order]
        data = coo.data[order]

        if merged.size == 0:
            return cls(coo.shape, beta, [0], [], [], [], [])

        block_key = brow * max(grid_cols, 1) + bcol
        boundary = np.empty(block_key.size, dtype=bool)
        boundary[0] = True
        np.not_equal(block_key[1:], block_key[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        block_ptr = np.concatenate([starts, [merged.size]]).astype(INDEX_DTYPE)
        return cls(
            coo.shape, beta, block_ptr, brow[starts], bcol[starts], merged, data
        )

    @classmethod
    def from_dense(cls, dense, *, block_size: int = DEFAULT_BLOCK_SIZE) -> "CSBMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense), block_size=block_size)

    # ------------------------------------------------------------------
    # SparseFormat interface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._data.size)

    def to_coo(self) -> COOMatrix:
        reps = np.diff(self._block_ptr)
        brow = np.repeat(self._block_row, reps)
        bcol = np.repeat(self._block_col, reps)
        in_r = self._idx >> self._col_bits
        in_c = self._idx & ((1 << self._col_bits) - 1)
        return COOMatrix(
            self._shape,
            brow * self._block_size + in_r,
            bcol * self._block_size + in_c,
            self._data,
        )

    # ------------------------------------------------------------------
    # CSB-specific accessors
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        """Block edge length (beta)."""
        return self._block_size

    @property
    def col_bits(self) -> int:
        """Bit position where merged indices split into (row, col)."""
        return self._col_bits

    @property
    def grid_shape(self) -> Tuple[int, int]:
        """Dimensions of the block grid."""
        beta = self._block_size
        return (
            (self._shape[0] + beta - 1) // beta,
            (self._shape[1] + beta - 1) // beta,
        )

    @property
    def num_blocks(self) -> int:
        """Number of stored (non-empty) blocks."""
        return int(self._block_row.size)

    @property
    def block_ptr(self) -> np.ndarray:
        return self._block_ptr

    @property
    def block_row(self) -> np.ndarray:
        return self._block_row

    @property
    def block_col(self) -> np.ndarray:
        return self._block_col

    @property
    def idx(self) -> np.ndarray:
        """Merged in-block indices of every entry."""
        return self._idx

    @property
    def data(self) -> np.ndarray:
        return self._data

    def block_slice(self, b: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(merged_idx, data)`` views of stored block ``b``."""
        lo, hi = int(self._block_ptr[b]), int(self._block_ptr[b + 1])
        return self._idx[lo:hi], self._data[lo:hi]

    def iter_blocks(self) -> Iterator[Tuple[int, int, np.ndarray, np.ndarray]]:
        """Yield ``(block_row, block_col, merged_idx, data)`` per stored block."""
        for b in range(self.num_blocks):
            midx, vals = self.block_slice(b)
            yield int(self._block_row[b]), int(self._block_col[b]), midx, vals

    def nnz_per_block(self) -> np.ndarray:
        """Stored entries in every stored block (Fig. 10's density metric)."""
        return np.diff(self._block_ptr)

    def split_idx(self, merged: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Split merged indices into ``(in_block_row, in_block_col)``."""
        return merged >> self._col_bits, merged & ((1 << self._col_bits) - 1)
