"""Conversions between sparse formats through the COO hub.

Every format implements ``to_coo`` / ``from_coo``; this module provides a
small registry so callers can convert by name::

    csb = convert(matrix, "csb", block_size=512)
"""

from __future__ import annotations

from typing import Dict, Type

from repro.errors import FormatError
from repro.formats.base import SparseFormat
from repro.formats.coo import COOMatrix
from repro.formats.csb import CSBMatrix
from repro.formats.csr5 import CSR5Matrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.sellcs import SellCSigmaMatrix
from repro.formats.spc5 import SPC5Matrix

FORMATS: Dict[str, Type[SparseFormat]] = {
    cls.format_name: cls
    for cls in (
        COOMatrix,
        CSRMatrix,
        CSCMatrix,
        CSBMatrix,
        CSR5Matrix,
        SPC5Matrix,
        SellCSigmaMatrix,
    )
}


def format_class(name: str) -> Type[SparseFormat]:
    """Look up a format class by its :attr:`SparseFormat.format_name`."""
    try:
        return FORMATS[name.lower()]
    except KeyError:
        raise FormatError(
            f"unknown format {name!r}; available: {sorted(FORMATS)}"
        ) from None


def convert(matrix: SparseFormat, target: str, **kwargs) -> SparseFormat:
    """Convert ``matrix`` to the format named ``target``.

    ``kwargs`` are forwarded to the target's ``from_coo`` (e.g.
    ``block_size`` for CSB, ``vl`` for SPC5, ``c``/``sigma`` for
    Sell-C-sigma).  Converting to the format the matrix already has returns
    the matrix unchanged only when no kwargs are supplied.
    """
    cls = format_class(target)
    if isinstance(matrix, cls) and not kwargs:
        return matrix
    return cls.from_coo(matrix.to_coo(), **kwargs)
