"""CSR5 format — Liu & Vinter's tiled CSR (paper related work, Section VIII).

CSR5 partitions the CSR non-zero stream into 2-D *tiles* of ``omega``
lanes x ``sigma`` steps, stored column-major so one vector load fills all
lanes.  A per-tile descriptor carries:

* ``tile_row`` — the matrix row the tile's first entry belongs to;
* ``bit_flag`` — one bit per in-tile entry marking "this entry starts a
  new row", which drives the in-tile segmented sum;
* ``empty_rows`` — rows skipped inside the tile (rows with no entries).

This reproduction implements the structure faithfully enough to (a)
round-trip losslessly, (b) expose the descriptor data the segmented-sum
SpMV consumes, and (c) price that SpMV on the machine model.  The CSR5
authors' architecture-specific packing tricks (compressed descriptors,
SIMD-width-specialized transposition) are abstracted behind the same
arrays.

The paper's related-work section positions VIA against CSR5 (a pure
software approach); the extension kernel in
:mod:`repro.kernels.csr5_spmv` makes that comparison concrete.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import (
    INDEX_DTYPE,
    SparseFormat,
    as_index_array,
    as_value_array,
    check_shape,
)
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix

DEFAULT_OMEGA = 4
DEFAULT_SIGMA = 8


class CSR5Matrix(SparseFormat):
    """CSR5: tiled, column-major CSR with segmented-sum descriptors.

    Arrays
    ------
    ``col_idx`` / ``data``:
        The CSR entry stream re-ordered tile by tile, column-major inside
        each tile.  The final partial tile is stored row-stream order
        (CSR5's "tail" handled scalar).
    ``tile_row``:
        Matrix row of each tile's first entry.
    ``bit_flag``:
        Per tile: a ``(sigma * omega)``-bit mask (as uint64 words are
        overkill here — one bool per entry) marking row starts, in the
        tile's column-major order.
    """

    format_name = "csr5"

    def __init__(self, shape, omega, sigma, row_ptr, col_idx, data, tile_row, bit_flag):
        self._shape = check_shape(shape)
        self._omega = int(omega)
        self._sigma = int(sigma)
        if self._omega <= 0 or self._sigma <= 0:
            raise FormatError(
                f"omega/sigma must be positive, got {omega}/{sigma}"
            )
        self._row_ptr = as_index_array(row_ptr, "row_ptr")
        self._col_idx = as_index_array(col_idx, "col_idx")
        self._data = as_value_array(data, "data")
        self._tile_row = as_index_array(tile_row, "tile_row")
        self._bit_flag = np.asarray(bit_flag, dtype=bool)
        self._validate()

    def _validate(self) -> None:
        rows, cols = self._shape
        if self._row_ptr.size != rows + 1:
            raise FormatError(f"row_ptr must have length rows+1={rows + 1}")
        if self._row_ptr.size and self._row_ptr[0] != 0:
            raise FormatError("row_ptr[0] must be 0")
        if np.any(np.diff(self._row_ptr) < 0):
            raise FormatError("row_ptr must be non-decreasing")
        nnz = self._col_idx.size
        if self._data.size != nnz:
            raise FormatError("col_idx and data must have equal lengths")
        if self._row_ptr.size and self._row_ptr[-1] != nnz:
            raise FormatError("row_ptr[-1] does not match nnz")
        if nnz and (self._col_idx.min() < 0 or self._col_idx.max() >= cols):
            raise FormatError("col_idx out of range")
        if self._tile_row.size != self.num_tiles:
            raise FormatError(
                f"tile_row must have one entry per full tile ({self.num_tiles})"
            )
        if self._bit_flag.size != self.num_tiles * self.tile_size:
            raise FormatError("bit_flag must cover every full-tile entry")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        *,
        omega: int = DEFAULT_OMEGA,
        sigma: int = DEFAULT_SIGMA,
    ) -> "CSR5Matrix":
        csr = CSRMatrix.from_coo(coo)
        omega, sigma = int(omega), int(sigma)
        if omega <= 0 or sigma <= 0:
            raise FormatError(f"omega/sigma must be positive, got {omega}/{sigma}")
        nnz = csr.nnz
        tile_size = omega * sigma
        num_tiles = nnz // tile_size

        entry_rows = np.repeat(
            np.arange(coo.shape[0], dtype=INDEX_DTYPE), csr.row_lengths()
        )
        row_starts = np.zeros(nnz, dtype=bool)
        row_starts[csr.row_ptr[:-1][np.diff(csr.row_ptr) > 0]] = True

        col_parts: List[np.ndarray] = []
        data_parts: List[np.ndarray] = []
        tile_row = np.zeros(num_tiles, dtype=INDEX_DTYPE)
        bit_parts: List[np.ndarray] = []
        for t in range(num_tiles):
            lo = t * tile_size
            block = slice(lo, lo + tile_size)
            # column-major transposition of the (sigma, omega) entry block:
            # lane l step s holds stream entry lo + l*sigma + s
            order = (
                np.arange(omega)[None, :] * sigma + np.arange(sigma)[:, None]
            ).ravel()
            col_parts.append(csr.col_idx[block][order])
            data_parts.append(csr.data[block][order])
            bit_parts.append(row_starts[block][order])
            tile_row[t] = entry_rows[lo]
        tail = slice(num_tiles * tile_size, nnz)
        col_parts.append(csr.col_idx[tail])
        data_parts.append(csr.data[tail])

        return cls(
            coo.shape,
            omega,
            sigma,
            csr.row_ptr.copy(),
            np.concatenate(col_parts) if col_parts else np.zeros(0, INDEX_DTYPE),
            np.concatenate(data_parts) if data_parts else np.zeros(0),
            tile_row,
            np.concatenate(bit_parts) if bit_parts else np.zeros(0, bool),
        )

    @classmethod
    def from_dense(cls, dense, *, omega=DEFAULT_OMEGA, sigma=DEFAULT_SIGMA):
        return cls.from_coo(COOMatrix.from_dense(dense), omega=omega, sigma=sigma)

    # ------------------------------------------------------------------
    # SparseFormat interface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._data.size)

    def to_coo(self) -> COOMatrix:
        # undo the per-tile transposition to recover the CSR stream order
        cols = np.empty(self.nnz, dtype=INDEX_DTYPE)
        vals = np.empty(self.nnz, dtype=float)
        ts = self.tile_size
        for t in range(self.num_tiles):
            lo = t * ts
            order = (
                np.arange(self._omega)[None, :] * self._sigma
                + np.arange(self._sigma)[:, None]
            ).ravel()
            cols[lo + order] = self._col_idx[lo : lo + ts]
            vals[lo + order] = self._data[lo : lo + ts]
        tail = slice(self.num_tiles * ts, self.nnz)
        cols[tail] = self._col_idx[tail]
        vals[tail] = self._data[tail]
        rows = np.repeat(
            np.arange(self._shape[0], dtype=INDEX_DTYPE), np.diff(self._row_ptr)
        )
        return COOMatrix(self._shape, rows, cols, vals)

    # ------------------------------------------------------------------
    # CSR5-specific accessors
    # ------------------------------------------------------------------
    @property
    def omega(self) -> int:
        """Tile width in lanes (matches the SIMD width)."""
        return self._omega

    @property
    def sigma(self) -> int:
        """Tile depth in steps."""
        return self._sigma

    @property
    def tile_size(self) -> int:
        return self._omega * self._sigma

    @property
    def num_tiles(self) -> int:
        """Full tiles; remaining entries form the scalar tail."""
        return int(self._col_idx.size) // self.tile_size if self._sigma else 0

    @property
    def tail_size(self) -> int:
        """Entries in the final partial tile (processed CSR-style)."""
        return self.nnz - self.num_tiles * self.tile_size

    @property
    def row_ptr(self) -> np.ndarray:
        return self._row_ptr

    @property
    def col_idx(self) -> np.ndarray:
        return self._col_idx

    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def tile_row(self) -> np.ndarray:
        return self._tile_row

    @property
    def bit_flag(self) -> np.ndarray:
        return self._bit_flag

    def tile_segments(self, t: int) -> int:
        """Row segments inside tile ``t`` (set bits + the carried-in one)."""
        ts = self.tile_size
        return int(self._bit_flag[t * ts : (t + 1) * ts].sum()) + 1

    def rows_spanned(self, t: int) -> Tuple[int, int]:
        """(first, last) matrix rows whose entries touch tile ``t``."""
        first = int(self._tile_row[t])
        if t + 1 < self.num_tiles:
            last = int(self._tile_row[t + 1])
        else:
            last = self._shape[0] - 1
        return first, last
