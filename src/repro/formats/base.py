"""Common machinery shared by every sparse-matrix compressed format.

The paper (Section II-A/II-B) works with members of the *compressed sparse*
family (CSR, CSC), block-based formats (CSB, SPC5) and the SIMD-friendly
Sell-C-sigma format.  Each of those is implemented from scratch in this
package as a concrete subclass of :class:`SparseFormat`.

Design notes
------------
* COO (:mod:`repro.formats.coo`) is the canonical interchange format: every
  format can produce and consume it, which gives all pairwise conversions
  for free (see :mod:`repro.formats.convert`).
* All index arrays use ``numpy.int64`` and all value arrays ``numpy.float64``
  unless a caller explicitly provides another dtype.  The hardware model only
  depends on element *counts*, not on dtypes, so this choice is purely for
  numerical reproducibility of the functional results.
* Formats are immutable after construction.  Mutating algorithms (e.g. SpMA)
  build fresh result matrices.
"""

from __future__ import annotations

import abc
from typing import Iterator, Tuple

import numpy as np

from repro.errors import FormatError, ShapeError

INDEX_DTYPE = np.int64
VALUE_DTYPE = np.float64


def as_index_array(values, name: str) -> np.ndarray:
    """Coerce ``values`` to a 1-D int64 array, validating integrality.

    Raises :class:`FormatError` if the input has a floating dtype with
    non-integral entries or is not one-dimensional.
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise FormatError(f"{name} must be one-dimensional, got ndim={arr.ndim}")
    if arr.dtype.kind == "f":
        if arr.size and not np.all(arr == np.floor(arr)):
            raise FormatError(f"{name} contains non-integral values")
    elif arr.dtype.kind not in ("i", "u"):
        raise FormatError(f"{name} must be integer-typed, got dtype={arr.dtype}")
    return arr.astype(INDEX_DTYPE, copy=False)


def as_value_array(values, name: str) -> np.ndarray:
    """Coerce ``values`` to a 1-D float64 array."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise FormatError(f"{name} must be one-dimensional, got ndim={arr.ndim}")
    return arr.astype(VALUE_DTYPE, copy=False)


def check_shape(shape) -> Tuple[int, int]:
    """Validate a ``(rows, cols)`` shape tuple."""
    try:
        rows, cols = shape
    except (TypeError, ValueError) as exc:
        raise ShapeError(f"shape must be a (rows, cols) pair, got {shape!r}") from exc
    rows, cols = int(rows), int(cols)
    if rows < 0 or cols < 0:
        raise ShapeError(f"shape must be non-negative, got {(rows, cols)}")
    return rows, cols


class SparseFormat(abc.ABC):
    """Abstract base for all compressed sparse-matrix representations.

    Concrete formats expose at least:

    * :attr:`shape` — ``(rows, cols)``
    * :attr:`nnz` — number of explicitly stored non-zero entries
    * :meth:`to_coo` — convert to the canonical COO interchange format
    * :meth:`from_coo` — build from COO (classmethod)

    Everything else (dense conversion, equality, iteration) is derived.
    """

    #: short lowercase identifier used by :func:`repro.formats.convert.convert`
    format_name: str = "abstract"

    @property
    @abc.abstractmethod
    def shape(self) -> Tuple[int, int]:
        """Matrix dimensions as ``(rows, cols)``."""

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of stored non-zero entries."""

    @abc.abstractmethod
    def to_coo(self):
        """Return an equivalent :class:`repro.formats.coo.COOMatrix`."""

    @classmethod
    @abc.abstractmethod
    def from_coo(cls, coo, **kwargs):
        """Build this format from a :class:`repro.formats.coo.COOMatrix`."""

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        return self.shape[0]

    @property
    def cols(self) -> int:
        return self.shape[1]

    @property
    def density(self) -> float:
        """Fraction of matrix positions that hold a stored entry."""
        cells = self.rows * self.cols
        return self.nnz / cells if cells else 0.0

    def to_dense(self) -> np.ndarray:
        """Materialize the matrix as a dense 2-D float64 array."""
        return self.to_coo().to_dense()

    def nnz_per_row(self) -> np.ndarray:
        """Histogram of stored entries per row (length ``rows``)."""
        coo = self.to_coo()
        return np.bincount(coo.row, minlength=self.rows).astype(INDEX_DTYPE)

    def iter_entries(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(row, col, value)`` triples in COO canonical order."""
        coo = self.to_coo()
        for r, c, v in zip(coo.row, coo.col, coo.data):
            yield int(r), int(c), float(v)

    def allclose(self, other: "SparseFormat", rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """True when both matrices hold numerically equal entries.

        Comparison happens through canonicalized COO, so it is independent
        of the concrete storage formats involved.
        """
        if self.shape != other.shape:
            return False
        a, b = self.to_coo(), other.to_coo()
        if a.nnz != b.nnz:
            # Entries that canceled to zero may legitimately differ; fall
            # back to dense comparison for small matrices only.
            return bool(np.allclose(a.to_dense(), b.to_dense(), rtol=rtol, atol=atol))
        return (
            bool(np.array_equal(a.row, b.row))
            and bool(np.array_equal(a.col, b.col))
            and bool(np.allclose(a.data, b.data, rtol=rtol, atol=atol))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} shape={self.shape} nnz={self.nnz} "
            f"density={self.density:.3%}>"
        )
