"""VIA: A Smart Scratchpad for Vector Units — behavioral reproduction.

A pure-Python reproduction of Pavón et al., HPCA 2021: the Vector Indexed
Architecture (an SSPM + FIVU vector extension for sparse computations),
together with every substrate its evaluation needs — sparse formats, a
synthetic SuiteSparse-like matrix collection, a cycle-approximate
out-of-order machine model, baseline and VIA kernels, and the evaluation
harness that regenerates the paper's tables and figures.

Quickstart::

    import numpy as np
    from repro import CSBMatrix, VIA_16_2P, spmv_csb_baseline, spmv_csb_via
    from repro.matrices import blocked

    coo = blocked(1000, 16, 0.04, 0.5, seed=1)
    csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
    x = np.random.default_rng(0).standard_normal(1000)
    base = spmv_csb_baseline(csb, x)
    via = spmv_csb_via(csb, x)
    print(f"speedup: {base.cycles / via.cycles:.2f}x")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.errors import (
    ConfigError,
    FormatError,
    ISAError,
    ReproError,
    ShapeError,
    SimulationError,
    SSPMCapacityError,
    SSPMError,
)
from repro.formats import (
    COOMatrix,
    CSBMatrix,
    CSCMatrix,
    CSRMatrix,
    SellCSigmaMatrix,
    SparseFormat,
    SPC5Matrix,
    convert,
)
from repro.kernels import (
    histogram_scalar_baseline,
    histogram_vector_baseline,
    histogram_via,
    spma_csr_baseline,
    spma_via,
    spmm_csr_baseline,
    spmm_via,
    spmv_csb_baseline,
    spmv_csb_via,
    spmv_csr_baseline,
    spmv_csr_via,
    spmv_sellcs_baseline,
    spmv_sellcs_via,
    spmv_spc5_baseline,
    spmv_spc5_via,
    stencil_vector_baseline,
    stencil_via,
)
from repro.matrices import MatrixCollection, paper_collection, small_collection
from repro.sim import Core, KernelResult, MachineConfig, table1
from repro.via import (
    DEFAULT_VIA,
    SSPM,
    VIA_4_2P,
    VIA_4_4P,
    VIA_8_2P,
    VIA_8_4P,
    VIA_16_2P,
    VIA_16_4P,
    ViaConfig,
    ViaDevice,
    table2,
)

def _detect_version() -> str:
    """Single-source the version from package metadata.

    ``pyproject.toml`` owns the version string.  Installed (even with
    ``pip install -e .``) we read it back through ``importlib.metadata``;
    on a bare source checkout (``PYTHONPATH=src``) we parse the adjacent
    ``pyproject.toml`` so the two can never drift.
    """
    from importlib import metadata

    try:
        return metadata.version("repro")
    except metadata.PackageNotFoundError:
        pass
    import re
    from pathlib import Path

    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        match = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.MULTILINE
        )
    except OSError:
        match = None
    return match.group(1) if match else "0+unknown"


__version__ = _detect_version()

__all__ = [
    "ConfigError",
    "FormatError",
    "ISAError",
    "ReproError",
    "ShapeError",
    "SimulationError",
    "SSPMCapacityError",
    "SSPMError",
    "COOMatrix",
    "CSBMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "SellCSigmaMatrix",
    "SparseFormat",
    "SPC5Matrix",
    "convert",
    "histogram_scalar_baseline",
    "histogram_vector_baseline",
    "histogram_via",
    "spma_csr_baseline",
    "spma_via",
    "spmm_csr_baseline",
    "spmm_via",
    "spmv_csb_baseline",
    "spmv_csb_via",
    "spmv_csr_baseline",
    "spmv_csr_via",
    "spmv_sellcs_baseline",
    "spmv_sellcs_via",
    "spmv_spc5_baseline",
    "spmv_spc5_via",
    "stencil_vector_baseline",
    "stencil_via",
    "MatrixCollection",
    "paper_collection",
    "small_collection",
    "Core",
    "KernelResult",
    "MachineConfig",
    "table1",
    "DEFAULT_VIA",
    "SSPM",
    "VIA_4_2P",
    "VIA_4_4P",
    "VIA_8_2P",
    "VIA_8_4P",
    "VIA_16_2P",
    "VIA_16_4P",
    "ViaConfig",
    "ViaDevice",
    "table2",
    "__version__",
]
